// Signature engine v2 persistence matrix: the minhash family byte travels
// in the index snapshot's "options" section (v3), the WAL checkpoint, and
// every sharded shard section, and the loader must never probe a store
// under the wrong family. The matrix pins the full taxonomy with surgical
// byte edits on real snapshots:
//
//   wrong family, clean CRC   -> NotSupported (a newer engine's snapshot)
//   damaged bytes             -> Corruption (the CRC vouches for nothing)
//   truncation                -> DataLoss/Corruption, never a wrong answer
//   version byte damaged      -> Corruption (the trailing-bytes guard: a
//                                v3 snapshot demoted to "v2" must not
//                                silently drop the family byte)
//   genuine v2 snapshot       -> loads as the classic family
//
// The snapshot surgeon below re-derives section CRCs and the footer
// checksum after an edit, so each case isolates exactly one failure.

#include <cstdint>
#include <functional>
#include <sstream>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "core/set_similarity_index.h"
#include "shard/sharded_index.h"
#include "storage/recovery.h"
#include "storage/wal.h"
#include "util/crc32.h"
#include "util/random.h"
#include "util/set_ops.h"

namespace ssr {
namespace {

// ---------------------------------------------------------------------------
// Snapshot surgeon: little-endian field access + section mapping over the
// framing of storage/snapshot.h (magic string, u32 version, then per
// section: name string, u64 size, u32 crc, payload; footer "SSRFOOT"
// string, u32 count, u32 crc-of-crcs).

std::uint64_t GetU64(const std::string& s, std::size_t off) {
  std::uint64_t v = 0;
  for (int i = 7; i >= 0; --i) {
    v = (v << 8) | static_cast<std::uint8_t>(s[off + static_cast<std::size_t>(i)]);
  }
  return v;
}

std::uint32_t GetU32(const std::string& s, std::size_t off) {
  std::uint32_t v = 0;
  for (int i = 3; i >= 0; --i) {
    v = (v << 8) | static_cast<std::uint8_t>(s[off + static_cast<std::size_t>(i)]);
  }
  return v;
}

void PutU32(std::string* s, std::size_t off, std::uint32_t v) {
  for (int i = 0; i < 4; ++i) {
    (*s)[off + static_cast<std::size_t>(i)] =
        static_cast<char>((v >> (8 * i)) & 0xff);
  }
}

void PutU64(std::string* s, std::size_t off, std::uint64_t v) {
  for (int i = 0; i < 8; ++i) {
    (*s)[off + static_cast<std::size_t>(i)] =
        static_cast<char>((v >> (8 * i)) & 0xff);
  }
}

struct SectionRef {
  std::string name;
  std::size_t size_off = 0;
  std::size_t crc_off = 0;
  std::size_t payload_off = 0;
  std::uint64_t size = 0;
};

struct SnapshotMap {
  std::size_t version_off = 0;
  std::vector<SectionRef> sections;
  std::size_t footer_crc_off = 0;
};

SnapshotMap MapSnapshot(const std::string& bytes) {
  SnapshotMap map;
  std::size_t off = 0;
  const std::uint64_t magic_len = GetU64(bytes, off);
  off += 8 + static_cast<std::size_t>(magic_len);
  map.version_off = off;
  off += 4;
  for (;;) {
    const std::uint64_t name_len = GetU64(bytes, off);
    const std::string name =
        bytes.substr(off + 8, static_cast<std::size_t>(name_len));
    off += 8 + static_cast<std::size_t>(name_len);
    if (name == "SSRFOOT") {
      map.footer_crc_off = off + 4;  // skip the u32 section count
      break;
    }
    SectionRef ref;
    ref.name = name;
    ref.size_off = off;
    ref.size = GetU64(bytes, off);
    off += 8;
    ref.crc_off = off;
    off += 4;
    ref.payload_off = off;
    off += static_cast<std::size_t>(ref.size);
    map.sections.push_back(std::move(ref));
  }
  return map;
}

void FixFooter(std::string* bytes) {
  const SnapshotMap map = MapSnapshot(*bytes);
  std::uint32_t crc = 0;
  for (const SectionRef& ref : map.sections) {
    const std::uint32_t c = GetU32(*bytes, ref.crc_off);
    const std::uint8_t le[4] = {
        static_cast<std::uint8_t>(c), static_cast<std::uint8_t>(c >> 8),
        static_cast<std::uint8_t>(c >> 16),
        static_cast<std::uint8_t>(c >> 24)};
    crc = Crc32Update(crc, le, 4);
  }
  PutU32(bytes, map.footer_crc_off, crc);
}

// Applies `edit` to the named section's payload (the size may change),
// then re-derives the section's length, CRC, and the footer checksum, so
// the only inconsistency left is whatever the edit itself introduced.
void RewriteSection(std::string* bytes, const std::string& name,
                    const std::function<void(std::string*)>& edit) {
  const SnapshotMap map = MapSnapshot(*bytes);
  for (const SectionRef& ref : map.sections) {
    if (ref.name != name) continue;
    std::string payload =
        bytes->substr(ref.payload_off, static_cast<std::size_t>(ref.size));
    edit(&payload);
    bytes->replace(ref.payload_off, static_cast<std::size_t>(ref.size),
                   payload);
    PutU64(bytes, ref.size_off, payload.size());
    PutU32(bytes, ref.crc_off, Crc32(payload));
    break;
  }
  FixFooter(bytes);
}

// ---------------------------------------------------------------------------

struct Fixture {
  SetCollection sets;
  SetStore store;
  std::unique_ptr<SetSimilarityIndex> index;
};

std::unique_ptr<Fixture> BuildFixture(
    std::size_t n, MinHashFamilyKind family = MinHashFamilyKind::kClassic) {
  auto f = std::make_unique<Fixture>();
  Rng rng(5150);
  for (std::size_t i = 0; i < n; ++i) {
    ElementSet s;
    const std::size_t size = 10 + rng.Uniform(60);
    for (std::size_t j = 0; j < size; ++j) s.push_back(rng.Uniform(5000));
    NormalizeSet(s);
    if (s.empty()) s.push_back(1);
    f->sets.push_back(s);
    EXPECT_TRUE(f->store.Add(s).ok());
  }
  IndexLayout layout;
  layout.delta = 0.3;
  layout.points = {{0.3, FilterKind::kDissimilarity, 6, 0},
                   {0.3, FilterKind::kSimilarity, 6, 0},
                   {0.7, FilterKind::kSimilarity, 6, 3}};
  IndexOptions options;
  options.embedding.minhash.num_hashes = 40;
  options.embedding.minhash.seed = 999;
  options.embedding.minhash.family = family;
  options.seed = 1234;
  auto index = SetSimilarityIndex::Build(f->store, layout, options);
  EXPECT_TRUE(index.ok());
  if (!index.ok()) return nullptr;
  f->index = std::make_unique<SetSimilarityIndex>(std::move(index).value());
  return f;
}

std::string Serialized(const SetSimilarityIndex& index) {
  std::stringstream buffer;
  EXPECT_TRUE(index.SaveTo(buffer).ok());
  return buffer.str();
}

TEST(FamilyPersistenceTest, RoundTripPreservesEveryFamily) {
  for (MinHashFamilyKind family : kAllMinHashFamilies) {
    auto f = BuildFixture(40, family);
    ASSERT_NE(f, nullptr);
    std::stringstream buffer(Serialized(*f->index));
    auto loaded = SetSimilarityIndex::Load(f->store, buffer);
    ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
    EXPECT_EQ(loaded->embedding().params().minhash.family, family);
    EXPECT_EQ(loaded->ContentDigest(), f->index->ContentDigest())
        << MinHashFamilyName(family);
    Rng rng(7);
    for (int t = 0; t < 10; ++t) {
      const ElementSet& q = f->sets[rng.Uniform(f->sets.size())];
      const double s1 = rng.NextDouble() * 0.8;
      const double s2 = s1 + rng.NextDouble() * (1.0 - s1);
      auto a = f->index->Query(q, s1, s2);
      auto b = loaded->Query(q, s1, s2);
      ASSERT_TRUE(a.ok() && b.ok());
      ASSERT_EQ(a->sids, b->sids) << MinHashFamilyName(family);
    }
  }
}

TEST(FamilyPersistenceTest, WrongFamilyByteIsNotSupported) {
  auto f = BuildFixture(20);
  ASSERT_NE(f, nullptr);
  std::string bytes = Serialized(*f->index);
  // The family byte is the last byte of the options payload. Write an
  // out-of-range value and re-derive every checksum: the section is now
  // CRC-clean, so the only possible verdict is "newer engine", not damage.
  RewriteSection(&bytes, "options",
                 [](std::string* payload) { payload->back() = 7; });
  std::stringstream in(bytes);
  auto loaded = SetSimilarityIndex::Load(f->store, in);
  ASSERT_FALSE(loaded.ok());
  EXPECT_TRUE(loaded.status().IsNotSupported())
      << loaded.status().ToString();
}

TEST(FamilyPersistenceTest, DamagedOptionsBytesAreCorruption) {
  auto f = BuildFixture(20, MinHashFamilyKind::kCMinHash);
  ASSERT_NE(f, nullptr);
  const std::string pristine = Serialized(*f->index);
  const SnapshotMap map = MapSnapshot(pristine);
  ASSERT_EQ(map.sections[0].name, "options");
  const SectionRef& opts = map.sections[0];
  // Flip one bit in every byte of the options payload, one at a time,
  // without fixing the CRC: each flip (family byte included) must surface
  // as Corruption — never load, never NotSupported.
  for (std::uint64_t i = 0; i < opts.size; ++i) {
    std::string bytes = pristine;
    bytes[opts.payload_off + static_cast<std::size_t>(i)] ^= 0x40;
    std::stringstream in(bytes);
    auto loaded = SetSimilarityIndex::Load(f->store, in);
    ASSERT_FALSE(loaded.ok()) << "payload byte " << i;
    EXPECT_TRUE(loaded.status().IsCorruption())
        << "payload byte " << i << ": " << loaded.status().ToString();
  }
}

TEST(FamilyPersistenceTest, DamagedVersionFieldIsNeverSilent) {
  auto f = BuildFixture(20, MinHashFamilyKind::kCMinHash);
  ASSERT_NE(f, nullptr);
  const std::string pristine = Serialized(*f->index);
  const SnapshotMap map = MapSnapshot(pristine);

  // v3 -> "v2": the options payload now carries one byte more than the v2
  // field list. Without the trailing-bytes guard this would load as the
  // classic family and silently probe cminhash signatures under it.
  std::string demoted = pristine;
  PutU32(&demoted, map.version_off, 2);
  std::stringstream demoted_in(demoted);
  auto as_v2 = SetSimilarityIndex::Load(f->store, demoted_in);
  ASSERT_FALSE(as_v2.ok());
  EXPECT_TRUE(as_v2.status().IsCorruption()) << as_v2.status().ToString();

  // v3 -> "v4": an unknown future version is NotSupported.
  std::string promoted = pristine;
  PutU32(&promoted, map.version_off, 4);
  std::stringstream promoted_in(promoted);
  auto as_v4 = SetSimilarityIndex::Load(f->store, promoted_in);
  ASSERT_FALSE(as_v4.ok());
  EXPECT_TRUE(as_v4.status().IsNotSupported()) << as_v4.status().ToString();
}

TEST(FamilyPersistenceTest, GenuineV2SnapshotLoadsAsClassic) {
  auto f = BuildFixture(30);  // classic: the only family v2 could hold
  ASSERT_NE(f, nullptr);
  std::string bytes = Serialized(*f->index);
  // Reconstruct the exact v2 byte layout from the v3 snapshot: drop the
  // appended family byte (v3 added nothing else) and set the version field.
  RewriteSection(&bytes, "options",
                 [](std::string* payload) { payload->pop_back(); });
  const SnapshotMap map = MapSnapshot(bytes);
  PutU32(&bytes, map.version_off, 2);
  std::stringstream in(bytes);
  auto loaded = SetSimilarityIndex::Load(f->store, in);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  EXPECT_EQ(loaded->embedding().params().minhash.family,
            MinHashFamilyKind::kClassic);
  EXPECT_EQ(loaded->ContentDigest(), f->index->ContentDigest());
}

TEST(FamilyPersistenceTest, TruncationMatrixNeverYieldsAWrongAnswer) {
  auto f = BuildFixture(12, MinHashFamilyKind::kSuperMinHash);
  ASSERT_NE(f, nullptr);
  const std::string full = Serialized(*f->index);
  const SnapshotMap map = MapSnapshot(full);
  // Every prefix through the header + options + layout region (where the
  // family and embedding parameters live), then strided samples across the
  // signatures section and footer.
  const std::size_t dense_end = map.sections[1].payload_off +
                                static_cast<std::size_t>(map.sections[1].size);
  std::vector<std::size_t> cuts;
  for (std::size_t i = 0; i < dense_end && i < full.size(); ++i) {
    cuts.push_back(i);
  }
  for (std::size_t i = dense_end; i < full.size(); i += 29) cuts.push_back(i);
  for (std::size_t i = full.size() - std::min<std::size_t>(20, full.size());
       i < full.size(); ++i) {
    cuts.push_back(i);
  }
  for (std::size_t cut : cuts) {
    std::stringstream in(full.substr(0, cut));
    auto loaded = SetSimilarityIndex::Load(f->store, in);
    ASSERT_FALSE(loaded.ok()) << "truncated to " << cut << " bytes loaded";
    EXPECT_TRUE(loaded.status().IsDataLoss() ||
                loaded.status().IsCorruption())
        << "truncated to " << cut
        << " bytes: " << loaded.status().ToString();
  }
}

TEST(FamilyPersistenceTest, ShardedFamilySkewIsNotSupported) {
  Rng rng(77);
  SetCollection sets;
  for (int i = 0; i < 60; ++i) {
    ElementSet s;
    const std::size_t size = 8 + rng.Uniform(40);
    for (std::size_t j = 0; j < size; ++j) s.push_back(rng.Uniform(4000));
    NormalizeSet(s);
    if (s.empty()) s.push_back(1);
    sets.push_back(s);
  }
  IndexLayout layout;
  layout.delta = 0.4;
  layout.points = {{0.4, FilterKind::kSimilarity, 6, 0},
                   {0.75, FilterKind::kSimilarity, 6, 0}};
  shard::ShardedIndexOptions options;
  options.num_shards = 2;
  options.index.embedding.minhash.num_hashes = 40;
  options.index.embedding.minhash.seed = 777;
  options.index.seed = 4242;
  auto built = shard::ShardedSetSimilarityIndex::Build(sets, layout, options);
  ASSERT_TRUE(built.ok()) << built.status().ToString();

  std::stringstream buffer;
  ASSERT_TRUE(built->SaveTo(buffer).ok());
  std::string bytes = buffer.str();

  // Re-sign shard 1's nested snapshot as cminhash (fixing the nested
  // checksums too): both shards now load cleanly on their own, and the
  // only detectable fault is the cross-shard family skew.
  RewriteSection(&bytes, "shard1_index", [](std::string* inner) {
    RewriteSection(inner, "options", [](std::string* payload) {
      payload->back() =
          static_cast<char>(MinHashFamilyKind::kCMinHash);
    });
  });
  std::stringstream in(bytes);
  auto loaded = shard::ShardedSetSimilarityIndex::Load(in, options);
  ASSERT_FALSE(loaded.ok());
  EXPECT_TRUE(loaded.status().IsNotSupported())
      << loaded.status().ToString();

  // Control: the identical surgery writing the *same* family byte back is
  // a no-op and must load (proving the surgeon, not the skew, is benign).
  std::string control = buffer.str();
  RewriteSection(&control, "shard1_index", [](std::string* inner) {
    RewriteSection(inner, "options", [](std::string* payload) {
      payload->back() = static_cast<char>(MinHashFamilyKind::kClassic);
    });
  });
  std::stringstream control_in(control);
  auto control_loaded =
      shard::ShardedSetSimilarityIndex::Load(control_in, options);
  EXPECT_TRUE(control_loaded.ok()) << control_loaded.status().ToString();
}

TEST(FamilyPersistenceTest, CheckpointRecoveryPreservesFamilyAndReplays) {
  for (MinHashFamilyKind family : kAllMinHashFamilies) {
    auto f = BuildFixture(30, family);
    ASSERT_NE(f, nullptr);

    std::ostringstream ckpt;
    ASSERT_TRUE(WriteIndexCheckpoint(*f->index, /*stable_lsn=*/0, ckpt).ok());
    std::ostringstream wal_stream;
    WalWriter wal(wal_stream, kWalFirstLsn);
    f->index->AttachWal(&wal);

    // Mutations past the checkpoint, through the WAL: recovery must replay
    // them under the checkpointed family.
    Rng rng(91);
    for (int t = 0; t < 6; ++t) {
      ElementSet s;
      const std::size_t size = 10 + rng.Uniform(30);
      for (std::size_t j = 0; j < size; ++j) s.push_back(rng.Uniform(5000));
      NormalizeSet(s);
      if (s.empty()) s.push_back(1);
      auto sid = f->store.Add(s);
      ASSERT_TRUE(sid.ok());
      ASSERT_TRUE(f->index->Insert(*sid, s).ok());
    }
    ASSERT_TRUE(f->index->Erase(2).ok());
    f->index->AttachWal(nullptr);

    std::istringstream ckpt_in(ckpt.str());
    std::istringstream wal_in(wal_stream.str());
    auto recovered = RecoverIndex(ckpt_in, &wal_in);
    ASSERT_TRUE(recovered.ok()) << MinHashFamilyName(family) << ": "
                                << recovered.status().ToString();
    EXPECT_EQ(recovered->index->embedding().params().minhash.family, family);
    EXPECT_EQ(recovered->index->ContentDigest(), f->index->ContentDigest())
        << MinHashFamilyName(family);
  }
}

}  // namespace
}  // namespace ssr
