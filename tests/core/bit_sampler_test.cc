#include "core/bit_sampler.h"

#include <set>

#include <gtest/gtest.h>

#include "util/hash.h"

namespace ssr {
namespace {

Embedding MakeEmbedding(std::size_t k = 8, unsigned bits = 6) {
  EmbeddingParams p;
  p.minhash.num_hashes = k;
  p.minhash.value_bits = bits;
  p.minhash.seed = 71;
  auto e = Embedding::Create(p);
  EXPECT_TRUE(e.ok());
  return std::move(e).value();
}

TEST(BitSamplerTest, SamplesDistinctValidPositions) {
  Embedding e = MakeEmbedding();
  Rng rng(1);
  BitSampler sampler(e, 50, rng);
  EXPECT_EQ(sampler.r(), 50u);
  std::set<std::pair<std::uint32_t, std::uint32_t>> seen;
  for (const BitPosition& p : sampler.positions()) {
    EXPECT_LT(p.coordinate, 8u);
    EXPECT_LT(p.code_pos, e.code().codeword_bits());
    seen.insert({p.coordinate, p.code_pos});
  }
  EXPECT_EQ(seen.size(), 50u);  // without replacement
}

TEST(BitSamplerTest, KeyMatchesMaterializedEmbedding) {
  Embedding e = MakeEmbedding();
  Rng rng(2);
  BitSampler sampler(e, 64, rng);
  Signature sig(8);
  for (std::size_t i = 0; i < 8; ++i) {
    sig[i] = static_cast<std::uint16_t>(i * 7 + 3);
  }
  const BitVector full = e.EmbedSignature(sig);
  const BitVector key = sampler.ExtractKey(sig);
  const unsigned m = e.code().codeword_bits();
  for (std::size_t i = 0; i < sampler.r(); ++i) {
    const BitPosition& p = sampler.positions()[i];
    EXPECT_EQ(key.Get(i), full.Get(p.coordinate * m + p.code_pos));
  }
}

TEST(BitSamplerTest, ComplementedKeyFlipsEveryBit) {
  Embedding e = MakeEmbedding();
  Rng rng(3);
  BitSampler sampler(e, 32, rng);
  Signature sig(8);
  for (std::size_t i = 0; i < 8; ++i) sig[i] = static_cast<std::uint16_t>(i);
  const BitVector normal = sampler.ExtractKey(sig, false);
  const BitVector flipped = sampler.ExtractKey(sig, true);
  EXPECT_EQ(normal.Complement(), flipped);
}

TEST(BitSamplerTest, KeyHashConsistentWithKeyBits) {
  Embedding e = MakeEmbedding();
  Rng rng(4);
  BitSampler sampler(e, 40, rng);
  Signature a(8), b(8), c(8);
  for (std::size_t i = 0; i < 8; ++i) {
    a[i] = static_cast<std::uint16_t>(i + 1);
    b[i] = static_cast<std::uint16_t>(i + 1);
    c[i] = static_cast<std::uint16_t>(i + 2);
  }
  EXPECT_EQ(sampler.ExtractKeyHash(a), sampler.ExtractKeyHash(b));
  if (sampler.ExtractKey(a) != sampler.ExtractKey(c)) {
    EXPECT_NE(sampler.ExtractKeyHash(a), sampler.ExtractKeyHash(c));
  }
}

TEST(BitSamplerTest, HashDiffersForComplement) {
  Embedding e = MakeEmbedding();
  Rng rng(5);
  BitSampler sampler(e, 16, rng);
  Signature sig(8);
  for (std::size_t i = 0; i < 8; ++i) sig[i] = 5;
  EXPECT_NE(sampler.ExtractKeyHash(sig, false),
            sampler.ExtractKeyHash(sig, true));
}

TEST(BitSamplerTest, ExplicitPositionsConstructor) {
  Embedding e = MakeEmbedding(4, 3);
  std::vector<BitPosition> positions{{0, 1}, {2, 5}, {3, 0}};
  BitSampler sampler(e, positions);
  EXPECT_EQ(sampler.r(), 3u);
  EXPECT_EQ(sampler.positions()[1], (BitPosition{2, 5}));
}

TEST(BitSamplerTest, LargeRWithReplacement) {
  Embedding e = MakeEmbedding(2, 3);  // D = 16, force replacement
  Rng rng(6);
  BitSampler sampler(e, 100, rng);
  EXPECT_EQ(sampler.r(), 100u);
  for (const BitPosition& p : sampler.positions()) {
    EXPECT_LT(p.coordinate, 2u);
    EXPECT_LT(p.code_pos, 8u);
  }
}

TEST(BitSamplerTest, KeysLongerThan64Bits) {
  Embedding e = MakeEmbedding(16, 8);
  Rng rng(7);
  BitSampler sampler(e, 200, rng);
  Signature a(16), b(16);
  for (std::size_t i = 0; i < 16; ++i) {
    a[i] = static_cast<std::uint16_t>(i * 3);
    b[i] = static_cast<std::uint16_t>(i * 3);
  }
  b[15] = static_cast<std::uint16_t>(b[15] ^ 0xff);
  EXPECT_EQ(sampler.ExtractKeyHash(a), sampler.ExtractKeyHash(a));
  if (sampler.ExtractKey(a) != sampler.ExtractKey(b)) {
    EXPECT_NE(sampler.ExtractKeyHash(a), sampler.ExtractKeyHash(b));
  }
}

// The Hadamard probe fast path (popcount parity instead of a virtual
// Code::Bit per sampled position) must produce exactly the generic
// algorithm's hash. The reference below *is* the generic loop — virtual
// dispatch, same word packing, same final partial-word sentinel — so any
// divergence in the inlined parity computation fails here.
TEST(BitSamplerTest, HadamardFastPathMatchesGenericExtraction) {
  Embedding e = MakeEmbedding(16, 8);  // Hadamard is the default code kind
  ASSERT_EQ(e.params().code_kind, CodeKind::kHadamard);
  Rng rng(8);
  for (std::size_t r : {7u, 40u, 64u, 65u, 130u}) {
    BitSampler sampler(e, r, rng);
    for (int t = 0; t < 4; ++t) {
      Signature sig(16);
      for (std::size_t i = 0; i < 16; ++i) {
        sig[i] = static_cast<std::uint16_t>(rng.Next() & 0xff);
      }
      for (bool complemented : {false, true}) {
        std::uint64_t h = 0x9ae16a3b2f90404fULL;
        std::uint64_t word = 0;
        unsigned filled = 0;
        for (const BitPosition& p : sampler.positions()) {
          bool bit = e.code().Bit(sig[p.coordinate], p.code_pos);
          if (complemented) bit = !bit;
          word = (word << 1) | static_cast<std::uint64_t>(bit);
          if (++filled == 64) {
            h = HashCombine(h, word);
            word = 0;
            filled = 0;
          }
        }
        if (filled != 0) h = HashCombine(h, word | (1ULL << filled));
        ASSERT_EQ(sampler.ExtractKeyHash(sig, complemented), h)
            << "r=" << r << " complemented=" << complemented;
      }
    }
  }
}

}  // namespace
}  // namespace ssr
