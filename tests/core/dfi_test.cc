#include "core/dfi.h"

#include <algorithm>

#include <gtest/gtest.h>

#include "util/set_ops.h"

namespace ssr {
namespace {

Embedding MakeEmbedding(std::size_t k = 100, unsigned bits = 8) {
  EmbeddingParams p;
  p.minhash.num_hashes = k;
  p.minhash.value_bits = bits;
  p.minhash.seed = 91;
  auto e = Embedding::Create(p);
  EXPECT_TRUE(e.ok());
  return std::move(e).value();
}

ElementSet SetWithOverlap(const ElementSet& query, std::size_t inter,
                          std::size_t priv, ElementId private_base) {
  ElementSet s(query.begin(), query.begin() + inter);
  for (std::size_t i = 0; i < priv; ++i) s.push_back(private_base + i);
  NormalizeSet(s);
  return s;
}

TEST(DfiTest, CreateValidates) {
  Embedding e = MakeEmbedding(10);
  SfiParams params;
  params.s_star = 0.0;
  EXPECT_FALSE(DissimilarityFilterIndex::Create(e, params, 10).ok());
  params.s_star = 0.6;
  params.l = 4;
  EXPECT_TRUE(DissimilarityFilterIndex::Create(e, params, 10).ok());
}

TEST(DfiTest, InnerSfiUsesComplementTurningPoint) {
  Embedding e = MakeEmbedding(10);
  SfiParams params;
  params.s_star = 0.6;  // dissimilarity threshold in Hamming space
  params.l = 8;
  auto dfi = DissimilarityFilterIndex::Create(e, params, 100);
  ASSERT_TRUE(dfi.ok());
  EXPECT_DOUBLE_EQ(dfi->s_star(), 0.6);
  // Theorem 2: inner SFI turns at 1 - s*.
  EXPECT_NEAR(dfi->sfi().filter().TurningPoint(), 0.4, 0.08);
}

TEST(DfiTest, SelfProbeNotRetrieved) {
  // A vector is maximally similar to itself, so a dissimilarity probe must
  // not return it (its complement shares no sampled bit).
  Embedding e = MakeEmbedding(50);
  SfiParams params;
  params.s_star = 0.55;
  params.l = 10;
  auto dfi = DissimilarityFilterIndex::Create(e, params, 100);
  ASSERT_TRUE(dfi.ok());
  const Signature sig = e.Sign({1, 2, 3, 4, 5});
  dfi->Insert(1, sig);
  EXPECT_TRUE(dfi->DissimVector(sig).empty());
}

// Theorem 2 end-to-end: dissimilar sets retrieved, similar ones not.
TEST(DfiTest, RetrievesDissimilarNotSimilar) {
  Embedding e = MakeEmbedding(100, 8);
  // Dissimilarity threshold: set-similarity 0.3 -> Hamming (1+0.3)/2=0.65.
  SfiParams params;
  params.s_star = e.SetToHammingSimilarity(0.3);
  params.l = 15;
  auto dfi = DissimilarityFilterIndex::Create(e, params, 1000);
  ASSERT_TRUE(dfi.ok());

  ElementSet query;
  for (ElementId x = 0; x < 120; ++x) query.push_back(x);

  // sim = i / (240 - i): disjoint (i=0, sim 0) and near-identical (i=114).
  const int kPerPop = 150;
  std::vector<SetId> dissimilar_sids, similar_sids;
  SetId next = 0;
  for (int c = 0; c < kPerPop; ++c) {
    dfi->Insert(next, e.Sign(SetWithOverlap(
                          query, 0, 120,
                          2000000 + static_cast<ElementId>(next) * 1000)));
    dissimilar_sids.push_back(next++);
  }
  for (int c = 0; c < kPerPop; ++c) {
    dfi->Insert(next, e.Sign(SetWithOverlap(
                          query, 114, 6,
                          5000000 + static_cast<ElementId>(next) * 1000)));
    similar_sids.push_back(next++);
  }
  const auto result = dfi->DissimVector(e.Sign(query));
  int found_dissimilar = 0, found_similar = 0;
  for (SetId sid : dissimilar_sids) {
    if (std::binary_search(result.begin(), result.end(), sid)) {
      ++found_dissimilar;
    }
  }
  for (SetId sid : similar_sids) {
    if (std::binary_search(result.begin(), result.end(), sid)) {
      ++found_similar;
    }
  }
  EXPECT_GE(found_dissimilar, kPerPop * 85 / 100);
  EXPECT_LE(found_similar, kPerPop * 15 / 100);
}

TEST(DfiTest, EraseRemovesFromAllTables) {
  Embedding e = MakeEmbedding(30);
  SfiParams params;
  params.s_star = 0.5;
  params.l = 6;
  auto dfi = DissimilarityFilterIndex::Create(e, params, 10);
  ASSERT_TRUE(dfi.ok());
  const Signature sig = e.Sign({9, 8, 7});
  dfi->Insert(3, sig);
  EXPECT_EQ(dfi->size(), 1u);
  EXPECT_EQ(dfi->Erase(3, sig), dfi->l());
  EXPECT_EQ(dfi->size(), 0u);
}

}  // namespace
}  // namespace ssr
