#include "core/set_similarity_index.h"

#include <gtest/gtest.h>

#include "baseline/exact_evaluator.h"
#include "eval/metrics.h"
#include "util/random.h"
#include "util/set_ops.h"

namespace ssr {
namespace {

// A clustered collection: groups of near-duplicates plus random background,
// giving answers at every similarity level.
SetCollection MakeClusteredCollection(std::size_t n, std::uint64_t seed) {
  SetCollection sets;
  Rng rng(seed);
  while (sets.size() < n) {
    // Seed set for a cluster.
    ElementSet base;
    const std::size_t size = 30 + rng.Uniform(50);
    for (std::size_t i = 0; i < size; ++i) {
      base.push_back(rng.Uniform(20000));
    }
    NormalizeSet(base);
    if (base.empty()) continue;
    sets.push_back(base);
    // A few mutated companions at varying similarity.
    const std::size_t companions = rng.Uniform(5);
    for (std::size_t c = 0; c < companions && sets.size() < n; ++c) {
      ElementSet mutated = base;
      const std::size_t mutations = 1 + rng.Uniform(base.size());
      for (std::size_t m = 0; m < mutations; ++m) {
        mutated[rng.Uniform(mutated.size())] = rng.Uniform(20000);
      }
      NormalizeSet(mutated);
      if (!mutated.empty()) sets.push_back(mutated);
    }
  }
  sets.resize(n);
  return sets;
}

struct Fixture {
  SetCollection sets;
  SetStore store;
  std::unique_ptr<SetSimilarityIndex> index;
};

std::unique_ptr<Fixture> BuildFixture(std::size_t n, const IndexLayout& layout,
                                      std::size_t num_hashes = 100) {
  auto f = std::make_unique<Fixture>();
  f->sets = MakeClusteredCollection(n, 1234);
  for (const auto& set : f->sets) {
    EXPECT_TRUE(f->store.Add(set).ok());
  }
  IndexOptions options;
  options.embedding.minhash.num_hashes = num_hashes;
  options.embedding.minhash.value_bits = 8;
  options.embedding.minhash.seed = 555;
  options.seed = 777;
  auto index = SetSimilarityIndex::Build(f->store, layout, options);
  EXPECT_TRUE(index.ok()) << index.status().ToString();
  if (!index.ok()) return nullptr;
  f->index = std::make_unique<SetSimilarityIndex>(std::move(index).value());
  return f;
}

IndexLayout FullLayout() {
  IndexLayout layout;
  layout.delta = 0.4;
  layout.points = {{0.15, FilterKind::kDissimilarity, 12, 0},
                   {0.4, FilterKind::kDissimilarity, 12, 0},
                   {0.4, FilterKind::kSimilarity, 12, 0},
                   {0.75, FilterKind::kSimilarity, 12, 0}};
  return layout;
}

TEST(SetSimilarityIndexTest, BuildRequiresValidLayout) {
  SetStore store;
  ASSERT_TRUE(store.Add({1, 2, 3}).ok());
  IndexOptions options;
  IndexLayout empty;
  EXPECT_FALSE(SetSimilarityIndex::Build(store, empty, options).ok());
  IndexLayout bad;
  bad.points = {{0.5, FilterKind::kSimilarity, 0, 0}};
  EXPECT_FALSE(SetSimilarityIndex::Build(store, bad, options).ok());
}

TEST(SetSimilarityIndexTest, BuildIndexesAllLiveSets) {
  auto f = BuildFixture(300, FullLayout());
  ASSERT_NE(f, nullptr);
  EXPECT_EQ(f->index->num_live_sets(), 300u);
  EXPECT_EQ(f->index->num_filter_indices(), 4u);
}

TEST(SetSimilarityIndexTest, QueryValidatesArguments) {
  auto f = BuildFixture(50, FullLayout());
  ASSERT_NE(f, nullptr);
  EXPECT_FALSE(f->index->Query({1, 2}, 0.8, 0.2).ok());
  EXPECT_FALSE(f->index->Query({1, 2}, -0.1, 0.5).ok());
  EXPECT_FALSE(f->index->Query({1, 2}, 0.1, 1.5).ok());
  EXPECT_FALSE(f->index->Query({2, 1}, 0.1, 0.5).ok());  // unnormalized
  EXPECT_TRUE(f->index->Query({1, 2}, 0.1, 0.5).ok());
}

TEST(SetSimilarityIndexTest, VerifiedAnswersAreSubsetOfTruth) {
  auto f = BuildFixture(400, FullLayout());
  ASSERT_NE(f, nullptr);
  ExactEvaluator exact(f->sets);
  Rng rng(11);
  for (int t = 0; t < 20; ++t) {
    const ElementSet& q = f->sets[rng.Uniform(f->sets.size())];
    const double s1 = rng.NextDouble() * 0.8;
    const double s2 = s1 + 0.1 + rng.NextDouble() * (1.0 - s1 - 0.1);
    auto result = f->index->Query(q, s1, s2);
    ASSERT_TRUE(result.ok());
    const auto truth = exact.Query(q, s1, s2);
    // Verification guarantees every returned sid is a true answer.
    EXPECT_EQ(SortedIntersectionCount(result->sids, truth),
              result->sids.size());
  }
}

TEST(SetSimilarityIndexTest, HighSimilarityQueriesHaveHighRecall) {
  auto f = BuildFixture(400, FullLayout());
  ASSERT_NE(f, nullptr);
  ExactEvaluator exact(f->sets);
  double recall_sum = 0.0;
  int queries = 0;
  for (SetId sid = 0; sid < 40; ++sid) {
    const ElementSet& q = f->sets[sid];
    auto result = f->index->Query(q, 0.8, 1.0);
    ASSERT_TRUE(result.ok());
    const auto truth = exact.Query(q, 0.8, 1.0);
    recall_sum += Recall(result->sids, truth);
    ++queries;
  }
  EXPECT_GT(recall_sum / queries, 0.9);
}

TEST(SetSimilarityIndexTest, SelfQueryFindsSelf) {
  auto f = BuildFixture(200, FullLayout());
  ASSERT_NE(f, nullptr);
  for (SetId sid = 0; sid < 20; ++sid) {
    auto result = f->index->Query(f->sets[sid], 0.9, 1.0);
    ASSERT_TRUE(result.ok());
    EXPECT_TRUE(std::binary_search(result->sids.begin(), result->sids.end(),
                                   sid))
        << "self not found for sid " << sid;
  }
}

TEST(SetSimilarityIndexTest, PlanSelectionPerRange) {
  auto f = BuildFixture(200, FullLayout());
  ASSERT_NE(f, nullptr);
  const ElementSet& q = f->sets[0];
  // Entirely below delta: DFI pair.
  auto low = f->index->Query(q, 0.02, 0.1);
  ASSERT_TRUE(low.ok());
  EXPECT_EQ(low->stats.plan, QueryPlanKind::kDfiPair);
  // Entirely above delta: SFI pair.
  auto high = f->index->Query(q, 0.8, 0.95);
  ASSERT_TRUE(high.ok());
  EXPECT_EQ(high->stats.plan, QueryPlanKind::kSfiPair);
  // Straddling delta: mixed.
  auto mid = f->index->Query(q, 0.3, 0.6);
  ASSERT_TRUE(mid.ok());
  EXPECT_EQ(mid->stats.plan, QueryPlanKind::kMixed);
  // Full range: no probing.
  auto full = f->index->Query(q, 0.0, 1.0);
  ASSERT_TRUE(full.ok());
  EXPECT_EQ(full->stats.plan, QueryPlanKind::kFullCollection);
  EXPECT_EQ(full->sids.size(), 200u);
  EXPECT_EQ(full->stats.bucket_accesses, 0u);
}

TEST(SetSimilarityIndexTest, StatsReportEnclosingPoints) {
  auto f = BuildFixture(100, FullLayout());
  ASSERT_NE(f, nullptr);
  auto result = f->index->Query(f->sets[0], 0.5, 0.7);
  ASSERT_TRUE(result.ok());
  EXPECT_DOUBLE_EQ(result->stats.lo_point, 0.4);
  EXPECT_DOUBLE_EQ(result->stats.up_point, 0.75);
}

TEST(SetSimilarityIndexTest, QueryCandidatesSkipsVerification) {
  auto f = BuildFixture(200, FullLayout());
  ASSERT_NE(f, nullptr);
  auto candidates = f->index->QueryCandidates(f->sets[0], 0.7, 1.0);
  ASSERT_TRUE(candidates.ok());
  EXPECT_EQ(candidates->stats.sets_fetched, 0u);
  auto verified = f->index->Query(f->sets[0], 0.7, 1.0);
  ASSERT_TRUE(verified.ok());
  EXPECT_LE(verified->sids.size(), candidates->sids.size());
}

TEST(SetSimilarityIndexTest, BucketIoChargedAsRandomReads) {
  auto f = BuildFixture(200, FullLayout());
  ASSERT_NE(f, nullptr);
  f->store.ResetIoAccounting();
  auto result = f->index->Query(f->sets[0], 0.8, 0.95);
  ASSERT_TRUE(result.ok());
  EXPECT_GE(result->stats.io.random_reads, result->stats.bucket_accesses);
}

TEST(SetSimilarityIndexTest, DynamicInsertMakesSetFindable) {
  auto f = BuildFixture(100, FullLayout());
  ASSERT_NE(f, nullptr);
  // A brand-new set: a clone of set 0 (so it is 1.0-similar to it).
  const ElementSet clone = f->sets[0];
  auto sid = f->store.Add(clone);
  ASSERT_TRUE(sid.ok());
  ASSERT_TRUE(f->index->Insert(sid.value(), clone).ok());
  auto result = f->index->Query(f->sets[0], 0.95, 1.0);
  ASSERT_TRUE(result.ok());
  EXPECT_TRUE(std::binary_search(result->sids.begin(), result->sids.end(),
                                 sid.value()));
  EXPECT_EQ(f->index->num_live_sets(), 101u);
}

TEST(SetSimilarityIndexTest, DynamicEraseRemovesFromAnswers) {
  auto f = BuildFixture(100, FullLayout());
  ASSERT_NE(f, nullptr);
  ASSERT_TRUE(f->index->Erase(0).ok());
  ASSERT_TRUE(f->store.Delete(0).ok());
  auto result = f->index->Query(f->sets[0], 0.9, 1.0);
  ASSERT_TRUE(result.ok());
  EXPECT_FALSE(
      std::binary_search(result->sids.begin(), result->sids.end(), SetId{0}));
  EXPECT_TRUE(f->index->Erase(0).IsNotFound());
  EXPECT_EQ(f->index->num_live_sets(), 99u);
}

TEST(SetSimilarityIndexTest, EraseOfNeverInsertedSidIsNotFound) {
  auto f = BuildFixture(20, FullLayout());
  ASSERT_NE(f, nullptr);
  // Beyond the sid capacity entirely: never inserted.
  EXPECT_TRUE(f->index->Erase(20).IsNotFound());
  EXPECT_TRUE(f->index->Erase(10'000).IsNotFound());
  // Inside the capacity but never inserted: a dynamic insert at a sparse
  // sid grows the slot table, leaving a hole of never-live sids below it.
  ASSERT_TRUE(f->index->Insert(30, f->sets[0]).ok());
  EXPECT_TRUE(f->index->Erase(25).IsNotFound());
  EXPECT_TRUE(f->index->Erase(30).ok());
  EXPECT_TRUE(f->index->Erase(30).IsNotFound());
  EXPECT_EQ(f->index->num_live_sets(), 20u);
}

TEST(SetSimilarityIndexTest, InsertRejectsDuplicatesAndBadSets) {
  auto f = BuildFixture(50, FullLayout());
  ASSERT_NE(f, nullptr);
  EXPECT_TRUE(f->index->Insert(0, {1, 2}).IsAlreadyExists());
  EXPECT_TRUE(f->index->Insert(1000, {2, 1}).IsInvalidArgument());
}

TEST(SetSimilarityIndexTest, SignatureAccessor) {
  auto f = BuildFixture(50, FullLayout());
  ASSERT_NE(f, nullptr);
  auto sig = f->index->signature(0);
  ASSERT_TRUE(sig.has_value());
  EXPECT_EQ(sig->size(), 100u);
  EXPECT_EQ(*sig, f->index->embedding().Sign(f->sets[0]));
  EXPECT_FALSE(f->index->signature(9999).has_value());
}

TEST(SetSimilarityIndexTest, SfiOnlyLayoutStillAnswersLowRanges) {
  // The paper's first-attempt layout: SFIs only. Low-similarity queries
  // degenerate to the expensive all-sids plan but must stay correct.
  IndexLayout layout = IndexLayout::UniformSfi({0.3, 0.6, 0.9}, 10);
  auto f = BuildFixture(150, layout);
  ASSERT_NE(f, nullptr);
  ExactEvaluator exact(f->sets);
  const ElementSet& q = f->sets[3];
  auto result = f->index->Query(q, 0.05, 0.2);
  ASSERT_TRUE(result.ok());
  const auto truth = exact.Query(q, 0.05, 0.2);
  EXPECT_EQ(SortedIntersectionCount(result->sids, truth),
            result->sids.size());
  EXPECT_EQ(result->stats.plan, QueryPlanKind::kSfiPair);
}

TEST(SetSimilarityIndexTest, DfiOnlyLayoutCoversHighRanges) {
  IndexLayout layout;
  layout.delta = 1.0;
  layout.points = {{0.2, FilterKind::kDissimilarity, 10, 0},
                   {0.5, FilterKind::kDissimilarity, 10, 0}};
  auto f = BuildFixture(150, layout);
  ASSERT_NE(f, nullptr);
  ExactEvaluator exact(f->sets);
  const ElementSet& q = f->sets[5];
  auto result = f->index->Query(q, 0.7, 1.0);
  ASSERT_TRUE(result.ok());
  const auto truth = exact.Query(q, 0.7, 1.0);
  // The fallback plan uses all live sids minus Dissim(lo): recall must be
  // high because nothing above lo is excluded... modulo filter error at lo.
  EXPECT_GE(Recall(result->sids, truth), 0.9);
}

}  // namespace
}  // namespace ssr
