#include "core/hash_table.h"

#include <gtest/gtest.h>

#include "util/hash.h"

namespace ssr {
namespace {

std::vector<SetId> ProbeAll(const SidHashTable& table,
                            std::uint64_t key_hash) {
  std::vector<SetId> out;
  table.Probe(key_hash, &out);
  return out;
}

TEST(SidHashTableTest, BucketCountRoundedToPowerOfTwo) {
  EXPECT_EQ(SidHashTable(100).num_buckets(), 128u);
  EXPECT_EQ(SidHashTable(128).num_buckets(), 128u);
  EXPECT_EQ(SidHashTable(0).num_buckets(), 1u);
}

TEST(SidHashTableTest, InsertThenProbeFindsSid) {
  SidHashTable table(64);
  table.Insert(12345, 7);
  const auto found = ProbeAll(table, 12345);
  ASSERT_EQ(found.size(), 1u);
  EXPECT_EQ(found[0], 7u);
  EXPECT_EQ(table.size(), 1u);
}

TEST(SidHashTableTest, SameKeySharesBucket) {
  SidHashTable table(64);
  table.Insert(99, 1);
  table.Insert(99, 2);
  table.Insert(99, 3);
  EXPECT_EQ(ProbeAll(table, 99).size(), 3u);
}

TEST(SidHashTableTest, FingerprintFiltersBucketCollisions) {
  // Two keys that share a bucket (same low bits) but differ in their
  // fingerprint bits must not see each other's sids.
  SidHashTable table(16);  // 16 buckets: low 4 bits select the bucket
  const std::uint64_t key_a = 0x1111000000000005ULL;
  const std::uint64_t key_b = 0x2222000000000005ULL;  // same bucket, diff fp
  table.Insert(key_a, 1);
  table.Insert(key_b, 2);
  const auto a = ProbeAll(table, key_a);
  const auto b = ProbeAll(table, key_b);
  ASSERT_EQ(a.size(), 1u);
  ASSERT_EQ(b.size(), 1u);
  EXPECT_EQ(a[0], 1u);
  EXPECT_EQ(b[0], 2u);
}

TEST(SidHashTableTest, ProbeReportsPhysicalBucketSize) {
  SidHashTable table(16);
  const std::uint64_t key_a = 0x1111000000000005ULL;
  const std::uint64_t key_b = 0x2222000000000005ULL;
  table.Insert(key_a, 1);
  table.Insert(key_b, 2);
  std::vector<SetId> out;
  // The probe scans the whole shared bucket even though only one entry
  // matches (the I/O cost of reading the bucket page).
  EXPECT_EQ(table.Probe(key_a, &out), 2u);
  EXPECT_EQ(out.size(), 1u);
}

TEST(SidHashTableTest, EraseRemovesOneOccurrence) {
  SidHashTable table(64);
  table.Insert(5, 1);
  table.Insert(5, 2);
  EXPECT_TRUE(table.Erase(5, 1));
  const auto found = ProbeAll(table, 5);
  ASSERT_EQ(found.size(), 1u);
  EXPECT_EQ(found[0], 2u);
  EXPECT_FALSE(table.Erase(5, 1));
  EXPECT_EQ(table.size(), 1u);
}

TEST(SidHashTableTest, EraseRequiresMatchingFingerprint) {
  SidHashTable table(16);
  const std::uint64_t key_a = 0x1111000000000005ULL;
  const std::uint64_t key_b = 0x2222000000000005ULL;
  table.Insert(key_a, 1);
  EXPECT_FALSE(table.Erase(key_b, 1));  // same bucket, wrong key
  EXPECT_TRUE(table.Erase(key_a, 1));
}

TEST(SidHashTableTest, ProbeCountsBucketAccesses) {
  SidHashTable table(64);
  table.Insert(1, 1);
  EXPECT_EQ(table.bucket_accesses(), 0u);
  std::vector<SetId> out;
  table.Probe(1, &out);
  table.Probe(2, &out);
  table.Probe(3, &out);
  EXPECT_EQ(table.bucket_accesses(), 3u);
  table.ResetCounters();
  EXPECT_EQ(table.bucket_accesses(), 0u);
}

TEST(SidHashTableTest, DistributesAcrossBuckets) {
  SidHashTable table(256);
  for (SetId sid = 0; sid < 1000; ++sid) {
    table.Insert(SplitMix64(sid), sid);
  }
  EXPECT_EQ(table.size(), 1000u);
  // With 1000 well-hashed keys over 256 buckets, the max chain should be
  // modest (expected ~4, tail < 20).
  EXPECT_LT(table.max_bucket_size(), 20u);
}

TEST(SidHashTableTest, EmptyProbeReturnsNothing) {
  SidHashTable table(16);
  std::vector<SetId> out;
  EXPECT_EQ(table.Probe(42, &out), 0u);
  EXPECT_TRUE(out.empty());
}

}  // namespace
}  // namespace ssr
