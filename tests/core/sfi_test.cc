#include "core/sfi.h"

#include <algorithm>

#include <gtest/gtest.h>

#include "util/random.h"
#include "util/set_ops.h"

namespace ssr {
namespace {

Embedding MakeEmbedding(std::size_t k = 100, unsigned bits = 8,
                        std::uint64_t seed = 81) {
  EmbeddingParams p;
  p.minhash.num_hashes = k;
  p.minhash.value_bits = bits;
  p.minhash.seed = seed;
  auto e = Embedding::Create(p);
  EXPECT_TRUE(e.ok());
  return std::move(e).value();
}

// Builds a set sharing exactly `inter` elements with `query` and padded
// with `priv` private elements drawn from a disjoint id range.
ElementSet SetWithOverlap(const ElementSet& query, std::size_t inter,
                          std::size_t priv, ElementId private_base) {
  ElementSet s(query.begin(), query.begin() + inter);
  for (std::size_t i = 0; i < priv; ++i) {
    s.push_back(private_base + i);
  }
  NormalizeSet(s);
  return s;
}

TEST(SfiTest, CreateValidatesParams) {
  Embedding e = MakeEmbedding(10);
  SfiParams params;
  params.s_star = 0.0;
  EXPECT_FALSE(SimilarityFilterIndex::Create(e, params, 100).ok());
  params.s_star = 1.0;
  EXPECT_FALSE(SimilarityFilterIndex::Create(e, params, 100).ok());
  params.s_star = 0.8;
  params.l = 0;
  EXPECT_FALSE(SimilarityFilterIndex::Create(e, params, 100).ok());
  params.l = 4;
  EXPECT_TRUE(SimilarityFilterIndex::Create(e, params, 100).ok());
}

TEST(SfiTest, InsertEraseLifecycle) {
  Embedding e = MakeEmbedding(20);
  SfiParams params;
  params.s_star = 0.8;
  params.l = 6;
  auto sfi = SimilarityFilterIndex::Create(e, params, 10);
  ASSERT_TRUE(sfi.ok());
  const ElementSet set{1, 2, 3, 4, 5};
  const Signature sig = e.Sign(set);
  sfi->Insert(7, sig);
  EXPECT_EQ(sfi->size(), 1u);
  // Probing with the same signature must find the sid in every table.
  auto found = sfi->SimVector(sig);
  ASSERT_EQ(found.size(), 1u);
  EXPECT_EQ(found[0], 7u);
  EXPECT_EQ(sfi->Erase(7, sig), sfi->l());
  EXPECT_EQ(sfi->size(), 0u);
  EXPECT_TRUE(sfi->SimVector(sig).empty());
}

TEST(SfiTest, IdenticalVectorAlwaysRetrieved) {
  // p_{r,l}(1) = 1: an identical signature collides in every table.
  Embedding e = MakeEmbedding(50);
  SfiParams params;
  params.s_star = 0.9;
  params.l = 10;
  auto sfi = SimilarityFilterIndex::Create(e, params, 100);
  ASSERT_TRUE(sfi.ok());
  Rng rng(9);
  for (SetId sid = 0; sid < 50; ++sid) {
    ElementSet set;
    for (int i = 0; i < 20; ++i) set.push_back(rng.Uniform(10000));
    NormalizeSet(set);
    sfi->Insert(sid, e.Sign(set));
    const auto result = sfi->SimVector(e.Sign(set));
    EXPECT_TRUE(std::binary_search(result.begin(), result.end(), sid));
  }
}

TEST(SfiTest, ProbeStatsReportTableCount) {
  Embedding e = MakeEmbedding(30);
  SfiParams params;
  params.s_star = 0.8;
  params.l = 7;
  auto sfi = SimilarityFilterIndex::Create(e, params, 50);
  ASSERT_TRUE(sfi.ok());
  const Signature sig = e.Sign({1, 2, 3});
  SfiProbeStats stats;
  sfi->SimVector(sig, false, &stats);
  EXPECT_EQ(stats.bucket_accesses, 7u);
  EXPECT_GE(stats.bucket_pages, 7u);
}

TEST(SfiTest, RSolvedFromTurningPoint) {
  Embedding e = MakeEmbedding(100);
  SfiParams params;
  params.s_star = 0.9;  // Hamming-space turning point
  params.l = 20;
  auto sfi = SimilarityFilterIndex::Create(e, params, 100);
  ASSERT_TRUE(sfi.ok());
  EXPECT_NEAR(sfi->filter().TurningPoint(), 0.9, 0.05);
  EXPECT_GE(sfi->r(), 10u);  // steep filters need many bits
}

TEST(SfiTest, ExplicitROverridesSolver) {
  Embedding e = MakeEmbedding(10);
  SfiParams params;
  params.s_star = 0.9;
  params.l = 5;
  params.r = 3;
  auto sfi = SimilarityFilterIndex::Create(e, params, 100);
  ASSERT_TRUE(sfi.ok());
  EXPECT_EQ(sfi->r(), 3u);
}

// The core probabilistic contract: retrieval rates track the analytic
// p_{r,l}(s_H) curve — near 1 well above the turning point, near 0 well
// below it.
TEST(SfiTest, RetrievalRatesSeparateSimilarities) {
  Embedding e = MakeEmbedding(100, 8, 97);
  // Set-similarity threshold σ* = 0.7 -> Hamming s* = 0.85.
  SfiParams params;
  params.s_star = e.SetToHammingSimilarity(0.7);
  params.l = 15;
  auto sfi = SimilarityFilterIndex::Create(e, params, 1000);
  ASSERT_TRUE(sfi.ok());

  // Query: 120 elements.
  ElementSet query;
  for (ElementId x = 0; x < 120; ++x) query.push_back(x);

  // Population A: sim ~0.9 (inter 114, priv 13 -> 114/133 ≈ 0.857... use
  // inter=114, total 127: 114/133). Compute exact targets instead:
  // equal-size overlap: |A|=|Q|=120, inter=i -> sim = i/(240-i).
  // sim 0.9 -> i = 113.7 ≈ 114; sim 0.3 -> i = 55.4 ≈ 55; sim 0.1 -> i=21.8.
  struct Pop {
    std::size_t inter;
    double expect_min, expect_max;
  };
  const Pop pops[] = {
      {114, 0.85, 1.01},  // very similar: should almost always be found
      {22, 0.0, 0.25},    // dissimilar: should almost never be found
  };
  const int kPerPop = 150;
  SetId next_sid = 0;
  std::vector<std::pair<SetId, bool>> expectations;  // sid -> should-find
  std::vector<std::vector<SetId>> pop_sids(2);
  for (int pi = 0; pi < 2; ++pi) {
    for (int c = 0; c < kPerPop; ++c) {
      const ElementSet s = SetWithOverlap(
          query, pops[pi].inter, 120 - pops[pi].inter,
          1000000 + static_cast<ElementId>(next_sid) * 1000);
      sfi->Insert(next_sid, e.Sign(s));
      pop_sids[pi].push_back(next_sid);
      ++next_sid;
    }
  }
  const auto result = sfi->SimVector(e.Sign(query));
  for (int pi = 0; pi < 2; ++pi) {
    int found = 0;
    for (SetId sid : pop_sids[pi]) {
      if (std::binary_search(result.begin(), result.end(), sid)) ++found;
    }
    const double rate = static_cast<double>(found) / kPerPop;
    EXPECT_GE(rate, pops[pi].expect_min) << "population " << pi;
    EXPECT_LE(rate, pops[pi].expect_max) << "population " << pi;
  }
}

TEST(SfiTest, ComplementedProbeMatchesComplementSemantics) {
  // SimVector(q, complemented=true) must behave as probing with the
  // complement: an inserted signature is found by its complement probe only
  // if the keys flip to match, which for a self-probe never happens (all
  // sampled bits differ).
  Embedding e = MakeEmbedding(50);
  SfiParams params;
  params.s_star = 0.6;
  params.l = 8;
  auto sfi = SimilarityFilterIndex::Create(e, params, 100);
  ASSERT_TRUE(sfi.ok());
  const Signature sig = e.Sign({1, 2, 3, 4});
  sfi->Insert(1, sig);
  EXPECT_FALSE(sfi->SimVector(sig, true).size() == 1 &&
               sfi->SimVector(sig, false).empty());
  // Self complement probe: every sampled bit differs -> no collision
  // unless r is tiny and bucket hashing collides; with r >= 2 this is
  // overwhelmingly empty.
  if (sfi->r() >= 8) {
    EXPECT_TRUE(sfi->SimVector(sig, true).empty());
  }
}

TEST(SfiTest, SidsPerPageMatchesPageSize) {
  EXPECT_EQ(SimilarityFilterIndex::SidsPerPage(), 4096u / sizeof(SetId));
}

}  // namespace
}  // namespace ssr
