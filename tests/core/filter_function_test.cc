#include "core/filter_function.h"

#include <cmath>

#include <gtest/gtest.h>

namespace ssr {
namespace {

TEST(FilterFunctionTest, CollisionEndpoints) {
  FilterFunction f(10, 20);
  EXPECT_DOUBLE_EQ(f.Collision(0.0), 0.0);
  EXPECT_DOUBLE_EQ(f.Collision(1.0), 1.0);
}

TEST(FilterFunctionTest, CollisionFormula) {
  // p_{r,l}(s) = 1 - (1 - s^r)^l, spot values.
  FilterFunction f(2, 3);
  const double s = 0.5;
  EXPECT_NEAR(f.Collision(s), 1.0 - std::pow(1.0 - 0.25, 3.0), 1e-12);
}

TEST(FilterFunctionTest, MonotoneIncreasing) {
  FilterFunction f(8, 15);
  double prev = -1.0;
  for (double s = 0.0; s <= 1.0; s += 0.01) {
    const double p = f.Collision(s);
    EXPECT_GE(p, prev);
    prev = p;
  }
}

TEST(FilterFunctionTest, TurningPointSatisfiesHalf) {
  for (std::size_t r : {2u, 5u, 10u, 20u}) {
    for (std::size_t l : {1u, 5u, 30u}) {
      FilterFunction f(r, l);
      EXPECT_NEAR(f.Collision(f.TurningPoint()), 0.5, 1e-9)
          << "r=" << r << " l=" << l;
    }
  }
}

TEST(FilterFunctionTest, SolverHitsRequestedTurningPoint) {
  for (double s_star : {0.3, 0.5, 0.7, 0.9, 0.95}) {
    for (std::size_t l : {5u, 20u, 100u}) {
      FilterFunction f = FilterFunction::ForTurningPoint(s_star, l);
      EXPECT_EQ(f.l(), l);
      // r is rounded to an integer, so the achieved turning point is close
      // but not exact.
      EXPECT_NEAR(f.TurningPoint(), s_star, 0.06)
          << "s*=" << s_star << " l=" << l;
    }
  }
}

TEST(FilterFunctionTest, MoreTablesMeanLargerR) {
  // The paper's monotonic r-l relationship.
  const std::size_t r5 = FilterFunction::ForTurningPoint(0.8, 5).r();
  const std::size_t r20 = FilterFunction::ForTurningPoint(0.8, 20).r();
  const std::size_t r100 = FilterFunction::ForTurningPoint(0.8, 100).r();
  EXPECT_LE(r5, r20);
  EXPECT_LE(r20, r100);
  EXPECT_LT(r5, r100);
}

TEST(FilterFunctionTest, MoreTablesSharperFilter) {
  // Steeper S-curve: the 0.1 -> 0.9 transition band narrows as l grows.
  const double w5 =
      FilterFunction::ForTurningPoint(0.8, 5).TransitionWidth();
  const double w50 =
      FilterFunction::ForTurningPoint(0.8, 50).TransitionWidth();
  const double w500 =
      FilterFunction::ForTurningPoint(0.8, 500).TransitionWidth();
  EXPECT_GT(w5, w50);
  EXPECT_GT(w50, w500);
}

TEST(FilterFunctionTest, TablesForTurningPointInvertsSolver) {
  for (double s_star : {0.5, 0.7, 0.9}) {
    FilterFunction f = FilterFunction::ForTurningPoint(s_star, 25);
    const std::size_t l = FilterFunction::TablesForTurningPoint(s_star, f.r());
    // Round-tripping through integer r introduces slack.
    EXPECT_NEAR(static_cast<double>(l), 25.0, 13.0) << "s*=" << s_star;
  }
}

TEST(FilterFunctionTest, InverseCollisionInverts) {
  FilterFunction f(7, 12);
  for (double p : {0.1, 0.25, 0.5, 0.75, 0.9}) {
    EXPECT_NEAR(f.Collision(f.InverseCollision(p)), p, 1e-9);
  }
}

TEST(FilterFunctionTest, SlopePeaksNearTurningPoint) {
  FilterFunction f(10, 30);
  const double tp = f.TurningPoint();
  const double at_tp = f.Slope(tp);
  EXPECT_GT(at_tp, f.Slope(tp - 0.2));
  EXPECT_GT(at_tp, f.Slope(std::min(1.0, tp + 0.2)));
}

TEST(FilterFunctionTest, DegenerateParamsClamped) {
  FilterFunction f(0, 0);
  EXPECT_EQ(f.r(), 1u);
  EXPECT_EQ(f.l(), 1u);
  FilterFunction g = FilterFunction::ForTurningPoint(-0.5, 0);
  EXPECT_GE(g.r(), 1u);
  EXPECT_GE(g.l(), 1u);
}

// Parameterized S-curve property sweep: the filter separates similarities
// around its turning point for every (s*, l) combination.
class FilterSweep
    : public ::testing::TestWithParam<std::tuple<double, std::size_t>> {};

TEST_P(FilterSweep, SeparatesAroundTurningPoint) {
  const auto [s_star, l] = GetParam();
  FilterFunction f = FilterFunction::ForTurningPoint(s_star, l);
  const double tp = f.TurningPoint();
  EXPECT_GT(f.Collision(std::min(1.0, tp + 0.15)), 0.5);
  EXPECT_LT(f.Collision(std::max(0.0, tp - 0.15)), 0.5);
}

INSTANTIATE_TEST_SUITE_P(
    Grid, FilterSweep,
    ::testing::Combine(::testing::Values(0.4, 0.6, 0.75, 0.9),
                       ::testing::Values(std::size_t{4}, std::size_t{16},
                                         std::size_t{64})));

}  // namespace
}  // namespace ssr
