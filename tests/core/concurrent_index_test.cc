// Concurrency contracts of the single SetSimilarityIndex after
// EnableConcurrentWrites: the monotonic-reads regression (a thread that
// inserts a set observes it on its very next query — the copy-on-write
// publication never lags its own writer), erase visibility, and a
// readers-vs-writers stress where full-range queries run against live
// Insert/Erase churn. Labeled tsan-critical: the stress slice is the
// single-index half of what the difftest churn schedule does at the
// sharded layer.

#include <algorithm>
#include <atomic>
#include <memory>
#include <mutex>
#include <thread>
#include <utility>
#include <vector>

#include <gtest/gtest.h>

#include "core/set_similarity_index.h"
#include "exec/epoch.h"
#include "util/random.h"
#include "util/set_ops.h"

namespace ssr {
namespace {

ElementSet RandomSet(Rng& rng) {
  ElementSet s;
  const std::size_t size = 8 + rng.Uniform(32);
  for (std::size_t i = 0; i < size; ++i) s.push_back(rng.Uniform(4000));
  NormalizeSet(s);
  if (s.empty()) s.push_back(1);
  return s;
}

IndexLayout TestLayout() {
  IndexLayout layout;
  layout.delta = 0.3;
  layout.points = {{0.3, FilterKind::kDissimilarity, 6, 0},
                   {0.3, FilterKind::kSimilarity, 6, 0},
                   {0.7, FilterKind::kSimilarity, 6, 3}};
  return layout;
}

IndexOptions TestIndexOptions() {
  IndexOptions options;
  options.embedding.minhash.num_hashes = 64;
  options.embedding.minhash.seed = 321;
  options.seed = 777;
  return options;
}

struct LiveIndex {
  std::unique_ptr<SetStore> store;
  std::unique_ptr<SetSimilarityIndex> index;
};

LiveIndex BuildLiveIndex(Rng& rng, std::size_t initial_sets,
                         exec::EpochManager* manager) {
  LiveIndex live;
  live.store = std::make_unique<SetStore>();
  for (std::size_t i = 0; i < initial_sets; ++i) {
    EXPECT_TRUE(live.store->Add(RandomSet(rng)).ok());
  }
  auto built =
      SetSimilarityIndex::Build(*live.store, TestLayout(), TestIndexOptions());
  EXPECT_TRUE(built.ok());
  live.index =
      std::make_unique<SetSimilarityIndex>(std::move(built).value());
  live.index->EnableConcurrentWrites(manager);
  return live;
}

// The monotonic-reads regression: across a seeded loop of fresh inserts, a
// full-range query issued immediately after Insert returns — on the same
// thread — must contain the just-inserted sid. The copy-on-write swap
// publishes before Insert returns; a thread never misses its own write.
TEST(ConcurrentIndexTest, WriterObservesItsOwnInsertImmediately) {
  exec::EpochManager em;
  Rng rng(20260807);
  LiveIndex live = BuildLiveIndex(rng, 24, &em);

  for (int i = 0; i < 40; ++i) {
    const ElementSet set = RandomSet(rng);
    auto sid = live.store->Add(set);
    ASSERT_TRUE(sid.ok());
    ASSERT_TRUE(live.index->Insert(*sid, set).ok()) << "iteration " << i;
    auto answer = live.index->Query(set, 0.0, 1.0);
    ASSERT_TRUE(answer.ok()) << answer.status().ToString();
    ASSERT_TRUE(std::binary_search(answer->sids.begin(), answer->sids.end(),
                                   *sid))
        << "iteration " << i << ": insert of sid " << *sid
        << " invisible to its own writer's next query";
  }
  em.Quiesce();
}

// The mirror image: an erase acknowledged to the writer is gone from its
// very next query.
TEST(ConcurrentIndexTest, WriterObservesItsOwnEraseImmediately) {
  exec::EpochManager em;
  Rng rng(20260808);
  LiveIndex live = BuildLiveIndex(rng, 24, &em);

  for (int i = 0; i < 20; ++i) {
    const ElementSet set = RandomSet(rng);
    auto sid = live.store->Add(set);
    ASSERT_TRUE(sid.ok());
    ASSERT_TRUE(live.index->Insert(*sid, set).ok());
    ASSERT_TRUE(live.index->Erase(*sid).ok()) << "iteration " << i;
    ASSERT_TRUE(live.store->Delete(*sid).ok());
    auto answer = live.index->Query(set, 0.0, 1.0);
    ASSERT_TRUE(answer.ok()) << answer.status().ToString();
    ASSERT_FALSE(std::binary_search(answer->sids.begin(), answer->sids.end(),
                                    *sid))
        << "iteration " << i << ": erased sid " << *sid << " still visible";
  }
  em.Quiesce();
}

// Readers against live churn: R reader threads run full- and partial-range
// queries while W writer threads insert and erase. Reader answers must
// always be well-formed (sorted, unique, in-bounds) and queries must never
// error — an erase racing a candidate fetch degrades (sequential fallback)
// rather than failing. After the churn quiesces, a final query agrees with
// the surviving live set exactly.
TEST(ConcurrentIndexStressTest, QueriesStayWellFormedUnderChurn) {
  constexpr std::size_t kInitial = 48;
  constexpr int kWriters = 2;
  constexpr int kReaders = 3;
  constexpr int kOpsPerWriter = 120;

  exec::EpochManager em;
  Rng rng(977);
  LiveIndex live = BuildLiveIndex(rng, kInitial, &em);

  // Writers own disjoint sid ranges above the initial block, so they never
  // contend on a sid and the surviving set is easy to reconstruct.
  std::mutex store_mu;  // SetStore::Add allocates dense sids: serialize it
  std::atomic<bool> stop{false};
  std::vector<std::vector<SetId>> writer_live(kWriters);
  std::vector<std::thread> threads;

  for (int w = 0; w < kWriters; ++w) {
    threads.emplace_back([&, w] {
      Rng wrng(1000 + w);
      std::vector<std::pair<SetId, ElementSet>> mine;
      for (int i = 0; i < kOpsPerWriter; ++i) {
        if (mine.size() < 4 || wrng.Bernoulli(0.65)) {
          const ElementSet set = RandomSet(wrng);
          SetId sid = kInvalidSetId;
          {
            std::lock_guard<std::mutex> lock(store_mu);
            auto added = live.store->Add(set);
            ASSERT_TRUE(added.ok());
            sid = *added;
          }
          ASSERT_TRUE(live.index->Insert(sid, set).ok());
          mine.push_back({sid, set});
        } else {
          const std::size_t pick = wrng.Uniform(mine.size());
          const SetId sid = mine[pick].first;
          ASSERT_TRUE(live.index->Erase(sid).ok());
          {
            std::lock_guard<std::mutex> lock(store_mu);
            ASSERT_TRUE(live.store->Delete(sid).ok());
          }
          mine.erase(mine.begin() + pick);
        }
      }
      for (const auto& entry : mine) writer_live[w].push_back(entry.first);
    });
  }

  for (int r = 0; r < kReaders; ++r) {
    threads.emplace_back([&, r] {
      Rng rrng(2000 + r);
      while (!stop.load(std::memory_order_relaxed)) {
        const ElementSet probe = RandomSet(rrng);
        const double lo = rrng.Bernoulli(0.5) ? 0.0 : rrng.NextDouble() * 0.6;
        auto answer = live.index->Query(probe, lo, 1.0);
        ASSERT_TRUE(answer.ok()) << answer.status().ToString();
        ASSERT_TRUE(std::is_sorted(answer->sids.begin(), answer->sids.end()));
        ASSERT_TRUE(std::adjacent_find(answer->sids.begin(),
                                       answer->sids.end()) ==
                    answer->sids.end())
            << "duplicate sid in a concurrent answer";
      }
    });
  }

  for (int w = 0; w < kWriters; ++w) threads[w].join();
  stop.store(true);
  for (std::size_t t = kWriters; t < threads.size(); ++t) threads[t].join();
  em.Quiesce();

  // Quiesced: the index answers exactly the surviving sids on full range.
  std::vector<SetId> expect;
  for (SetId sid = 0; sid < kInitial; ++sid) expect.push_back(sid);
  for (const auto& survivors : writer_live) {
    expect.insert(expect.end(), survivors.begin(), survivors.end());
  }
  std::sort(expect.begin(), expect.end());
  auto final_answer = live.index->Query(RandomSet(rng), 0.0, 1.0);
  ASSERT_TRUE(final_answer.ok());
  EXPECT_EQ(final_answer->sids, expect);
  EXPECT_EQ(live.index->num_live_sets(), expect.size());
}

}  // namespace
}  // namespace ssr
