#include <sstream>

#include <gtest/gtest.h>

#include "core/set_similarity_index.h"
#include "util/random.h"
#include "util/set_ops.h"

namespace ssr {
namespace {

struct Fixture {
  SetCollection sets;
  SetStore store;
  std::unique_ptr<SetSimilarityIndex> index;
};

std::unique_ptr<Fixture> BuildFixture(std::size_t n) {
  auto f = std::make_unique<Fixture>();
  Rng rng(5150);
  for (std::size_t i = 0; i < n; ++i) {
    ElementSet s;
    const std::size_t size = 10 + rng.Uniform(60);
    for (std::size_t j = 0; j < size; ++j) s.push_back(rng.Uniform(5000));
    NormalizeSet(s);
    if (s.empty()) s.push_back(1);
    f->sets.push_back(s);
    EXPECT_TRUE(f->store.Add(s).ok());
  }
  IndexLayout layout;
  layout.delta = 0.3;
  layout.points = {{0.3, FilterKind::kDissimilarity, 6, 0},
                   {0.3, FilterKind::kSimilarity, 6, 0},
                   {0.7, FilterKind::kSimilarity, 6, 3}};
  IndexOptions options;
  options.embedding.minhash.num_hashes = 80;
  options.embedding.minhash.seed = 999;
  options.seed = 1234;
  auto index = SetSimilarityIndex::Build(f->store, layout, options);
  EXPECT_TRUE(index.ok());
  if (!index.ok()) return nullptr;
  f->index = std::make_unique<SetSimilarityIndex>(std::move(index).value());
  return f;
}

TEST(IndexPersistenceTest, LoadedIndexAnswersIdentically) {
  auto f = BuildFixture(150);
  ASSERT_NE(f, nullptr);
  ASSERT_TRUE(f->index->Erase(3).ok());  // persist a deletion too
  std::stringstream buffer;
  ASSERT_TRUE(f->index->SaveTo(buffer).ok());
  auto loaded = SetSimilarityIndex::Load(f->store, buffer);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  EXPECT_EQ(loaded->num_live_sets(), f->index->num_live_sets());
  EXPECT_EQ(loaded->num_filter_indices(), f->index->num_filter_indices());

  Rng rng(6);
  for (int t = 0; t < 25; ++t) {
    const ElementSet& q = f->sets[rng.Uniform(f->sets.size())];
    const double s1 = rng.NextDouble() * 0.8;
    const double s2 = s1 + rng.NextDouble() * (1.0 - s1);
    auto a = f->index->Query(q, s1, s2);
    auto b = loaded->Query(q, s1, s2);
    ASSERT_TRUE(a.ok() && b.ok());
    EXPECT_EQ(a->sids, b->sids) << "range [" << s1 << ", " << s2 << "]";
    EXPECT_EQ(a->stats.candidates, b->stats.candidates);
  }
}

TEST(IndexPersistenceTest, LoadedIndexSupportsDynamicOps) {
  auto f = BuildFixture(60);
  ASSERT_NE(f, nullptr);
  std::stringstream buffer;
  ASSERT_TRUE(f->index->SaveTo(buffer).ok());
  auto loaded = SetSimilarityIndex::Load(f->store, buffer);
  ASSERT_TRUE(loaded.ok());
  // Insert a clone of set 0 into the loaded index; it must be findable.
  auto sid = f->store.Add(f->sets[0]);
  ASSERT_TRUE(sid.ok());
  ASSERT_TRUE(loaded->Insert(sid.value(), f->sets[0]).ok());
  auto result = loaded->Query(f->sets[0], 0.95, 1.0);
  ASSERT_TRUE(result.ok());
  EXPECT_TRUE(std::binary_search(result->sids.begin(), result->sids.end(),
                                 sid.value()));
  ASSERT_TRUE(loaded->Erase(sid.value()).ok());
}

TEST(IndexPersistenceTest, SignaturesSurviveExactly) {
  auto f = BuildFixture(40);
  ASSERT_NE(f, nullptr);
  std::stringstream buffer;
  ASSERT_TRUE(f->index->SaveTo(buffer).ok());
  auto loaded = SetSimilarityIndex::Load(f->store, buffer);
  ASSERT_TRUE(loaded.ok());
  for (SetId sid = 0; sid < 40; ++sid) {
    EXPECT_EQ(loaded->signature(sid), f->index->signature(sid));
  }
}

TEST(IndexPersistenceTest, LayoutAndOptionsRoundTrip) {
  auto f = BuildFixture(30);
  ASSERT_NE(f, nullptr);
  std::stringstream buffer;
  ASSERT_TRUE(f->index->SaveTo(buffer).ok());
  auto loaded = SetSimilarityIndex::Load(f->store, buffer);
  ASSERT_TRUE(loaded.ok());
  const IndexLayout& a = f->index->layout();
  const IndexLayout& b = loaded->layout();
  ASSERT_EQ(a.points.size(), b.points.size());
  EXPECT_DOUBLE_EQ(a.delta, b.delta);
  for (std::size_t i = 0; i < a.points.size(); ++i) {
    EXPECT_DOUBLE_EQ(a.points[i].similarity, b.points[i].similarity);
    EXPECT_EQ(a.points[i].kind, b.points[i].kind);
    EXPECT_EQ(a.points[i].tables, b.points[i].tables);
    EXPECT_EQ(a.points[i].r, b.points[i].r);
  }
  EXPECT_EQ(loaded->embedding().dimension(), f->index->embedding().dimension());
}

TEST(IndexPersistenceTest, RejectsGarbageAndTruncation) {
  auto f = BuildFixture(20);
  ASSERT_NE(f, nullptr);
  std::stringstream garbage;
  garbage << "not an index";
  EXPECT_FALSE(SetSimilarityIndex::Load(f->store, garbage).ok());
  std::stringstream buffer;
  ASSERT_TRUE(f->index->SaveTo(buffer).ok());
  const std::string full = buffer.str();
  std::stringstream truncated(full.substr(0, full.size() * 2 / 3));
  EXPECT_FALSE(SetSimilarityIndex::Load(f->store, truncated).ok());
}

}  // namespace
}  // namespace ssr
