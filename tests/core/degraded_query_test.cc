// Graceful degradation under injected faults. The invariants (per
// DegradeMode's contract that a query never silently returns a wrong
// answer):
//   - every returned sid really lies in [sigma1, sigma2] (exact Jaccard);
//   - under kSequentialFallback a faulted answer is a superset of the
//     fault-free answer (subtractive losses only widen the candidate set,
//     additive losses trigger the exact full scan);
//   - under kPartialResults a faulted answer may shrink but never lies;
//   - under kFailFast degradation surfaces as Status::Unavailable.
// Also covers salvage-loading an index with a corrupted signatures section.

#include <algorithm>
#include <memory>
#include <sstream>
#include <vector>

#include <gtest/gtest.h>

#include "core/set_similarity_index.h"
#include "fault/fault_injector.h"
#include "obs/metrics.h"
#include "util/random.h"
#include "util/set_ops.h"

namespace ssr {
namespace {

constexpr double kEps = 1e-12;  // matches the index's verification slack

struct Fixture {
  SetCollection sets;
  SetStore store;
  std::unique_ptr<SetSimilarityIndex> index;
};

std::unique_ptr<Fixture> BuildFixture(
    std::size_t n, DegradeMode degrade,
    const fault::RetryPolicy& probe_retry = {}) {
  auto f = std::make_unique<Fixture>();
  Rng rng(5150);
  for (std::size_t i = 0; i < n; ++i) {
    ElementSet s;
    const std::size_t size = 10 + rng.Uniform(60);
    for (std::size_t j = 0; j < size; ++j) s.push_back(rng.Uniform(5000));
    NormalizeSet(s);
    if (s.empty()) s.push_back(1);
    f->sets.push_back(s);
    EXPECT_TRUE(f->store.Add(s).ok());
  }
  IndexLayout layout;
  layout.delta = 0.3;
  layout.points = {{0.3, FilterKind::kDissimilarity, 6, 0},
                   {0.3, FilterKind::kSimilarity, 6, 0},
                   {0.7, FilterKind::kSimilarity, 6, 3}};
  IndexOptions options;
  options.embedding.minhash.num_hashes = 80;
  options.embedding.minhash.seed = 999;
  options.seed = 1234;
  options.degrade = degrade;
  options.probe_retry = probe_retry;
  auto index = SetSimilarityIndex::Build(f->store, layout, options);
  EXPECT_TRUE(index.ok());
  if (!index.ok()) return nullptr;
  f->index = std::make_unique<SetSimilarityIndex>(std::move(index).value());
  return f;
}

std::vector<SetId> BruteForce(const SetCollection& sets, const ElementSet& q,
                              double s1, double s2) {
  std::vector<SetId> out;
  for (SetId sid = 0; sid < sets.size(); ++sid) {
    const double sim = Jaccard(sets[sid], q);
    if (sim >= s1 - kEps && sim <= s2 + kEps) out.push_back(sid);
  }
  return out;
}

bool IsSubset(const std::vector<SetId>& a, const std::vector<SetId>& b) {
  return std::includes(b.begin(), b.end(), a.begin(), a.end());
}

struct TestQuery {
  ElementSet q;
  double s1, s2;
};

std::vector<TestQuery> MakeQueries(const Fixture& f, std::size_t n) {
  std::vector<TestQuery> queries;
  Rng rng(6);
  for (std::size_t t = 0; t < n; ++t) {
    TestQuery tq;
    tq.q = f.sets[rng.Uniform(f.sets.size())];
    tq.s1 = rng.NextDouble() * 0.8;
    tq.s2 = tq.s1 + rng.NextDouble() * (1.0 - tq.s1);
    queries.push_back(std::move(tq));
  }
  return queries;
}

class DegradedQueryTest : public ::testing::Test {
 protected:
  void SetUp() override { fault::FaultInjector::Default().Reset(); }
  void TearDown() override { fault::FaultInjector::Default().Reset(); }
};

// Degradation tests need faults to actually fire; the salvage-load tests
// below corrupt bytes directly and run in every build configuration.
#ifdef SSR_NO_FAULT_INJECTION
#define SKIP_WITHOUT_INJECTION() \
  GTEST_SKIP() << "built with SSR_NO_FAULT_INJECTION"
#else
#define SKIP_WITHOUT_INJECTION() (void)0
#endif

TEST_F(DegradedQueryTest, SequentialFallbackNeverReturnsWrongAnswers) {
  SKIP_WITHOUT_INJECTION();
  auto f = BuildFixture(300, DegradeMode::kSequentialFallback);
  ASSERT_NE(f, nullptr);
  const auto queries = MakeQueries(*f, 60);

  // Fault-free reference pass over the same index (queries are read-only).
  std::vector<std::vector<SetId>> reference;
  for (const TestQuery& tq : queries) {
    auto r = f->index->Query(tq.q, tq.s1, tq.s2);
    ASSERT_TRUE(r.ok()) << r.status().ToString();
    ASSERT_FALSE(r->stats.degraded);
    reference.push_back(r->sids);
  }

  auto& registry = obs::MetricsRegistry::Default();
  obs::Counter* injected = registry.GetCounter("ssr_fault_injected_total");
  obs::Counter* degraded_metric =
      registry.GetCounter("ssr_degraded_queries_total", f->index->metrics_scope());
  const std::uint64_t injected_before = injected->value();
  const std::uint64_t degraded_before = degraded_metric->value();

  auto& fi = fault::FaultInjector::Default();
  // The invariants below hold for any schedule, so the CI fault matrix may
  // override the seed via SSR_FAULT_SEED.
  fi.Enable(fault::SeedFromEnv(0xdeadULL));
  fi.Arm("store/get", fault::FaultKind::kReadError,
         fault::FaultSchedule::WithProbability(0.05));
  fi.Arm("index/probe_fi", fault::FaultKind::kReadError,
         fault::FaultSchedule::WithProbability(0.05));
  fi.Arm("sfi/probe_table", fault::FaultKind::kReadError,
         fault::FaultSchedule::WithProbability(0.05));

  std::size_t degraded_queries = 0;
  for (std::size_t t = 0; t < queries.size(); ++t) {
    const TestQuery& tq = queries[t];
    auto r = f->index->Query(tq.q, tq.s1, tq.s2);
    ASSERT_TRUE(r.ok()) << r.status().ToString();
    const std::vector<SetId> exact = BruteForce(f->sets, tq.q, tq.s1, tq.s2);
    // Precision is absolute: every returned sid is truly in range.
    EXPECT_TRUE(IsSubset(r->sids, exact)) << "query " << t;
    // Fallback can only add true answers, never lose ones the fault-free
    // index would have found.
    EXPECT_TRUE(IsSubset(reference[t], r->sids)) << "query " << t;
    if (r->stats.degraded) {
      ++degraded_queries;
    } else {
      EXPECT_EQ(r->sids, reference[t]) << "query " << t;
    }
  }
  // A 5% per-probe schedule over 60 queries must degrade some of them and
  // leave a visible trail in the fault + degradation metrics.
  EXPECT_GT(degraded_queries, 0u);
  EXPECT_GT(fi.total_fires(), 0u);
  EXPECT_GT(injected->value(), injected_before);
  EXPECT_EQ(degraded_metric->value() - degraded_before, degraded_queries);
}

TEST_F(DegradedQueryTest, RetriesRecoverTransientFetchFaults) {
  SKIP_WITHOUT_INJECTION();
  auto f = BuildFixture(150, DegradeMode::kSequentialFallback);
  ASSERT_NE(f, nullptr);
  auto& registry = obs::MetricsRegistry::Default();
  obs::Counter* recoveries =
      registry.GetCounter("ssr_retry_recoveries_total");
  const std::uint64_t before = recoveries->value();

  auto& fi = fault::FaultInjector::Default();
  fi.Enable(fault::SeedFromEnv(77));
  fi.Arm("store/get", fault::FaultKind::kReadError,
         fault::FaultSchedule::WithProbability(0.3));
  const auto queries = MakeQueries(*f, 20);
  for (const TestQuery& tq : queries) {
    auto r = f->index->Query(tq.q, tq.s1, tq.s2);
    ASSERT_TRUE(r.ok()) << r.status().ToString();
    EXPECT_TRUE(
        IsSubset(r->sids, BruteForce(f->sets, tq.q, tq.s1, tq.s2)));
  }
  // At ~30% per-attempt failure most faulted fetches succeed on retry.
  EXPECT_GT(recoveries->value(), before);
}

TEST_F(DegradedQueryTest, PartialResultsShrinkButNeverLie) {
  SKIP_WITHOUT_INJECTION();
  auto f = BuildFixture(200, DegradeMode::kPartialResults);
  ASSERT_NE(f, nullptr);
  auto& fi = fault::FaultInjector::Default();
  fi.Enable(fault::SeedFromEnv(0xbeefULL));
  // Heavy enough that retries are regularly exhausted.
  fi.Arm("store/get", fault::FaultKind::kReadError,
         fault::FaultSchedule::WithProbability(0.6));
  std::size_t degraded = 0;
  for (const TestQuery& tq : MakeQueries(*f, 25)) {
    auto r = f->index->Query(tq.q, tq.s1, tq.s2);
    ASSERT_TRUE(r.ok()) << r.status().ToString();
    EXPECT_TRUE(
        IsSubset(r->sids, BruteForce(f->sets, tq.q, tq.s1, tq.s2)));
    if (r->stats.degraded) {
      ++degraded;
      EXPECT_GT(r->stats.fetch_failures + r->stats.probe_failures, 0u);
    }
  }
  EXPECT_GT(degraded, 0u);
}

TEST_F(DegradedQueryTest, FailFastSurfacesUnavailable) {
  SKIP_WITHOUT_INJECTION();
  auto f = BuildFixture(100, DegradeMode::kFailFast);
  ASSERT_NE(f, nullptr);
  auto& fi = fault::FaultInjector::Default();
  fi.Enable(1);
  fi.Arm("index/probe_fi", fault::FaultKind::kReadError,
         fault::FaultSchedule::Always());
  // A range needing FI probes fails loudly...
  auto r = f->index->Query(f->sets[0], 0.4, 0.6);
  EXPECT_TRUE(r.status().IsUnavailable()) << r.status().ToString();
  // ...while [0, 1] needs no probes and still succeeds.
  auto full = f->index->Query(f->sets[0], 0.0, 1.0);
  ASSERT_TRUE(full.ok()) << full.status().ToString();
  EXPECT_EQ(full->sids.size(), 100u);
  EXPECT_FALSE(full->stats.degraded);
}

TEST_F(DegradedQueryTest, CandidateFallbackReturnsLiveSuperset) {
  SKIP_WITHOUT_INJECTION();
  auto f = BuildFixture(120, DegradeMode::kSequentialFallback);
  ASSERT_NE(f, nullptr);
  const auto clean = f->index->QueryCandidates(f->sets[0], 0.4, 0.6);
  ASSERT_TRUE(clean.ok());

  auto& registry = obs::MetricsRegistry::Default();
  obs::Counter* fallbacks = registry.GetCounter(
      "ssr_index_seqscan_fallbacks_total", f->index->metrics_scope());
  const std::uint64_t before = fallbacks->value();

  auto& fi = fault::FaultInjector::Default();
  fi.Enable(1);
  fi.Arm("index/probe_fi", fault::FaultKind::kReadError,
         fault::FaultSchedule::Always());
  auto degraded = f->index->QueryCandidates(f->sets[0], 0.4, 0.6);
  ASSERT_TRUE(degraded.ok()) << degraded.status().ToString();
  EXPECT_TRUE(degraded->stats.degraded);
  EXPECT_GT(degraded->stats.probe_failures, 0u);
  // The sound fallback candidate set is every live sid.
  EXPECT_EQ(degraded->sids.size(), 120u);
  EXPECT_TRUE(IsSubset(clean->sids, degraded->sids));
  EXPECT_EQ(fallbacks->value(), before + 1);
}

// A transient probe fault that the retry policy absorbs shows up in
// QueryStats (attempts and backoff slept) while the answer stays exactly
// the fault-free one — retries are invisible to correctness, visible to
// observability.
TEST_F(DegradedQueryTest, AbsorbedRetriesSurfaceInQueryStats) {
  SKIP_WITHOUT_INJECTION();
  fault::RetryPolicy probe_retry;
  probe_retry.max_attempts = 4;
  probe_retry.initial_backoff_micros = 5.0;  // tiny but nonzero: sums show
  probe_retry.jitter_fraction = 0.5;
  auto f = BuildFixture(120, DegradeMode::kSequentialFallback, probe_retry);
  ASSERT_NE(f, nullptr);
  const auto clean = f->index->Query(f->sets[0], 0.4, 0.6);
  ASSERT_TRUE(clean.ok());
  ASSERT_EQ(clean->stats.retry_attempts, 0u);

  auto& fi = fault::FaultInjector::Default();
  fi.Enable(fault::SeedFromEnv(3));
  // One transient failure: the first probe attempt faults, its retry
  // succeeds, and the query never degrades.
  fi.Arm("index/probe_fi", fault::FaultKind::kReadError,
         fault::FaultSchedule::Once());
  auto retried = f->index->Query(f->sets[0], 0.4, 0.6);
  ASSERT_TRUE(retried.ok()) << retried.status().ToString();
  EXPECT_FALSE(retried->stats.degraded);
  EXPECT_EQ(retried->stats.probe_failures, 0u);
  EXPECT_EQ(retried->stats.retry_attempts, 1u);
  EXPECT_GT(retried->stats.retry_backoff_micros, 0.0);
  EXPECT_EQ(retried->sids, clean->sids);
}

// ---------------------------------------------------------------------------
// Index snapshot salvage: a damaged signatures section is rebuilt from the
// store instead of failing the load.
// ---------------------------------------------------------------------------

// Serialized footprint of the snapshot footer (WriteString("SSRFOOT") +
// section count + crc-of-crcs).
constexpr std::size_t kFooterBytes = 8 + 7 + 4 + 4;

TEST_F(DegradedQueryTest, SalvageRebuildsCorruptSignatures) {
  auto f = BuildFixture(150, DegradeMode::kSequentialFallback);
  ASSERT_NE(f, nullptr);
  std::stringstream buffer;
  ASSERT_TRUE(f->index->SaveTo(buffer).ok());
  std::string bytes = buffer.str();
  // The signatures section is the last before the footer; flip a payload
  // byte well inside it.
  bytes[bytes.size() - kFooterBytes - 32] ^= 0x20;

  {
    std::stringstream in(bytes);
    EXPECT_TRUE(
        SetSimilarityIndex::Load(f->store, in).status().IsCorruption());
  }

  RecoveryReport report;
  SnapshotLoadOptions load_options;
  load_options.salvage = true;
  load_options.report = &report;
  std::stringstream in(bytes);
  auto loaded = SetSimilarityIndex::Load(f->store, in, load_options);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  EXPECT_TRUE(report.salvaged);
  EXPECT_EQ(report.signatures_rebuilt, 150u);
  EXPECT_EQ(loaded->num_live_sets(), 150u);

  // Re-embedding is deterministic under the saved seeds: the rebuilt index
  // stores identical signatures and answers queries identically.
  for (SetId sid = 0; sid < 150; ++sid) {
    EXPECT_EQ(loaded->signature(sid), f->index->signature(sid));
  }
  for (const TestQuery& tq : MakeQueries(*f, 15)) {
    auto a = f->index->Query(tq.q, tq.s1, tq.s2);
    auto b = loaded->Query(tq.q, tq.s1, tq.s2);
    ASSERT_TRUE(a.ok() && b.ok());
    EXPECT_EQ(a->sids, b->sids);
  }
}

TEST_F(DegradedQueryTest, SalvageDropsSignaturesOfLostRecords) {
  auto f = BuildFixture(150, DegradeMode::kSequentialFallback);
  ASSERT_NE(f, nullptr);
  std::stringstream index_buf;
  ASSERT_TRUE(f->index->SaveTo(index_buf).ok());
  std::stringstream store_buf;
  ASSERT_TRUE(f->store.SaveTo(store_buf).ok());

  // Corrupt one heap page of the store snapshot (its "pages" section sits
  // last, just before the footer), then salvage-load the store.
  std::string store_bytes = store_buf.str();
  constexpr std::size_t kPageEntryBytes = 4 + kPageSize;
  const std::size_t payload_start = store_bytes.size() - kFooterBytes -
                                    f->store.num_pages() * kPageEntryBytes;
  store_bytes[payload_start + 2 * kPageEntryBytes + 200] ^= 0x08;

  RecoveryReport store_report;
  SnapshotLoadOptions salvage;
  salvage.salvage = true;
  salvage.report = &store_report;
  std::stringstream store_in(store_bytes);
  auto store = SetStore::Load(store_in, SetStoreOptions(), salvage);
  ASSERT_TRUE(store.ok()) << store.status().ToString();
  ASSERT_GT(store_report.records_quarantined, 0u);

  // The (intact) index snapshot, loaded against the salvaged store, must
  // drop the signatures of the lost records rather than serve candidates
  // that can never be fetched.
  RecoveryReport index_report;
  SnapshotLoadOptions index_salvage;
  index_salvage.salvage = true;
  index_salvage.report = &index_report;
  auto index = SetSimilarityIndex::Load(*store, index_buf, index_salvage);
  ASSERT_TRUE(index.ok()) << index.status().ToString();
  EXPECT_EQ(index->num_live_sets(), store->size());

  for (const TestQuery& tq : MakeQueries(*f, 15)) {
    auto r = index->Query(tq.q, tq.s1, tq.s2);
    ASSERT_TRUE(r.ok()) << r.status().ToString();
    for (SetId sid : r->sids) {
      EXPECT_TRUE(store->Contains(sid));
      const double sim = Jaccard(f->sets[sid], tq.q);
      EXPECT_GE(sim, tq.s1 - kEps);
      EXPECT_LE(sim, tq.s2 + kEps);
    }
  }
}

}  // namespace
}  // namespace ssr
