#include "core/similarity_ops.h"

#include <cmath>

#include <gtest/gtest.h>

#include "baseline/exact_evaluator.h"
#include "util/random.h"
#include "util/set_ops.h"

namespace ssr {
namespace {

struct Fixture {
  SetCollection sets;
  SetStore store;
  std::unique_ptr<SetSimilarityIndex> index;
};

std::unique_ptr<Fixture> BuildFixture(std::size_t n) {
  auto f = std::make_unique<Fixture>();
  Rng rng(2024);
  while (f->sets.size() < n) {
    ElementSet base;
    const std::size_t size = 20 + rng.Uniform(40);
    for (std::size_t i = 0; i < size; ++i) base.push_back(rng.Uniform(8000));
    NormalizeSet(base);
    if (base.empty()) continue;
    f->sets.push_back(base);
    if (rng.Bernoulli(0.4) && f->sets.size() < n) {
      ElementSet near = base;
      near[rng.Uniform(near.size())] = rng.Uniform(8000);
      NormalizeSet(near);
      if (!near.empty()) f->sets.push_back(near);
    }
  }
  for (const auto& s : f->sets) {
    EXPECT_TRUE(f->store.Add(s).ok());
  }
  IndexLayout layout;
  layout.delta = 0.4;
  layout.points = {{0.4, FilterKind::kDissimilarity, 10, 0},
                   {0.4, FilterKind::kSimilarity, 10, 0},
                   {0.75, FilterKind::kSimilarity, 10, 0}};
  IndexOptions options;
  options.embedding.minhash.num_hashes = 100;
  options.embedding.minhash.seed = 888;
  auto index = SetSimilarityIndex::Build(f->store, layout, options);
  EXPECT_TRUE(index.ok());
  if (!index.ok()) return nullptr;
  f->index = std::make_unique<SetSimilarityIndex>(std::move(index).value());
  return f;
}

TEST(SimilaritySelfJoinTest, ValidatesThreshold) {
  auto f = BuildFixture(30);
  ASSERT_NE(f, nullptr);
  EXPECT_FALSE(SimilaritySelfJoin(*f->index, 0.0).ok());
  EXPECT_FALSE(SimilaritySelfJoin(*f->index, 1.5).ok());
}

TEST(SimilaritySelfJoinTest, PairsAreExactOrderedAndDeduplicated) {
  auto f = BuildFixture(120);
  ASSERT_NE(f, nullptr);
  JoinStats stats;
  auto pairs = SimilaritySelfJoin(*f->index, 0.8, &stats);
  ASSERT_TRUE(pairs.ok());
  EXPECT_EQ(stats.probes, f->sets.size());
  EXPECT_EQ(stats.result_pairs, pairs->size());
  for (std::size_t i = 0; i < pairs->size(); ++i) {
    const SimilarPair& p = (*pairs)[i];
    EXPECT_LT(p.a, p.b);
    EXPECT_GE(p.similarity, 0.8 - 1e-9);
    EXPECT_NEAR(p.similarity, Jaccard(f->sets[p.a], f->sets[p.b]), 1e-12);
    if (i > 0) {
      EXPECT_LT(std::tie((*pairs)[i - 1].a, (*pairs)[i - 1].b),
                std::tie(p.a, p.b));
    }
  }
}

TEST(SimilaritySelfJoinTest, HighRecallAgainstBruteForce) {
  auto f = BuildFixture(120);
  ASSERT_NE(f, nullptr);
  auto pairs = SimilaritySelfJoin(*f->index, 0.85);
  ASSERT_TRUE(pairs.ok());
  ExactEvaluator exact(f->sets);
  const auto truth = exact.SimilarPairs(0.85);
  ASSERT_FALSE(truth.empty()) << "fixture must contain near-duplicates";
  std::size_t found = 0;
  for (const auto& [a, b, sim] : truth) {
    if (std::find_if(pairs->begin(), pairs->end(), [&](const SimilarPair& p) {
          return p.a == a && p.b == b;
        }) != pairs->end()) {
      ++found;
    }
  }
  EXPECT_GE(static_cast<double>(found) / static_cast<double>(truth.size()),
            0.9);
  // And nothing spurious: every reported pair is genuinely above threshold
  // (verified), so the join can only miss, never invent.
  EXPECT_LE(pairs->size(), truth.size());
}

TEST(TopKSimilarTest, ValidatesArguments) {
  auto f = BuildFixture(30);
  ASSERT_NE(f, nullptr);
  EXPECT_FALSE(TopKSimilar(*f->index, f->sets[0], 3, 0, -0.1).ok());
  auto empty = TopKSimilar(*f->index, f->sets[0], 0);
  ASSERT_TRUE(empty.ok());
  EXPECT_TRUE(empty->empty());
}

TEST(TopKSimilarTest, SelfIsRankFirstUnlessExcluded) {
  auto f = BuildFixture(80);
  ASSERT_NE(f, nullptr);
  auto with_self = TopKSimilar(*f->index, f->sets[5], 3);
  ASSERT_TRUE(with_self.ok());
  ASSERT_FALSE(with_self->empty());
  EXPECT_DOUBLE_EQ((*with_self)[0].similarity, 1.0);
  auto without = TopKSimilar(*f->index, f->sets[5], 3, /*exclude_sid=*/5);
  ASSERT_TRUE(without.ok());
  for (const RankedSet& r : *without) EXPECT_NE(r.sid, 5u);
}

TEST(TopKSimilarTest, DescendingOrderAndSizeBound) {
  auto f = BuildFixture(120);
  ASSERT_NE(f, nullptr);
  auto top = TopKSimilar(*f->index, f->sets[2], 5);
  ASSERT_TRUE(top.ok());
  EXPECT_LE(top->size(), 5u);
  for (std::size_t i = 1; i < top->size(); ++i) {
    EXPECT_GE((*top)[i - 1].similarity, (*top)[i].similarity);
  }
}

TEST(TopKSimilarTest, AgreesWithBruteForceOnTopResult) {
  auto f = BuildFixture(120);
  ASSERT_NE(f, nullptr);
  ExactEvaluator exact(f->sets);
  int agree = 0, tried = 0;
  for (SetId sid = 0; sid < 15; ++sid) {
    auto top = TopKSimilar(*f->index, f->sets[sid], 1, sid);
    ASSERT_TRUE(top.ok());
    // Brute-force best.
    double best = -1.0;
    for (SetId other = 0; other < f->sets.size(); ++other) {
      if (other == sid) continue;
      best = std::max(best, Jaccard(f->sets[sid], f->sets[other]));
    }
    if (best < 0.1) continue;  // below the floor: skip
    ++tried;
    if (!top->empty() &&
        std::fabs((*top)[0].similarity - best) < 1e-9) {
      ++agree;
    }
  }
  ASSERT_GT(tried, 3);
  EXPECT_GE(agree, tried * 7 / 10);
}

}  // namespace
}  // namespace ssr
