#include "core/index_layout.h"

#include <gtest/gtest.h>

namespace ssr {
namespace {

TEST(IndexLayoutTest, EmptyLayoutValidates) {
  IndexLayout layout;
  EXPECT_TRUE(layout.Validate().ok());
  EXPECT_EQ(layout.total_tables(), 0u);
}

TEST(IndexLayoutTest, SortedSfisValidate) {
  IndexLayout layout;
  layout.points = {{0.3, FilterKind::kSimilarity, 5, 0},
                   {0.6, FilterKind::kSimilarity, 5, 0},
                   {0.9, FilterKind::kSimilarity, 5, 0}};
  EXPECT_TRUE(layout.Validate().ok());
  EXPECT_EQ(layout.total_tables(), 15u);
}

TEST(IndexLayoutTest, RejectsOutOfRangePoints) {
  IndexLayout layout;
  layout.points = {{0.0, FilterKind::kSimilarity, 5, 0}};
  EXPECT_FALSE(layout.Validate().ok());
  layout.points = {{1.0, FilterKind::kSimilarity, 5, 0}};
  EXPECT_FALSE(layout.Validate().ok());
}

TEST(IndexLayoutTest, RejectsUnsortedPoints) {
  IndexLayout layout;
  layout.points = {{0.6, FilterKind::kSimilarity, 5, 0},
                   {0.3, FilterKind::kSimilarity, 5, 0}};
  EXPECT_FALSE(layout.Validate().ok());
}

TEST(IndexLayoutTest, RejectsDfiAboveSfi) {
  IndexLayout layout;
  layout.points = {{0.3, FilterKind::kSimilarity, 5, 0},
                   {0.6, FilterKind::kDissimilarity, 5, 0}};
  EXPECT_FALSE(layout.Validate().ok());
}

TEST(IndexLayoutTest, AcceptsDualPointAtDelta) {
  IndexLayout layout;
  layout.delta = 0.5;
  layout.points = {{0.2, FilterKind::kDissimilarity, 5, 0},
                   {0.5, FilterKind::kDissimilarity, 5, 0},
                   {0.5, FilterKind::kSimilarity, 5, 0},
                   {0.8, FilterKind::kSimilarity, 5, 0}};
  EXPECT_TRUE(layout.Validate().ok()) << layout.Validate().ToString();
}

TEST(IndexLayoutTest, RejectsSfiBeforeDfiAtSharedPoint) {
  IndexLayout layout;
  layout.points = {{0.5, FilterKind::kSimilarity, 5, 0},
                   {0.5, FilterKind::kDissimilarity, 5, 0}};
  EXPECT_FALSE(layout.Validate().ok());
}

TEST(IndexLayoutTest, RejectsZeroTables) {
  IndexLayout layout;
  layout.points = {{0.5, FilterKind::kSimilarity, 0, 0}};
  EXPECT_FALSE(layout.Validate().ok());
}

TEST(IndexLayoutTest, RejectsBadDelta) {
  IndexLayout layout;
  layout.delta = 1.5;
  EXPECT_FALSE(layout.Validate().ok());
}

TEST(IndexLayoutTest, UniformSfiFactory) {
  IndexLayout layout = IndexLayout::UniformSfi({0.25, 0.5, 0.75}, 4);
  EXPECT_TRUE(layout.Validate().ok());
  EXPECT_EQ(layout.points.size(), 3u);
  EXPECT_EQ(layout.total_tables(), 12u);
  for (const auto& p : layout.points) {
    EXPECT_EQ(p.kind, FilterKind::kSimilarity);
  }
}

TEST(IndexLayoutTest, ToStringMentionsKindsAndPoints) {
  IndexLayout layout;
  layout.points = {{0.2, FilterKind::kDissimilarity, 3, 0},
                   {0.8, FilterKind::kSimilarity, 7, 0}};
  const std::string str = layout.ToString();
  EXPECT_NE(str.find("DFI"), std::string::npos);
  EXPECT_NE(str.find("SFI"), std::string::npos);
  EXPECT_NE(str.find("0.8"), std::string::npos);
}

}  // namespace
}  // namespace ssr
