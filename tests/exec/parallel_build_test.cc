// The parallel-build determinism contract: for the same store, layout, and
// seeds, SetSimilarityIndex::Build with any num_threads produces an index
// bit-identical to the serial build — same signatures, same hash-table
// contents (order included), same query answers. Verified through
// ContentDigest (order-sensitive over buckets + signatures) plus direct
// signature and answer comparison.

#include <memory>
#include <vector>

#include <gtest/gtest.h>

#include "core/set_similarity_index.h"
#include "util/random.h"
#include "util/set_ops.h"

namespace ssr {
namespace {

SetCollection MakeCollection(std::size_t n, std::uint64_t seed) {
  SetCollection sets;
  Rng rng(seed);
  for (std::size_t i = 0; i < n; ++i) {
    ElementSet s;
    const std::size_t size = 10 + rng.Uniform(60);
    for (std::size_t j = 0; j < size; ++j) s.push_back(rng.Uniform(8000));
    NormalizeSet(s);
    if (s.empty()) s.push_back(1);
    sets.push_back(std::move(s));
  }
  return sets;
}

IndexLayout MixedLayout() {
  IndexLayout layout;
  layout.delta = 0.4;
  layout.points = {{0.15, FilterKind::kDissimilarity, 8, 0},
                   {0.4, FilterKind::kDissimilarity, 8, 0},
                   {0.4, FilterKind::kSimilarity, 8, 0},
                   {0.75, FilterKind::kSimilarity, 8, 2}};
  return layout;
}

struct Fixture {
  SetCollection sets;
  SetStore store;
  std::unique_ptr<SetSimilarityIndex> index;
};

std::unique_ptr<Fixture> BuildWithThreads(std::size_t num_threads,
                                          const SetCollection& sets) {
  auto f = std::make_unique<Fixture>();
  f->sets = sets;
  for (const auto& set : f->sets) {
    EXPECT_TRUE(f->store.Add(set).ok());
  }
  IndexOptions options;
  options.embedding.minhash.num_hashes = 80;
  options.embedding.minhash.seed = 424242;
  options.seed = 9001;
  options.num_threads = num_threads;
  auto index = SetSimilarityIndex::Build(f->store, MixedLayout(), options);
  EXPECT_TRUE(index.ok()) << index.status().ToString();
  if (!index.ok()) return nullptr;
  f->index = std::make_unique<SetSimilarityIndex>(std::move(index).value());
  return f;
}

TEST(ParallelBuildTest, AnyThreadCountDigestsEqualToSerial) {
  const SetCollection sets = MakeCollection(400, 777);
  auto serial = BuildWithThreads(1, sets);
  ASSERT_NE(serial, nullptr);
  const std::uint64_t want = serial->index->ContentDigest();
  for (std::size_t threads : {std::size_t{2}, std::size_t{3}, std::size_t{4},
                              std::size_t{8}}) {
    auto parallel = BuildWithThreads(threads, sets);
    ASSERT_NE(parallel, nullptr);
    EXPECT_EQ(parallel->index->ContentDigest(), want)
        << "num_threads=" << threads;
    EXPECT_EQ(parallel->index->build_stats().threads, threads);
  }
}

TEST(ParallelBuildTest, SignaturesBitIdenticalToSerial) {
  const SetCollection sets = MakeCollection(250, 31337);
  auto serial = BuildWithThreads(1, sets);
  auto parallel = BuildWithThreads(4, sets);
  ASSERT_NE(serial, nullptr);
  ASSERT_NE(parallel, nullptr);
  for (SetId sid = 0; sid < sets.size(); ++sid) {
    auto a = serial->index->signature(sid);
    auto b = parallel->index->signature(sid);
    ASSERT_TRUE(a.has_value());
    ASSERT_TRUE(b.has_value());
    EXPECT_EQ(*a, *b) << "sid " << sid;
  }
}

TEST(ParallelBuildTest, QueryAnswersIdenticalToSerial) {
  const SetCollection sets = MakeCollection(300, 555);
  auto serial = BuildWithThreads(1, sets);
  auto parallel = BuildWithThreads(4, sets);
  ASSERT_NE(serial, nullptr);
  ASSERT_NE(parallel, nullptr);
  Rng rng(99);
  for (int t = 0; t < 30; ++t) {
    const ElementSet& q = sets[rng.Uniform(sets.size())];
    const double s1 = rng.NextDouble() * 0.8;
    const double s2 = s1 + rng.NextDouble() * (1.0 - s1);
    auto a = serial->index->Query(q, s1, s2);
    auto b = parallel->index->Query(q, s1, s2);
    ASSERT_TRUE(a.ok()) << a.status().ToString();
    ASSERT_TRUE(b.ok()) << b.status().ToString();
    EXPECT_EQ(a->sids, b->sids) << "query " << t;
    // Probing is structural, so even the cost counters must agree.
    EXPECT_EQ(a->stats.bucket_accesses, b->stats.bucket_accesses);
    EXPECT_EQ(a->stats.sids_scanned, b->stats.sids_scanned);
    EXPECT_EQ(a->stats.candidates, b->stats.candidates);
  }
}

TEST(ParallelBuildTest, BuildStatsFilledByParallelBuild) {
  const SetCollection sets = MakeCollection(300, 2024);
  auto f = BuildWithThreads(4, sets);
  ASSERT_NE(f, nullptr);
  const BuildStats& stats = f->index->build_stats();
  EXPECT_EQ(stats.threads, 4u);
  EXPECT_EQ(stats.sets_indexed, 300u);
  EXPECT_GT(stats.wall_seconds, 0.0);
  EXPECT_GT(stats.sign_cpu_seconds, 0.0);
  EXPECT_GT(stats.insert_cpu_seconds, 0.0);
  EXPECT_GT(stats.makespan_seconds, 0.0);
  // The busiest worker's share never exceeds the phase total.
  EXPECT_LE(stats.sign_makespan_seconds, stats.sign_cpu_seconds + 1e-12);
  EXPECT_LE(stats.insert_makespan_seconds, stats.insert_cpu_seconds + 1e-12);
}

TEST(ParallelBuildTest, DigestDetectsContentDifferences) {
  // Sanity of the instrument itself: different seeds (hence different
  // samplers and signatures) must not digest equal.
  const SetCollection sets = MakeCollection(150, 4);
  auto a = BuildWithThreads(1, sets);
  ASSERT_NE(a, nullptr);
  auto b = std::make_unique<Fixture>();
  b->sets = sets;
  for (const auto& set : b->sets) ASSERT_TRUE(b->store.Add(set).ok());
  IndexOptions options;
  options.embedding.minhash.num_hashes = 80;
  options.embedding.minhash.seed = 424242;
  options.seed = 9002;  // differs from BuildWithThreads
  auto index = SetSimilarityIndex::Build(b->store, MixedLayout(), options);
  ASSERT_TRUE(index.ok());
  EXPECT_NE(a->index->ContentDigest(), index->ContentDigest());
}

TEST(ParallelBuildTest, DynamicInsertAfterParallelBuildMatchesSerial) {
  // The parallel build must leave the index in the same dynamic state the
  // serial build does: inserting one more set converges to the same digest.
  const SetCollection sets = MakeCollection(200, 123);
  auto serial = BuildWithThreads(1, sets);
  auto parallel = BuildWithThreads(4, sets);
  ASSERT_NE(serial, nullptr);
  ASSERT_NE(parallel, nullptr);
  const ElementSet extra = sets[0];  // a clone, similar to set 0
  auto sid_a = serial->store.Add(extra);
  auto sid_b = parallel->store.Add(extra);
  ASSERT_TRUE(sid_a.ok());
  ASSERT_TRUE(sid_b.ok());
  ASSERT_EQ(sid_a.value(), sid_b.value());
  ASSERT_TRUE(serial->index->Insert(sid_a.value(), extra).ok());
  ASSERT_TRUE(parallel->index->Insert(sid_b.value(), extra).ok());
  EXPECT_EQ(serial->index->ContentDigest(), parallel->index->ContentDigest());
}

}  // namespace
}  // namespace ssr
