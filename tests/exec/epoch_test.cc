// Contract tests for epoch-based reclamation (exec/epoch.h), the
// foundation of the concurrent read path: pin/unpin bookkeeping, deferred
// retire, the central safety property (a deferred free never runs while
// any thread still pins an epoch at or before the retire epoch), Quiesce
// draining, and a readers-vs-writers-vs-metrics-scrape stress that gives
// TSan real concurrent pin/retire/reclaim traffic to chew on.

#include <atomic>
#include <cstdint>
#include <memory>
#include <new>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "exec/epoch.h"

namespace ssr {
namespace exec {
namespace {

TEST(EpochManagerTest, FreshManagerIsQuiescent) {
  EpochManager em;
  EXPECT_GE(em.global_epoch(), 1u);
  EXPECT_EQ(em.pinned_threads(), 0u);
  EXPECT_EQ(em.deferred_count(), 0u);
  EXPECT_EQ(em.retired_total(), 0u);
  EXPECT_EQ(em.reclaimed_total(), 0u);
}

TEST(EpochManagerTest, GuardPinsAndUnpinsThisThread) {
  EpochManager em;
  {
    EpochGuard guard(em);
    EXPECT_EQ(em.pinned_threads(), 1u);
  }
  EXPECT_EQ(em.pinned_threads(), 0u);
}

TEST(EpochManagerTest, NestedGuardsShareOneSlot) {
  EpochManager em;
  {
    EpochGuard outer(em);
    EXPECT_EQ(em.pinned_threads(), 1u);
    {
      EpochGuard inner(em);
      EpochGuard innermost(em);
      // Nesting is a depth counter, not extra slots.
      EXPECT_EQ(em.pinned_threads(), 1u);
    }
    // Inner guards released: the outer pin still holds.
    EXPECT_EQ(em.pinned_threads(), 1u);
  }
  EXPECT_EQ(em.pinned_threads(), 0u);
}

TEST(EpochManagerTest, AdvanceBumpsTheGlobalEpoch) {
  EpochManager em;
  const std::uint64_t before = em.global_epoch();
  em.Advance();
  EXPECT_EQ(em.global_epoch(), before + 1);
}

TEST(EpochManagerTest, RetireWithNoPinnedReadersFreesPromptly) {
  EpochManager em;
  bool freed = false;
  em.Retire([&freed] { freed = true; });
  // Quiescent fast path (or the amortized reclaim inside Retire): with no
  // reader pinned there is nothing to wait for.
  if (!freed) em.Quiesce();
  EXPECT_TRUE(freed);
  EXPECT_EQ(em.deferred_count(), 0u);
  EXPECT_EQ(em.retired_total(), 1u);
  EXPECT_EQ(em.reclaimed_total(), 1u);
}

// The safety property the whole concurrent read path rests on: an object
// retired while a reader is pinned is not freed until that reader unpins,
// no matter how many advance/reclaim passes run in between.
TEST(EpochManagerTest, DeferredFreeNeverReclaimsWhileAPinHolds) {
  EpochManager em;
  std::atomic<bool> freed{false};

  std::atomic<bool> pinned{false};
  std::atomic<bool> release{false};
  std::thread reader([&] {
    EpochGuard guard(em);
    pinned.store(true);
    while (!release.load()) std::this_thread::yield();
  });
  while (!pinned.load()) std::this_thread::yield();

  em.Retire([&freed] { freed.store(true); });
  for (int i = 0; i < 10; ++i) {
    em.Advance();
    em.TryReclaim();
    ASSERT_FALSE(freed.load()) << "freed while the reader was still pinned";
  }
  EXPECT_GE(em.deferred_count(), 1u);

  release.store(true);
  reader.join();
  em.Quiesce();
  EXPECT_TRUE(freed.load());
  EXPECT_EQ(em.deferred_count(), 0u);
}

TEST(EpochManagerTest, QuiesceDrainsEveryDeferredEntry) {
  EpochManager em;
  std::atomic<int> freed{0};
  {
    EpochGuard guard(em);
    // Pinned: everything retired here must defer.
    for (int i = 0; i < 16; ++i) em.Retire([&freed] { ++freed; });
    EXPECT_EQ(freed.load(), 0);
    EXPECT_EQ(em.deferred_count(), 16u);
  }
  em.Quiesce();
  EXPECT_EQ(freed.load(), 16);
  EXPECT_EQ(em.deferred_count(), 0u);
  EXPECT_EQ(em.retired_total(), 16u);
  EXPECT_EQ(em.reclaimed_total(), 16u);
}

// A reader that pinned *after* the retire does not hold up reclamation:
// its epoch is newer than the retire tag.
TEST(EpochManagerTest, LateReaderDoesNotBlockOlderRetires) {
  EpochManager em;
  std::atomic<bool> freed{false};
  {
    EpochGuard guard(em);
    em.Retire([&freed] { freed.store(true); });
  }
  em.Advance();  // the retire epoch is now strictly in the past

  std::atomic<bool> pinned{false};
  std::atomic<bool> release{false};
  std::thread late_reader([&] {
    EpochGuard guard(em);
    pinned.store(true);
    while (!release.load()) std::this_thread::yield();
  });
  while (!pinned.load()) std::this_thread::yield();

  // The late reader pins the *current* epoch; the old entry reclaims.
  em.Advance();
  em.TryReclaim();
  EXPECT_TRUE(freed.load());

  release.store(true);
  late_reader.join();
}

TEST(EpochManagerTest, DefaultIsSharedAndUsable) {
  EpochManager& em = EpochManager::Default();
  EXPECT_EQ(&em, &EpochManager::Default());
  bool freed = false;
  {
    EpochGuard guard;  // defaults to Default()
    em.Retire([&freed] { freed = true; });
  }
  em.Quiesce();
  EXPECT_TRUE(freed);
}

// Slots are handed back when a thread exits, so short-lived threads reuse
// them: far more threads than kMaxThreads can pin over a manager's
// lifetime as long as no more than kMaxThreads are alive at once (a
// thread-per-request deployment must not hit the 257th-thread abort).
TEST(EpochManagerTest, ThreadExitReleasesSlotsForReuse) {
  EpochManager em;
  for (std::size_t i = 0; i < EpochManager::kMaxThreads + 16; ++i) {
    std::thread t([&em] {
      EpochGuard guard(em);
      EXPECT_GE(em.pinned_threads(), 1u);
    });
    t.join();
    // Joined => its thread-exit destructors ran => the slot is free again.
    EXPECT_LE(em.claimed_slots(), 1u) << "slot leaked by dead thread " << i;
  }
  EXPECT_EQ(em.pinned_threads(), 0u);
  EXPECT_EQ(em.claimed_slots(), 0u);
}

// A thread that outlives a test-scoped manager must skip the dead manager
// at exit instead of dereferencing it (the registry keyed by (address, id)
// makes the release conditional on the manager still being live).
TEST(EpochManagerTest, ThreadOutlivingManagerExitsSafely) {
  std::atomic<bool> pinned_once{false};
  std::atomic<bool> manager_gone{false};
  auto em = std::make_unique<EpochManager>();
  std::thread t([&] {
    {
      EpochGuard guard(*em);
    }
    pinned_once.store(true);
    while (!manager_gone.load()) std::this_thread::yield();
    // Thread exit now runs the slot-cache destructor against a manager
    // that no longer exists; the registry must make this a no-op.
  });
  while (!pinned_once.load()) std::this_thread::yield();
  em.reset();
  manager_gone.store(true);
  t.join();
}

// A fresh manager that happens to land at a dead manager's address must
// not inherit its slot claims: the process-unique id disambiguates.
TEST(EpochManagerTest, SlotCacheIsKeyedByManagerIdentityNotAddress) {
  alignas(EpochManager) unsigned char storage[sizeof(EpochManager)];
  auto* first = new (storage) EpochManager();
  {
    EpochGuard guard(*first);
    EXPECT_EQ(first->claimed_slots(), 1u);
  }
  first->~EpochManager();
  auto* second = new (storage) EpochManager();  // same address, new id
  EXPECT_EQ(second->claimed_slots(), 0u);
  {
    EpochGuard guard(*second);
    EXPECT_EQ(second->pinned_threads(), 1u);
  }
  second->~EpochManager();
}

// The TSan workhorse: readers chase a published copy-on-write pointer
// under epoch pins, writers swap it and retire the old object, and a
// scrape thread hammers the observability accessors — the exact traffic
// pattern of concurrent queries vs. Insert/Erase vs. a /metrics poll.
// Any reclamation bug is a use-after-free ASan/TSan catches; the canary
// check catches it even in plain builds.
TEST(EpochManagerStressTest, ReadersWritersAndScrapesRaceSafely) {
  constexpr std::uint64_t kCanary = 0x5afe5afe5afe5afeULL;
  struct Node {
    std::uint64_t canary = kCanary;
    std::uint64_t value = 0;
    ~Node() { canary = 0; }
  };

  EpochManager em;
  std::atomic<Node*> published{new Node{kCanary, 0}};
  std::atomic<bool> stop{false};
  std::atomic<std::uint64_t> reads{0};

  std::vector<std::thread> readers;
  for (int r = 0; r < 4; ++r) {
    readers.emplace_back([&] {
      while (!stop.load(std::memory_order_relaxed)) {
        EpochGuard guard(em);
        const Node* node = published.load(std::memory_order_seq_cst);
        ASSERT_EQ(node->canary, kCanary) << "read a reclaimed node";
        reads.fetch_add(1, std::memory_order_relaxed);
      }
    });
  }

  std::thread scraper([&] {
    while (!stop.load(std::memory_order_relaxed)) {
      (void)em.global_epoch();
      (void)em.deferred_count();
      (void)em.pinned_threads();
      (void)em.retired_total();
      (void)em.reclaimed_total();
    }
  });

  std::vector<std::thread> writers;
  for (int w = 0; w < 2; ++w) {
    writers.emplace_back([&, w] {
      for (std::uint64_t i = 0; i < 400; ++i) {
        Node* fresh = new Node{kCanary, (static_cast<std::uint64_t>(w) << 32) | i};
        Node* old = published.exchange(fresh, std::memory_order_seq_cst);
        em.Retire([old] { delete old; });
      }
    });
  }

  for (auto& t : writers) t.join();
  stop.store(true);
  for (auto& t : readers) t.join();
  scraper.join();

  em.Quiesce();
  EXPECT_EQ(em.deferred_count(), 0u);
  EXPECT_EQ(em.retired_total(), em.reclaimed_total());
  EXPECT_GT(reads.load(), 0u);
  delete published.load();
}

}  // namespace
}  // namespace exec
}  // namespace ssr
