// The execution substrate's contracts: thread-count resolution (explicit >
// SSR_THREADS > hardware), exactly-once ParallelFor coverage under any
// grain, collective RunOnAllWorkers, and per-job CPU accounting (JobStats).

#include "exec/thread_pool.h"

#include <atomic>
#include <cstdlib>
#include <numeric>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

namespace ssr {
namespace exec {
namespace {

// setenv/unsetenv scoped guard so a failing assertion cannot leak
// SSR_THREADS into later tests.
class ScopedEnv {
 public:
  ScopedEnv(const char* name, const char* value) : name_(name) {
    const char* old = std::getenv(name);
    if (old != nullptr) saved_ = old;
    had_value_ = old != nullptr;
    ::setenv(name, value, /*overwrite=*/1);
  }
  ~ScopedEnv() {
    if (had_value_) {
      ::setenv(name_, saved_.c_str(), 1);
    } else {
      ::unsetenv(name_);
    }
  }

 private:
  const char* name_;
  std::string saved_;
  bool had_value_ = false;
};

TEST(ResolveThreadCountTest, ExplicitCountWins) {
  ScopedEnv env("SSR_THREADS", "7");
  EXPECT_EQ(ResolveThreadCount(1), 1u);
  EXPECT_EQ(ResolveThreadCount(3), 3u);
}

TEST(ResolveThreadCountTest, ZeroConsultsEnvironment) {
  ScopedEnv env("SSR_THREADS", "5");
  EXPECT_EQ(ResolveThreadCount(0), 5u);
}

TEST(ResolveThreadCountTest, BadEnvFallsBackToHardware) {
  const std::size_t hw = std::thread::hardware_concurrency() == 0
                             ? 1
                             : std::thread::hardware_concurrency();
  {
    ScopedEnv env("SSR_THREADS", "not-a-number");
    EXPECT_EQ(ResolveThreadCount(0), hw);
  }
  {
    ScopedEnv env("SSR_THREADS", "0");
    EXPECT_EQ(ResolveThreadCount(0), hw);
  }
  {
    ScopedEnv env("SSR_THREADS", "-4");
    EXPECT_EQ(ResolveThreadCount(0), hw);
  }
}

TEST(ResolveThreadCountTest, NeverReturnsZero) {
  ::unsetenv("SSR_THREADS");
  EXPECT_GE(ResolveThreadCount(0), 1u);
}

TEST(ThreadPoolTest, ParallelForCoversEveryIndexExactlyOnce) {
  for (std::size_t workers : {std::size_t{1}, std::size_t{2}, std::size_t{4}}) {
    ThreadPool pool(workers);
    ASSERT_EQ(pool.size(), workers);
    for (std::size_t grain : {std::size_t{0}, std::size_t{1}, std::size_t{7},
                              std::size_t{1000}}) {
      constexpr std::size_t kN = 517;  // deliberately not a grain multiple
      std::vector<std::atomic<int>> touched(kN);
      pool.ParallelFor(0, kN, grain, [&](std::size_t i, std::size_t worker) {
        ASSERT_LT(worker, workers);
        touched[i].fetch_add(1, std::memory_order_relaxed);
      });
      for (std::size_t i = 0; i < kN; ++i) {
        EXPECT_EQ(touched[i].load(), 1)
            << "index " << i << " workers=" << workers << " grain=" << grain;
      }
    }
  }
}

TEST(ThreadPoolTest, ParallelForHonorsNonzeroBegin) {
  ThreadPool pool(3);
  std::atomic<std::size_t> count{0};
  std::atomic<std::uint64_t> sum{0};
  pool.ParallelFor(100, 200, 1, [&](std::size_t i, std::size_t) {
    count.fetch_add(1, std::memory_order_relaxed);
    sum.fetch_add(i, std::memory_order_relaxed);
  });
  EXPECT_EQ(count.load(), 100u);
  EXPECT_EQ(sum.load(), (100u + 199u) * 100u / 2u);
}

TEST(ThreadPoolTest, EmptyRangeIsANoOp) {
  ThreadPool pool(2);
  std::atomic<int> count{0};
  pool.ParallelFor(5, 5, 1, [&](std::size_t, std::size_t) { ++count; });
  pool.ParallelFor(9, 3, 1, [&](std::size_t, std::size_t) { ++count; });
  EXPECT_EQ(count.load(), 0);
}

TEST(ThreadPoolTest, RunOnAllWorkersRunsEachWorkerOnce) {
  ThreadPool pool(4);
  std::vector<std::atomic<int>> ran(4);
  pool.RunOnAllWorkers([&](std::size_t worker) {
    ASSERT_LT(worker, 4u);
    ran[worker].fetch_add(1, std::memory_order_relaxed);
  });
  for (std::size_t w = 0; w < 4; ++w) EXPECT_EQ(ran[w].load(), 1);
}

TEST(ThreadPoolTest, SizeOnePoolRunsInlineOnCaller) {
  ThreadPool pool(1);
  const std::thread::id caller = std::this_thread::get_id();
  std::thread::id seen;
  pool.RunOnAllWorkers([&](std::size_t worker) {
    EXPECT_EQ(worker, 0u);
    seen = std::this_thread::get_id();
  });
  EXPECT_EQ(seen, caller);
}

TEST(ThreadPoolTest, JobStatsAccountPerWorkerCpu) {
  ThreadPool pool(2);
  // Enough work that the busy worker accumulates measurable CPU time.
  std::atomic<std::uint64_t> sink{0};
  pool.ParallelFor(0, 64, 1, [&](std::size_t, std::size_t) {
    std::uint64_t acc = 0;
    for (std::uint64_t k = 0; k < 200000; ++k) acc += k * k;
    sink.store(acc, std::memory_order_relaxed);
  });
  const JobStats& stats = pool.last_job_stats();
  ASSERT_EQ(stats.worker_cpu_seconds.size(), 2u);
  EXPECT_GT(stats.wall_seconds, 0.0);
  EXPECT_GT(stats.TotalCpuSeconds(), 0.0);
  EXPECT_GT(stats.MakespanSeconds(), 0.0);
  // The makespan is one worker's share; the total sums all workers.
  EXPECT_LE(stats.MakespanSeconds(), stats.TotalCpuSeconds() + 1e-12);
  double max_worker = 0.0;
  for (double c : stats.worker_cpu_seconds) max_worker = std::max(max_worker, c);
  EXPECT_DOUBLE_EQ(stats.MakespanSeconds(), max_worker);
}

TEST(ThreadPoolTest, PoolIsReusableAcrossJobs) {
  ThreadPool pool(3);
  for (int round = 0; round < 50; ++round) {
    std::atomic<std::size_t> count{0};
    pool.ParallelFor(0, 97, 0, [&](std::size_t, std::size_t) {
      count.fetch_add(1, std::memory_order_relaxed);
    });
    ASSERT_EQ(count.load(), 97u) << "round " << round;
  }
}

}  // namespace
}  // namespace exec
}  // namespace ssr
