// The batch executor's equivalence contract: Run(queries) returns, per
// query, exactly the sids a serial SetSimilarityIndex::Query loop returns —
// at any worker count, and still soundly under injected faults with
// DegradeMode::kPartialResults (latency faults change nothing; read faults
// may shrink answers but never produce a wrong sid).

#include "exec/batch_executor.h"

#include <algorithm>
#include <memory>
#include <vector>

#include <gtest/gtest.h>

#include "core/set_similarity_index.h"
#include "fault/fault_injector.h"
#include "util/random.h"
#include "util/set_ops.h"

namespace ssr {
namespace exec {
namespace {

constexpr double kEps = 1e-12;  // matches the index's verification slack

struct Fixture {
  SetCollection sets;
  SetStore store;
  std::unique_ptr<SetSimilarityIndex> index;
};

std::unique_ptr<Fixture> BuildFixture(
    std::size_t n, DegradeMode degrade = DegradeMode::kSequentialFallback) {
  auto f = std::make_unique<Fixture>();
  Rng rng(8787);
  for (std::size_t i = 0; i < n; ++i) {
    ElementSet s;
    const std::size_t size = 10 + rng.Uniform(60);
    for (std::size_t j = 0; j < size; ++j) s.push_back(rng.Uniform(6000));
    NormalizeSet(s);
    if (s.empty()) s.push_back(1);
    f->sets.push_back(s);
    EXPECT_TRUE(f->store.Add(s).ok());
  }
  IndexLayout layout;
  layout.delta = 0.4;
  layout.points = {{0.15, FilterKind::kDissimilarity, 8, 0},
                   {0.4, FilterKind::kDissimilarity, 8, 0},
                   {0.4, FilterKind::kSimilarity, 8, 0},
                   {0.75, FilterKind::kSimilarity, 8, 0}};
  IndexOptions options;
  options.embedding.minhash.num_hashes = 80;
  options.embedding.minhash.seed = 777;
  options.seed = 4242;
  options.degrade = degrade;
  auto index = SetSimilarityIndex::Build(f->store, layout, options);
  EXPECT_TRUE(index.ok()) << index.status().ToString();
  if (!index.ok()) return nullptr;
  f->index = std::make_unique<SetSimilarityIndex>(std::move(index).value());
  return f;
}

std::vector<BatchQuery> MakeBatch(const Fixture& f, std::size_t n,
                                  std::uint64_t seed) {
  std::vector<BatchQuery> batch;
  Rng rng(seed);
  for (std::size_t t = 0; t < n; ++t) {
    BatchQuery q;
    q.query = f.sets[rng.Uniform(f.sets.size())];
    q.sigma1 = rng.NextDouble() * 0.8;
    q.sigma2 = q.sigma1 + rng.NextDouble() * (1.0 - q.sigma1);
    batch.push_back(std::move(q));
  }
  return batch;
}

std::vector<SetId> BruteForce(const SetCollection& sets, const ElementSet& q,
                              double s1, double s2) {
  std::vector<SetId> out;
  for (SetId sid = 0; sid < sets.size(); ++sid) {
    const double sim = Jaccard(sets[sid], q);
    if (sim >= s1 - kEps && sim <= s2 + kEps) out.push_back(sid);
  }
  return out;
}

bool IsSubset(const std::vector<SetId>& a, const std::vector<SetId>& b) {
  return std::includes(b.begin(), b.end(), a.begin(), a.end());
}

class BatchExecutorTest : public ::testing::Test {
 protected:
  void SetUp() override { fault::FaultInjector::Default().Reset(); }
  void TearDown() override { fault::FaultInjector::Default().Reset(); }
};

TEST_F(BatchExecutorTest, MatchesSerialQueriesAtEveryWorkerCount) {
  auto f = BuildFixture(300);
  ASSERT_NE(f, nullptr);
  const auto batch = MakeBatch(*f, 60, 11);

  std::vector<std::vector<SetId>> reference;
  for (const BatchQuery& q : batch) {
    auto r = f->index->Query(q.query, q.sigma1, q.sigma2);
    ASSERT_TRUE(r.ok()) << r.status().ToString();
    reference.push_back(r->sids);
  }

  for (std::size_t threads : {std::size_t{1}, std::size_t{2}, std::size_t{4},
                              std::size_t{8}}) {
    BatchExecutorOptions options;
    options.num_threads = threads;
    BatchExecutor executor(*f->index, options);
    ASSERT_EQ(executor.num_threads(), threads);
    BatchResult result = executor.Run(batch);
    EXPECT_EQ(result.threads_used, threads);
    EXPECT_EQ(result.queries, batch.size());
    EXPECT_EQ(result.failed, 0u);
    ASSERT_EQ(result.results.size(), batch.size());
    for (std::size_t i = 0; i < batch.size(); ++i) {
      ASSERT_TRUE(result.statuses[i].ok()) << result.statuses[i].ToString();
      EXPECT_EQ(result.results[i].sids, reference[i])
          << "query " << i << " threads " << threads;
    }
  }
}

TEST_F(BatchExecutorTest, ReportsPerWorkerCostsAndModeledThroughput) {
  auto f = BuildFixture(300);
  ASSERT_NE(f, nullptr);
  BatchExecutorOptions options;
  options.num_threads = 4;
  BatchExecutor executor(*f->index, options);
  BatchResult result = executor.Run(MakeBatch(*f, 80, 22));
  ASSERT_EQ(result.worker_cpu_seconds.size(), 4u);
  ASSERT_EQ(result.worker_io_seconds.size(), 4u);
  EXPECT_GT(result.wall_seconds, 0.0);
  EXPECT_GT(result.wall_qps, 0.0);
  EXPECT_GT(result.modeled_makespan_seconds, 0.0);
  EXPECT_GT(result.modeled_qps, 0.0);
  // Verification fetches cost simulated I/O, which is charged to the
  // issuing worker's private view — so at least one worker saw I/O time.
  double io_total = 0.0;
  for (double s : result.worker_io_seconds) io_total += s;
  EXPECT_GT(io_total, 0.0);
  // Per-query stats carry the view's I/O delta, mirroring serial Query.
  bool any_io = false;
  for (const QueryResult& r : result.results) {
    if (r.stats.io.random_reads > 0) any_io = true;
  }
  EXPECT_TRUE(any_io);
}

TEST_F(BatchExecutorTest, InvalidQueriesFailIndividually) {
  auto f = BuildFixture(100);
  ASSERT_NE(f, nullptr);
  std::vector<BatchQuery> batch = MakeBatch(*f, 5, 33);
  BatchQuery bad;
  bad.query = f->sets[0];
  bad.sigma1 = 0.9;
  bad.sigma2 = 0.2;  // inverted range
  batch.insert(batch.begin() + 2, bad);

  BatchExecutorOptions options;
  options.num_threads = 3;
  BatchExecutor executor(*f->index, options);
  BatchResult result = executor.Run(batch);
  EXPECT_EQ(result.failed, 1u);
  EXPECT_FALSE(result.statuses[2].ok());
  for (std::size_t i = 0; i < batch.size(); ++i) {
    if (i == 2) continue;
    EXPECT_TRUE(result.statuses[i].ok()) << "query " << i;
    auto serial =
        f->index->Query(batch[i].query, batch[i].sigma1, batch[i].sigma2);
    ASSERT_TRUE(serial.ok());
    EXPECT_EQ(result.results[i].sids, serial->sids);
  }
}

// Degradation tests need faults to actually fire.
#ifdef SSR_NO_FAULT_INJECTION
#define SKIP_WITHOUT_INJECTION() \
  GTEST_SKIP() << "built with SSR_NO_FAULT_INJECTION"
#else
#define SKIP_WITHOUT_INJECTION() (void)0
#endif

TEST_F(BatchExecutorTest, LatencyFaultsNeverChangeAnswers) {
  SKIP_WITHOUT_INJECTION();
  auto f = BuildFixture(200, DegradeMode::kPartialResults);
  ASSERT_NE(f, nullptr);
  const auto batch = MakeBatch(*f, 40, 44);

  std::vector<std::vector<SetId>> reference;
  for (const BatchQuery& q : batch) {
    auto r = f->index->Query(q.query, q.sigma1, q.sigma2);
    ASSERT_TRUE(r.ok());
    reference.push_back(r->sids);
  }

  auto& fi = fault::FaultInjector::Default();
  fi.Enable(fault::SeedFromEnv(0xfeedULL));
  fault::FaultSchedule slow = fault::FaultSchedule::WithProbability(0.3);
  slow.latency_micros = 50.0;
  fi.Arm("store/get", fault::FaultKind::kLatency, slow);
  fi.Arm("index/probe_fi", fault::FaultKind::kLatency, slow);

  BatchExecutorOptions options;
  options.num_threads = 4;
  BatchExecutor executor(*f->index, options);
  BatchResult result = executor.Run(batch);
  EXPECT_EQ(result.failed, 0u);
  EXPECT_GT(fi.total_fires(), 0u);
  for (std::size_t i = 0; i < batch.size(); ++i) {
    EXPECT_EQ(result.results[i].sids, reference[i]) << "query " << i;
    EXPECT_FALSE(result.results[i].stats.degraded);
  }
}

TEST_F(BatchExecutorTest, PartialResultsUnderReadFaultsShrinkButNeverLie) {
  SKIP_WITHOUT_INJECTION();
  auto f = BuildFixture(200, DegradeMode::kPartialResults);
  ASSERT_NE(f, nullptr);
  const auto batch = MakeBatch(*f, 30, 55);

  // Fault-free reference (the faulted run may only lose answers, not
  // invent them; non-degraded queries must match it exactly).
  std::vector<std::vector<SetId>> reference;
  for (const BatchQuery& q : batch) {
    auto r = f->index->Query(q.query, q.sigma1, q.sigma2);
    ASSERT_TRUE(r.ok());
    reference.push_back(r->sids);
  }

  auto& fi = fault::FaultInjector::Default();
  // Any seed upholds the invariants; heavy enough to exhaust retries.
  fi.Enable(fault::SeedFromEnv(0xabadULL));
  fi.Arm("store/get", fault::FaultKind::kReadError,
         fault::FaultSchedule::WithProbability(0.6));

  BatchExecutorOptions options;
  options.num_threads = 4;
  BatchExecutor executor(*f->index, options);
  BatchResult result = executor.Run(batch);
  EXPECT_EQ(result.failed, 0u) << "kPartialResults never errors the query";
  std::size_t degraded = 0;
  for (std::size_t i = 0; i < batch.size(); ++i) {
    const QueryResult& r = result.results[i];
    // Precision is absolute even while degraded.
    EXPECT_TRUE(IsSubset(r.sids, BruteForce(f->sets, batch[i].query,
                                            batch[i].sigma1, batch[i].sigma2)))
        << "query " << i;
    if (r.stats.degraded) {
      ++degraded;
      EXPECT_GT(r.stats.fetch_failures + r.stats.probe_failures, 0u);
      // Fetch faults only drop candidates: a subset of the clean answer.
      EXPECT_TRUE(IsSubset(r.sids, reference[i])) << "query " << i;
    } else {
      EXPECT_EQ(r.sids, reference[i]) << "query " << i;
    }
  }
  EXPECT_GT(degraded, 0u);
}

TEST_F(BatchExecutorTest, QueryThroughScratchReuseMatchesQuery) {
  // The probe-union scratch buffer is an allocation optimization, never a
  // correctness input: one view + one scratch reused across many queries
  // answers identically to fresh serial queries.
  auto f = BuildFixture(200);
  ASSERT_NE(f, nullptr);
  SetStore::ReadView view(f->store);
  std::vector<SetId> scratch;
  for (const BatchQuery& q : MakeBatch(*f, 25, 66)) {
    auto through =
        f->index->QueryThrough(view, q.query, q.sigma1, q.sigma2, &scratch);
    auto serial = f->index->Query(q.query, q.sigma1, q.sigma2);
    ASSERT_TRUE(through.ok()) << through.status().ToString();
    ASSERT_TRUE(serial.ok());
    EXPECT_EQ(through->sids, serial->sids);
    EXPECT_EQ(through->stats.bucket_accesses, serial->stats.bucket_accesses);
  }
}

}  // namespace
}  // namespace exec
}  // namespace ssr
