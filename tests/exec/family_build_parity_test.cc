// The parallel-build determinism contract, per signing family: every
// MinHashFamily backend must keep the serial == parallel == sharded digest
// identity. The block-batched sign phase hands contiguous runs of sets to
// SignBatch, so this also pins that batching never reorders or perturbs
// signatures for any family — on SIMD and scalar builds alike.

#include <memory>
#include <vector>

#include <gtest/gtest.h>

#include "core/set_similarity_index.h"
#include "shard/sharded_index.h"
#include "util/random.h"
#include "util/set_ops.h"

namespace ssr {
namespace {

SetCollection MakeCollection(std::size_t n, std::uint64_t seed) {
  SetCollection sets;
  Rng rng(seed);
  for (std::size_t i = 0; i < n; ++i) {
    ElementSet s;
    const std::size_t size = 10 + rng.Uniform(60);
    for (std::size_t j = 0; j < size; ++j) s.push_back(rng.Uniform(8000));
    NormalizeSet(s);
    if (s.empty()) s.push_back(1);
    sets.push_back(std::move(s));
  }
  return sets;
}

IndexLayout MixedLayout() {
  IndexLayout layout;
  layout.delta = 0.4;
  layout.points = {{0.4, FilterKind::kDissimilarity, 8, 0},
                   {0.4, FilterKind::kSimilarity, 8, 0},
                   {0.75, FilterKind::kSimilarity, 8, 2}};
  return layout;
}

IndexOptions OptionsFor(MinHashFamilyKind family, std::size_t num_threads) {
  IndexOptions options;
  options.embedding.minhash.num_hashes = 80;
  options.embedding.minhash.seed = 424242;
  options.embedding.minhash.family = family;
  options.seed = 9001;
  options.num_threads = num_threads;
  return options;
}

std::unique_ptr<SetSimilarityIndex> BuildOne(SetStore& store,
                                             MinHashFamilyKind family,
                                             std::size_t num_threads) {
  auto index =
      SetSimilarityIndex::Build(store, MixedLayout(), OptionsFor(family,
                                                                 num_threads));
  EXPECT_TRUE(index.ok()) << index.status().ToString();
  if (!index.ok()) return nullptr;
  return std::make_unique<SetSimilarityIndex>(std::move(index).value());
}

TEST(FamilyBuildParityTest, SerialAndParallelDigestsAgreePerFamily) {
  const SetCollection sets = MakeCollection(300, 777);
  for (MinHashFamilyKind family : kAllMinHashFamilies) {
    SetStore serial_store;
    for (const auto& s : sets) ASSERT_TRUE(serial_store.Add(s).ok());
    auto serial = BuildOne(serial_store, family, 1);
    ASSERT_NE(serial, nullptr);
    const std::uint64_t want = serial->ContentDigest();
    for (std::size_t threads : {std::size_t{2}, std::size_t{4},
                                std::size_t{7}}) {
      SetStore store;
      for (const auto& s : sets) ASSERT_TRUE(store.Add(s).ok());
      auto parallel = BuildOne(store, family, threads);
      ASSERT_NE(parallel, nullptr);
      EXPECT_EQ(parallel->ContentDigest(), want)
          << MinHashFamilyName(family) << " num_threads=" << threads;
      for (SetId sid = 0; sid < sets.size(); ++sid) {
        ASSERT_EQ(parallel->signature(sid), serial->signature(sid))
            << MinHashFamilyName(family) << " num_threads=" << threads
            << " sid " << sid;
      }
    }
  }
}

TEST(FamilyBuildParityTest, ShardedBuildsAreThreadCountInvariantPerFamily) {
  const SetCollection sets = MakeCollection(200, 778);
  for (MinHashFamilyKind family : kAllMinHashFamilies) {
    shard::ShardedIndexOptions serial_options;
    serial_options.num_shards = 3;
    serial_options.index = OptionsFor(family, 1);
    auto serial =
        shard::ShardedSetSimilarityIndex::Build(sets, MixedLayout(),
                                                serial_options);
    ASSERT_TRUE(serial.ok()) << serial.status().ToString();

    shard::ShardedIndexOptions parallel_options = serial_options;
    parallel_options.index.num_threads = 4;
    auto parallel =
        shard::ShardedSetSimilarityIndex::Build(sets, MixedLayout(),
                                                parallel_options);
    ASSERT_TRUE(parallel.ok()) << parallel.status().ToString();
    EXPECT_EQ(parallel->ContentDigest(), serial->ContentDigest())
        << MinHashFamilyName(family);
  }
}

// The sharded executor must agree with the serial one query for query
// under every family (the difftest's identity contract, pinned here as a
// fast deterministic slice so tier-1 covers non-classic families even when
// the difftest runs its default classic schedule).
TEST(FamilyBuildParityTest, ShardedAnswersMatchSerialPerFamily) {
  const SetCollection sets = MakeCollection(150, 779);
  for (MinHashFamilyKind family : kAllMinHashFamilies) {
    SetStore store;
    for (const auto& s : sets) ASSERT_TRUE(store.Add(s).ok());
    auto serial = BuildOne(store, family, 2);
    ASSERT_NE(serial, nullptr);

    shard::ShardedIndexOptions options;
    options.num_shards = 4;
    options.index = OptionsFor(family, 2);
    auto sharded =
        shard::ShardedSetSimilarityIndex::Build(sets, MixedLayout(), options);
    ASSERT_TRUE(sharded.ok()) << sharded.status().ToString();

    Rng rng(41);
    for (int t = 0; t < 15; ++t) {
      const ElementSet& q = sets[rng.Uniform(sets.size())];
      const double s1 = rng.NextDouble() * 0.8;
      const double s2 = s1 + rng.NextDouble() * (1.0 - s1);
      auto a = serial->Query(q, s1, s2);
      auto b = sharded->Query(q, s1, s2);
      ASSERT_TRUE(a.ok() && b.ok());
      ASSERT_EQ(a->sids, b->sids)
          << MinHashFamilyName(family) << " range [" << s1 << ", " << s2
          << "]";
    }
  }
}

}  // namespace
}  // namespace ssr
