#include "eval/run_report.h"

#include <gtest/gtest.h>

#include <string>

#include "eval/env_fingerprint.h"
#include "obs/json_writer.h"

namespace ssr {
namespace {

TEST(RunReportTest, SchemaVersionLeadsTheReport) {
  RunReport report("unit");
  const std::string json = report.ToJson();
  EXPECT_EQ(json.rfind("{\"schema_version\":2,\"bench\":\"unit\",", 0), 0u)
      << json.substr(0, 80);
  EXPECT_EQ(RunReport::kSchemaVersion, 2u);
}

TEST(RunReportTest, EnvSectionCarriesTheFingerprint) {
  RunReport report("unit");
  const std::string json = report.ToJson();
  const std::size_t env_pos = json.find("\"env\":{");
  ASSERT_NE(env_pos, std::string::npos);
  // Every fingerprint field is present (values are machine-dependent).
  for (const char* key :
       {"\"git_sha\":", "\"compiler\":", "\"build_type\":", "\"cpu_model\":",
        "\"num_cores\":", "\"governor\":", "\"os\":"}) {
    EXPECT_NE(json.find(key, env_pos), std::string::npos) << key;
  }
  // env precedes params: tooling reads the fingerprint without scanning.
  EXPECT_LT(env_pos, json.find("\"params\":"));
}

TEST(RunReportTest, ProfileSectionPresentBetweenMetricsAndTrace) {
  RunReport report("unit");
  const std::string json = report.ToJson();
  const std::size_t metrics_pos = json.find("\"metrics\":");
  const std::size_t profile_pos = json.find("\"profile\":{\"source\":");
  const std::size_t trace_pos = json.find("\"trace\":");
  ASSERT_NE(metrics_pos, std::string::npos);
  ASSERT_NE(profile_pos, std::string::npos);
  ASSERT_NE(trace_pos, std::string::npos);
  EXPECT_LT(metrics_pos, profile_pos);
  EXPECT_LT(profile_pos, trace_pos);
}

TEST(RunReportTest, ParamsAndScalarsRenderTyped) {
  RunReport report("unit");
  report.AddParam("dataset", "set1");
  report.AddParam("quick", true);
  report.AddParam("budget", std::uint64_t{300});
  report.AddScalar("latency_ns", 1.5);
  report.AddScalar("queries", std::uint64_t{42});
  const std::string json = report.ToJson();
  EXPECT_NE(json.find("\"params\":{\"dataset\":\"set1\",\"quick\":true,"
                      "\"budget\":300}"),
            std::string::npos);
  EXPECT_NE(json.find("\"scalars\":{\"latency_ns\":1.5,\"queries\":42}"),
            std::string::npos);
}

TEST(EnvFingerprintTest, CollectsNonEmptyFieldsAndHonorsShaOverride) {
  ASSERT_EQ(setenv("SSR_GIT_SHA", "deadbeef1234", 1), 0);
  const EnvFingerprint env = CollectEnvFingerprint();
  EXPECT_EQ(env.git_sha, "deadbeef1234");
  EXPECT_FALSE(env.compiler.empty());
  EXPECT_FALSE(env.os.empty());
  EXPECT_GE(env.num_cores, 1u);
  ASSERT_EQ(unsetenv("SSR_GIT_SHA"), 0);

  obs::JsonWriter writer;
  WriteEnvJson(writer, env);
  EXPECT_NE(writer.str().find("\"git_sha\":\"deadbeef1234\""),
            std::string::npos);
}

}  // namespace
}  // namespace ssr
