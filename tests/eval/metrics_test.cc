#include "eval/metrics.h"

#include <gtest/gtest.h>

namespace ssr {
namespace {

TEST(MetricsTest, SortedIntersectionCount) {
  EXPECT_EQ(SortedIntersectionCount({1, 2, 3}, {2, 3, 4}), 2u);
  EXPECT_EQ(SortedIntersectionCount({}, {1}), 0u);
  EXPECT_EQ(SortedIntersectionCount({1, 5, 9}, {1, 5, 9}), 3u);
  EXPECT_EQ(SortedIntersectionCount({1, 3}, {2, 4}), 0u);
}

TEST(MetricsTest, RecallBasics) {
  EXPECT_DOUBLE_EQ(Recall({1, 2}, {1, 2, 3, 4}), 0.5);
  EXPECT_DOUBLE_EQ(Recall({1, 2, 3, 4}, {1, 2, 3, 4}), 1.0);
  EXPECT_DOUBLE_EQ(Recall({}, {1, 2}), 0.0);
  EXPECT_DOUBLE_EQ(Recall({}, {}), 1.0);  // empty truth: perfect
  EXPECT_DOUBLE_EQ(Recall({9, 10}, {}), 1.0);
}

TEST(MetricsTest, RecallIgnoresExtraAnswers) {
  // Extra (false positive) answers do not raise recall above 1.
  EXPECT_DOUBLE_EQ(Recall({1, 2, 3, 99}, {1, 2, 3}), 1.0);
}

TEST(MetricsTest, CandidatePrecision) {
  EXPECT_DOUBLE_EQ(CandidatePrecision(5, 10), 0.5);
  EXPECT_DOUBLE_EQ(CandidatePrecision(0, 10), 0.0);
  EXPECT_DOUBLE_EQ(CandidatePrecision(10, 10), 1.0);
  EXPECT_DOUBLE_EQ(CandidatePrecision(0, 0), 1.0);  // nothing fetched
}

}  // namespace
}  // namespace ssr
