#include "eval/harness.h"

#include <gtest/gtest.h>

namespace ssr {
namespace {

ExperimentConfig TinyConfig() {
  ExperimentConfig config;
  config.dataset = "set1";
  config.scale = 0.002;  // 400 sets: fast
  config.table_budget = 60;
  config.recall_threshold = 0.7;
  config.num_minhashes = 40;
  config.queries_per_bucket = 4;
  config.max_attempts_factor = 4;
  config.distribution_sample_pairs = 10000;
  config.run_scan = false;
  return config;
}

TEST(HarnessTest, CreateBuildsWorkingIndex) {
  auto harness = ExperimentHarness::Create(TinyConfig());
  ASSERT_TRUE(harness.ok()) << harness.status().ToString();
  EXPECT_EQ((*harness)->index().num_live_sets(), 400u);
  EXPECT_GE((*harness)->achieved_threshold(), 0.6);
}

TEST(HarnessTest, ImpossibleThresholdFallsBack) {
  ExperimentConfig config = TinyConfig();
  config.recall_threshold = 0.999;  // unachievable prediction
  config.threshold_floor = 0.6;
  auto harness = ExperimentHarness::Create(config);
  ASSERT_TRUE(harness.ok()) << harness.status().ToString();
  EXPECT_LT((*harness)->achieved_threshold(), 0.999);
  EXPECT_GE((*harness)->achieved_threshold(), 0.6 - 1e-9);
}

TEST(HarnessTest, FallbackCanBeDisabled) {
  ExperimentConfig config = TinyConfig();
  config.recall_threshold = 0.9999;
  config.allow_threshold_fallback = false;
  auto harness = ExperimentHarness::Create(config);
  EXPECT_FALSE(harness.ok());
}

TEST(HarnessTest, RunOneProducesConsistentOutcome) {
  auto harness = ExperimentHarness::Create(TinyConfig());
  ASSERT_TRUE(harness.ok());
  RangeQuery query{7, 0.5, 0.9};
  auto outcome = (*harness)->RunOne(query, /*with_scan=*/false);
  ASSERT_TRUE(outcome.ok());
  EXPECT_LE(outcome->index.sids.size(), outcome->index.stats.candidates);
  EXPECT_GE(outcome->recall, 0.0);
  EXPECT_LE(outcome->recall, 1.0);
  EXPECT_DOUBLE_EQ(outcome->scan_io_seconds, 0.0);  // scan disabled
}

TEST(HarnessTest, BucketedSweepReportsUnconditionedAverages) {
  auto harness = ExperimentHarness::Create(TinyConfig());
  ASSERT_TRUE(harness.ok());
  auto result = (*harness)->RunBucketedQueries();
  ASSERT_TRUE(result.ok());
  EXPECT_GT(result->total_queries_run, 0u);
  EXPECT_GE(result->overall_avg_recall, 0.0);
  EXPECT_LE(result->overall_avg_recall, 1.0);
  EXPECT_GE(result->overall_weighted_recall, 0.0);
  EXPECT_LE(result->overall_weighted_recall, 1.0);
  EXPECT_GE(result->overall_weighted_precision, 0.0);
  EXPECT_LE(result->overall_weighted_precision, 1.0);
}

}  // namespace
}  // namespace ssr
