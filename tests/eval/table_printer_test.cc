#include "eval/table_printer.h"

#include <sstream>

#include <gtest/gtest.h>

namespace ssr {
namespace {

TEST(TablePrinterTest, RendersHeadersAndRows) {
  TablePrinter table({"bucket", "recall", "precision"});
  table.AddRow({"<0.5%", "0.93", "0.88"});
  table.AddRow({"0.5-5%", "0.91", "0.80"});
  std::ostringstream out;
  table.Print(out);
  const std::string text = out.str();
  EXPECT_NE(text.find("bucket"), std::string::npos);
  EXPECT_NE(text.find("<0.5%"), std::string::npos);
  EXPECT_NE(text.find("0.91"), std::string::npos);
  EXPECT_NE(text.find("---"), std::string::npos);
}

TEST(TablePrinterTest, ShortRowsPadded) {
  TablePrinter table({"a", "b", "c"});
  table.AddRow({"only"});
  std::ostringstream out;
  table.Print(out);
  EXPECT_NE(out.str().find("only"), std::string::npos);
}

TEST(TablePrinterTest, ColumnsAligned) {
  TablePrinter table({"x", "yyyyyyy"});
  table.AddRow({"aaaaaaaaaa", "1"});
  std::ostringstream out;
  table.Print(out);
  std::istringstream lines(out.str());
  std::string header, underline, row;
  std::getline(lines, header);
  std::getline(lines, underline);
  std::getline(lines, row);
  // Second column starts at the same offset in header and row.
  EXPECT_EQ(header.find("yyyyyyy") > 0, true);
  EXPECT_EQ(row.find('1'), header.find("yyyyyyy"));
}

TEST(TablePrinterTest, Formatters) {
  EXPECT_EQ(TablePrinter::Num(3.14159, 2), "3.14");
  EXPECT_EQ(TablePrinter::Pct(0.873, 1), "87.3%");
  EXPECT_EQ(TablePrinter::Count(42), "42");
}

}  // namespace
}  // namespace ssr
