#include "util/result.h"

#include <memory>
#include <string>
#include <vector>

#include <gtest/gtest.h>

namespace ssr {
namespace {

TEST(ResultTest, HoldsValue) {
  Result<int> r(42);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r.value(), 42);
  EXPECT_EQ(*r, 42);
  EXPECT_TRUE(r.status().ok());
}

TEST(ResultTest, HoldsError) {
  Result<int> r(Status::NotFound("nope"));
  EXPECT_FALSE(r.ok());
  EXPECT_TRUE(r.status().IsNotFound());
}

TEST(ResultTest, ValueOrReturnsFallbackOnError) {
  Result<int> bad(Status::Internal("x"));
  EXPECT_EQ(bad.value_or(7), 7);
  Result<int> good(3);
  EXPECT_EQ(good.value_or(7), 3);
}

TEST(ResultTest, MoveOnlyValueType) {
  Result<std::unique_ptr<int>> r(std::make_unique<int>(5));
  ASSERT_TRUE(r.ok());
  std::unique_ptr<int> taken = std::move(r).value();
  EXPECT_EQ(*taken, 5);
}

TEST(ResultTest, ArrowOperatorAccessesMembers) {
  Result<std::string> r(std::string("hello"));
  EXPECT_EQ(r->size(), 5u);
}

Result<int> ParsePositive(int v) {
  if (v <= 0) return Status::InvalidArgument("not positive");
  return v;
}

Status UseAssignOrReturn(int v, int* out) {
  int parsed = 0;
  SSR_ASSIGN_OR_RETURN(parsed, ParsePositive(v));
  *out = parsed * 2;
  return Status::OK();
}

TEST(ResultTest, AssignOrReturnMacro) {
  int out = 0;
  EXPECT_TRUE(UseAssignOrReturn(21, &out).ok());
  EXPECT_EQ(out, 42);
  EXPECT_TRUE(UseAssignOrReturn(-1, &out).IsInvalidArgument());
  EXPECT_EQ(out, 42);  // untouched on failure
}

TEST(ResultTest, VectorValue) {
  Result<std::vector<int>> r(std::vector<int>{1, 2, 3});
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r->size(), 3u);
}

}  // namespace
}  // namespace ssr
