#include "util/set_ops.h"

#include <gtest/gtest.h>

#include "util/random.h"

namespace ssr {
namespace {

TEST(SetOpsTest, NormalizeSortsAndDedups) {
  ElementSet s{5, 1, 3, 1, 5, 5};
  NormalizeSet(s);
  EXPECT_EQ(s, (ElementSet{1, 3, 5}));
  EXPECT_TRUE(IsNormalizedSet(s));
}

TEST(SetOpsTest, IsNormalizedDetectsViolations) {
  EXPECT_TRUE(IsNormalizedSet({}));
  EXPECT_TRUE(IsNormalizedSet({7}));
  EXPECT_TRUE(IsNormalizedSet({1, 2, 3}));
  EXPECT_FALSE(IsNormalizedSet({2, 1}));
  EXPECT_FALSE(IsNormalizedSet({1, 1}));
}

TEST(SetOpsTest, IntersectionAndUnionSizes) {
  const ElementSet a{1, 2, 3, 4};
  const ElementSet b{3, 4, 5};
  EXPECT_EQ(IntersectionSize(a, b), 2u);
  EXPECT_EQ(UnionSize(a, b), 5u);
  EXPECT_EQ(IntersectionSize(a, {}), 0u);
  EXPECT_EQ(UnionSize(a, {}), 4u);
}

TEST(SetOpsTest, JaccardDefinitionExamples) {
  EXPECT_DOUBLE_EQ(Jaccard({1, 2}, {1, 2}), 1.0);
  EXPECT_DOUBLE_EQ(Jaccard({1, 2}, {3, 4}), 0.0);
  EXPECT_DOUBLE_EQ(Jaccard({1, 2, 3}, {2, 3, 4}), 0.5);
  EXPECT_DOUBLE_EQ(Jaccard({1}, {1, 2, 3, 4}), 0.25);
}

TEST(SetOpsTest, JaccardEmptyConventions) {
  EXPECT_DOUBLE_EQ(Jaccard({}, {}), 1.0);  // identical sets
  EXPECT_DOUBLE_EQ(Jaccard({}, {1}), 0.0);
  EXPECT_DOUBLE_EQ(Jaccard({1}, {}), 0.0);
}

TEST(SetOpsTest, JaccardSymmetric) {
  const ElementSet a{1, 5, 9, 12};
  const ElementSet b{5, 9, 40};
  EXPECT_DOUBLE_EQ(Jaccard(a, b), Jaccard(b, a));
}

TEST(SetOpsTest, JaccardBoundedInUnitInterval) {
  Rng rng(17);
  for (int t = 0; t < 200; ++t) {
    ElementSet a, b;
    for (int i = 0; i < 20; ++i) {
      a.push_back(rng.Uniform(30));
      b.push_back(rng.Uniform(30));
    }
    NormalizeSet(a);
    NormalizeSet(b);
    const double s = Jaccard(a, b);
    EXPECT_GE(s, 0.0);
    EXPECT_LE(s, 1.0);
  }
}

// The paper's footnote: d = 1 - sim is a metric. Check the triangle
// inequality on random triples (a property test for the distance).
TEST(SetOpsTest, JaccardDistanceTriangleInequality) {
  Rng rng(18);
  for (int t = 0; t < 300; ++t) {
    ElementSet a, b, c;
    for (int i = 0; i < 15; ++i) {
      a.push_back(rng.Uniform(25));
      b.push_back(rng.Uniform(25));
      c.push_back(rng.Uniform(25));
    }
    NormalizeSet(a);
    NormalizeSet(b);
    NormalizeSet(c);
    const double ab = JaccardDistance(a, b);
    const double bc = JaccardDistance(b, c);
    const double ac = JaccardDistance(a, c);
    EXPECT_LE(ac, ab + bc + 1e-12);
  }
}

TEST(SetOpsTest, IntersectionSizeAgreesWithBruteForce) {
  Rng rng(19);
  for (int t = 0; t < 100; ++t) {
    ElementSet a, b;
    for (int i = 0; i < 25; ++i) {
      a.push_back(rng.Uniform(40));
      b.push_back(rng.Uniform(40));
    }
    NormalizeSet(a);
    NormalizeSet(b);
    std::size_t brute = 0;
    for (ElementId x : a) {
      for (ElementId y : b) {
        if (x == y) ++brute;
      }
    }
    EXPECT_EQ(IntersectionSize(a, b), brute);
  }
}

}  // namespace
}  // namespace ssr
