#include "util/hash.h"

#include <cstdint>
#include <set>
#include <vector>

#include <gtest/gtest.h>

namespace ssr {
namespace {

TEST(HashTest, SplitMix64IsDeterministicAndSpreads) {
  EXPECT_EQ(SplitMix64(1), SplitMix64(1));
  std::set<std::uint64_t> seen;
  for (std::uint64_t i = 0; i < 10000; ++i) seen.insert(SplitMix64(i));
  EXPECT_EQ(seen.size(), 10000u);  // injective on this small domain
}

TEST(HashTest, Fmix64DistinctFromSplitMix) {
  int equal = 0;
  for (std::uint64_t i = 0; i < 1000; ++i) {
    if (Fmix64(i) == SplitMix64(i)) ++equal;
  }
  EXPECT_LE(equal, 1);  // families should not coincide
}

// Avalanche: flipping one input bit flips ~half the output bits.
TEST(HashTest, SplitMix64Avalanche) {
  double total_flips = 0.0;
  int trials = 0;
  for (std::uint64_t base = 1; base < 2000; base += 37) {
    const std::uint64_t h0 = SplitMix64(base);
    for (int bit = 0; bit < 64; bit += 7) {
      const std::uint64_t h1 = SplitMix64(base ^ (1ULL << bit));
      total_flips += __builtin_popcountll(h0 ^ h1);
      ++trials;
    }
  }
  const double avg = total_flips / trials;
  EXPECT_GT(avg, 24.0);
  EXPECT_LT(avg, 40.0);
}

TEST(HashTest, HashU64SeedsGiveIndependentFunctions) {
  // Different seeds should disagree on most inputs.
  int agree = 0;
  for (std::uint64_t k = 0; k < 1000; ++k) {
    if (HashU64(k, 1) == HashU64(k, 2)) ++agree;
  }
  EXPECT_EQ(agree, 0);
}

TEST(HashTest, HashBytesDependsOnContentAndSeed) {
  EXPECT_EQ(HashBytes("abc"), HashBytes("abc"));
  EXPECT_NE(HashBytes("abc"), HashBytes("abd"));
  EXPECT_NE(HashBytes("abc", 1), HashBytes("abc", 2));
  EXPECT_NE(HashBytes(""), HashBytes("a"));
}

TEST(HashTest, HashCombineOrderSensitive) {
  const std::uint64_t a = HashCombine(HashCombine(0, 1), 2);
  const std::uint64_t b = HashCombine(HashCombine(0, 2), 1);
  EXPECT_NE(a, b);
}

TEST(HashFamilyTest, SizeAndDeterminism) {
  HashFamily f(8, 123);
  EXPECT_EQ(f.size(), 8u);
  HashFamily g(8, 123);
  for (std::size_t i = 0; i < 8; ++i) {
    EXPECT_EQ(f.seed(i), g.seed(i));
    EXPECT_EQ(f.Hash(i, 42), g.Hash(i, 42));
  }
}

TEST(HashFamilyTest, MembersDiffer) {
  HashFamily f(4, 7);
  EXPECT_NE(f.Hash(0, 99), f.Hash(1, 99));
  EXPECT_NE(f.Hash(1, 99), f.Hash(2, 99));
}

TEST(HashFamilyTest, DifferentMasterSeedsDiffer) {
  HashFamily f(2, 1), g(2, 2);
  EXPECT_NE(f.Hash(0, 5), g.Hash(0, 5));
}

TEST(TabulationHashTest, DeterministicPerSeed) {
  TabulationHash t1(9), t2(9), t3(10);
  EXPECT_EQ(t1.Hash(12345), t2.Hash(12345));
  EXPECT_NE(t1.Hash(12345), t3.Hash(12345));
}

TEST(TabulationHashTest, Avalanche) {
  TabulationHash t(42);
  double flips = 0.0;
  int trials = 0;
  for (std::uint64_t k = 0; k < 500; k += 3) {
    const std::uint64_t h0 = t.Hash(k);
    for (int bit = 0; bit < 64; bit += 9) {
      flips += __builtin_popcountll(h0 ^ t.Hash(k ^ (1ULL << bit)));
      ++trials;
    }
  }
  const double avg = flips / trials;
  EXPECT_GT(avg, 24.0);
  EXPECT_LT(avg, 40.0);
}

// The min-hash construction depends on low collision rates among hashed
// minima; spot-check uniformity of the low byte.
TEST(HashTest, LowByteRoughlyUniform) {
  std::vector<int> counts(256, 0);
  const int n = 256 * 200;
  for (int i = 0; i < n; ++i) {
    counts[HashU64(static_cast<std::uint64_t>(i), 77) & 0xff] += 1;
  }
  for (int c : counts) {
    EXPECT_GT(c, 100);  // expected 200, generous band
    EXPECT_LT(c, 320);
  }
}

}  // namespace
}  // namespace ssr
