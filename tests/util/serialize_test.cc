#include "util/serialize.h"

#include <sstream>

#include <gtest/gtest.h>

namespace ssr {
namespace {

TEST(SerializeTest, ScalarsRoundTrip) {
  std::stringstream buffer;
  BinaryWriter writer(buffer);
  writer.WriteU8(0xab);
  writer.WriteU16(0xbeef);
  writer.WriteU32(0xdeadbeef);
  writer.WriteU64(0x0123456789abcdefULL);
  writer.WriteDouble(3.14159);
  writer.WriteBool(true);
  writer.WriteBool(false);
  ASSERT_TRUE(writer.ok());

  BinaryReader reader(buffer);
  std::uint8_t u8;
  std::uint16_t u16;
  std::uint32_t u32;
  std::uint64_t u64;
  double d;
  bool b1, b2;
  ASSERT_TRUE(reader.ReadU8(&u8).ok());
  ASSERT_TRUE(reader.ReadU16(&u16).ok());
  ASSERT_TRUE(reader.ReadU32(&u32).ok());
  ASSERT_TRUE(reader.ReadU64(&u64).ok());
  ASSERT_TRUE(reader.ReadDouble(&d).ok());
  ASSERT_TRUE(reader.ReadBool(&b1).ok());
  ASSERT_TRUE(reader.ReadBool(&b2).ok());
  EXPECT_EQ(u8, 0xab);
  EXPECT_EQ(u16, 0xbeef);
  EXPECT_EQ(u32, 0xdeadbeefu);
  EXPECT_EQ(u64, 0x0123456789abcdefULL);
  EXPECT_DOUBLE_EQ(d, 3.14159);
  EXPECT_TRUE(b1);
  EXPECT_FALSE(b2);
}

TEST(SerializeTest, StringsAndVectorsRoundTrip) {
  std::stringstream buffer;
  BinaryWriter writer(buffer);
  writer.WriteString("similar sets");
  writer.WriteString("");
  writer.WriteVector(std::vector<std::uint32_t>{1, 2, 3});
  writer.WriteVector(std::vector<double>{});
  ASSERT_TRUE(writer.ok());

  BinaryReader reader(buffer);
  std::string s1, s2;
  std::vector<std::uint32_t> v1;
  std::vector<double> v2;
  ASSERT_TRUE(reader.ReadString(&s1).ok());
  ASSERT_TRUE(reader.ReadString(&s2).ok());
  ASSERT_TRUE(reader.ReadVector(&v1).ok());
  ASSERT_TRUE(reader.ReadVector(&v2).ok());
  EXPECT_EQ(s1, "similar sets");
  EXPECT_TRUE(s2.empty());
  EXPECT_EQ(v1, (std::vector<std::uint32_t>{1, 2, 3}));
  EXPECT_TRUE(v2.empty());
}

TEST(SerializeTest, TruncatedStreamIsDataLoss) {
  std::stringstream buffer;
  BinaryWriter writer(buffer);
  writer.WriteU64(42);
  std::stringstream truncated(buffer.str().substr(0, 3));
  BinaryReader reader(truncated);
  std::uint64_t v;
  EXPECT_TRUE(reader.ReadU64(&v).IsDataLoss());
}

TEST(SerializeTest, AbsurdLengthRejected) {
  std::stringstream buffer;
  BinaryWriter writer(buffer);
  writer.WriteU64(~0ULL);  // insane length prefix
  BinaryReader reader(buffer);
  std::string s;
  EXPECT_TRUE(reader.ReadString(&s).IsCorruption());
}

TEST(SerializeTest, LengthBeyondRemainingBytesIsCorruption) {
  // A plausible-but-wrong length (well under the sanity limit) must still
  // be rejected against the actual bytes left in a seekable stream,
  // instead of allocating and then failing mid-read.
  std::stringstream buffer;
  BinaryWriter writer(buffer);
  writer.WriteU64(1 << 20);  // promises 1 MiB, delivers 4 bytes
  writer.WriteU32(0);
  BinaryReader reader(buffer);
  std::string s;
  EXPECT_TRUE(reader.ReadString(&s).IsCorruption());
}

TEST(SerializeTest, VectorLengthOverflowRejected) {
  // size * sizeof(T) would overflow u64; the element-count bound must
  // catch it before the multiply.
  std::stringstream buffer;
  BinaryWriter writer(buffer);
  writer.WriteU64(0x2000000000000001ULL);
  BinaryReader reader(buffer);
  std::vector<std::uint64_t> v;
  EXPECT_TRUE(reader.ReadVector(&v).IsCorruption());
}

TEST(SerializeTest, CustomSanityLimitApplies) {
  std::stringstream buffer;
  BinaryWriter writer(buffer);
  writer.WriteString(std::string(64, 'x'));
  BinaryReader reader(buffer, /*fault_site=*/{}, /*sanity_limit=*/16);
  std::string s;
  EXPECT_TRUE(reader.ReadString(&s).IsCorruption());
}

}  // namespace
}  // namespace ssr
