#include "util/random.h"

#include <algorithm>
#include <cmath>
#include <set>
#include <vector>

#include <gtest/gtest.h>

namespace ssr {
namespace {

TEST(RngTest, DeterministicPerSeed) {
  Rng a(1), b(1), c(2);
  for (int i = 0; i < 100; ++i) {
    const std::uint64_t va = a.Next();
    EXPECT_EQ(va, b.Next());
  }
  EXPECT_NE(a.Next(), c.Next());
}

TEST(RngTest, UniformStaysInBounds) {
  Rng rng(3);
  for (int i = 0; i < 10000; ++i) {
    EXPECT_LT(rng.Uniform(7), 7u);
  }
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(rng.Uniform(1), 0u);
  }
}

TEST(RngTest, UniformIsRoughlyUniform) {
  Rng rng(4);
  std::vector<int> counts(10, 0);
  const int n = 100000;
  for (int i = 0; i < n; ++i) counts[rng.Uniform(10)] += 1;
  for (int c : counts) {
    EXPECT_GT(c, 9000);
    EXPECT_LT(c, 11000);
  }
}

TEST(RngTest, UniformInRangeInclusive) {
  Rng rng(5);
  bool saw_lo = false, saw_hi = false;
  for (int i = 0; i < 1000; ++i) {
    const std::int64_t v = rng.UniformInRange(-3, 3);
    EXPECT_GE(v, -3);
    EXPECT_LE(v, 3);
    if (v == -3) saw_lo = true;
    if (v == 3) saw_hi = true;
  }
  EXPECT_TRUE(saw_lo);
  EXPECT_TRUE(saw_hi);
}

TEST(RngTest, NextDoubleInUnitInterval) {
  Rng rng(6);
  double sum = 0.0;
  for (int i = 0; i < 10000; ++i) {
    const double d = rng.NextDouble();
    EXPECT_GE(d, 0.0);
    EXPECT_LT(d, 1.0);
    sum += d;
  }
  EXPECT_NEAR(sum / 10000.0, 0.5, 0.02);
}

TEST(RngTest, BernoulliMatchesProbability) {
  Rng rng(7);
  int hits = 0;
  const int n = 50000;
  for (int i = 0; i < n; ++i) hits += rng.Bernoulli(0.3) ? 1 : 0;
  EXPECT_NEAR(static_cast<double>(hits) / n, 0.3, 0.02);
}

TEST(RngTest, SampleWithoutReplacementDistinctAndInRange) {
  Rng rng(8);
  for (int trial = 0; trial < 50; ++trial) {
    auto sample = rng.SampleWithoutReplacement(100, 20);
    EXPECT_EQ(sample.size(), 20u);
    std::set<std::uint64_t> unique(sample.begin(), sample.end());
    EXPECT_EQ(unique.size(), 20u);
    for (auto v : sample) EXPECT_LT(v, 100u);
  }
}

TEST(RngTest, SampleWithoutReplacementFullRange) {
  Rng rng(9);
  auto sample = rng.SampleWithoutReplacement(10, 10);
  std::sort(sample.begin(), sample.end());
  for (std::uint64_t i = 0; i < 10; ++i) EXPECT_EQ(sample[i], i);
}

TEST(RngTest, SampleCoversPositionsUniformly) {
  // Every position should be sampled roughly equally often.
  Rng rng(10);
  std::vector<int> counts(20, 0);
  const int trials = 5000;
  for (int t = 0; t < trials; ++t) {
    for (auto v : rng.SampleWithoutReplacement(20, 5)) counts[v] += 1;
  }
  // Expected trials * 5 / 20 = 1250 per position.
  for (int c : counts) {
    EXPECT_GT(c, 1000);
    EXPECT_LT(c, 1500);
  }
}

TEST(RngTest, ShufflePreservesMultisetAndPermutes) {
  Rng rng(11);
  std::vector<int> v{1, 2, 3, 4, 5, 6, 7, 8};
  std::vector<int> original = v;
  bool changed = false;
  for (int t = 0; t < 10; ++t) {
    rng.Shuffle(v);
    std::vector<int> sorted = v;
    std::sort(sorted.begin(), sorted.end());
    EXPECT_EQ(sorted, original);
    if (v != original) changed = true;
  }
  EXPECT_TRUE(changed);
}

TEST(RngTest, ForkProducesIndependentStream) {
  Rng parent(12);
  Rng child = parent.Fork();
  bool diverged = false;
  for (int i = 0; i < 10; ++i) {
    if (parent.Next() != child.Next()) diverged = true;
  }
  EXPECT_TRUE(diverged);
}

TEST(ZipfTest, AlphaZeroIsUniform) {
  ZipfDistribution z(100, 0.0);
  Rng rng(13);
  std::vector<int> counts(100, 0);
  for (int i = 0; i < 100000; ++i) counts[z.Sample(rng)] += 1;
  for (int c : counts) {
    EXPECT_GT(c, 700);
    EXPECT_LT(c, 1300);
  }
}

TEST(ZipfTest, SkewFavorsLowRanks) {
  ZipfDistribution z(1000, 1.0);
  Rng rng(14);
  int head = 0;
  const int n = 50000;
  for (int i = 0; i < n; ++i) {
    if (z.Sample(rng) < 10) ++head;
  }
  // With alpha=1 over 1000 ranks, the top-10 mass is ~H(10)/H(1000) ≈ 0.39.
  EXPECT_GT(head, n / 4);
  EXPECT_LT(head, n / 2);
}

TEST(ZipfTest, SamplesAlwaysInRange) {
  ZipfDistribution z(7, 1.5);
  Rng rng(15);
  for (int i = 0; i < 10000; ++i) EXPECT_LT(z.Sample(rng), 7u);
}

TEST(ZipfTest, SingleElementDomain) {
  ZipfDistribution z(1, 1.0);
  Rng rng(16);
  EXPECT_EQ(z.Sample(rng), 0u);
}

}  // namespace
}  // namespace ssr
