#include "util/logging.h"

#include <gtest/gtest.h>

#include <string>
#include <vector>

namespace ssr {
namespace {

class LoggingTest : public ::testing::Test {
 protected:
  void TearDown() override {
    SetLogSink(nullptr);
    SetLogLevel(LogLevel::kWarning);
  }
};

TEST_F(LoggingTest, LevelRoundTrips) {
  SetLogLevel(LogLevel::kDebug);
  EXPECT_EQ(GetLogLevel(), LogLevel::kDebug);
  SetLogLevel(LogLevel::kError);
  EXPECT_EQ(GetLogLevel(), LogLevel::kError);
}

TEST_F(LoggingTest, MacroStreamsWithoutCrashing) {
  SetLogLevel(LogLevel::kOff);
  SSR_LOG(kInfo) << "value " << 42 << " pi " << 3.14;  // dropped, but built
  SetLogLevel(LogLevel::kDebug);
  SSR_LOG(kDebug) << "emitted at debug";
}

TEST_F(LoggingTest, DefaultLevelIsWarning) {
  EXPECT_EQ(GetLogLevel(), LogLevel::kWarning);
}

TEST_F(LoggingTest, SinkCapturesComponentMessageAndFields) {
  SetLogLevel(LogLevel::kInfo);
  std::vector<LogRecord> captured;
  SetLogSink([&captured](const LogRecord& r) { captured.push_back(r); });
  SSR_LOG_C(kInfo, "harness")
          .With("dataset", "set1")
          .With("pages", 42)
      << "environment ready: " << 3 << " indices";
  ASSERT_EQ(captured.size(), 1u);
  const LogRecord& r = captured[0];
  EXPECT_EQ(r.level, LogLevel::kInfo);
  EXPECT_EQ(r.component, "harness");
  EXPECT_EQ(r.message, "environment ready: 3 indices");
  ASSERT_EQ(r.fields.size(), 2u);
  EXPECT_EQ(r.fields[0].first, "dataset");
  EXPECT_EQ(r.fields[0].second, "set1");
  EXPECT_EQ(r.fields[1].first, "pages");
  EXPECT_EQ(r.fields[1].second, "42");
}

TEST_F(LoggingTest, SinkRespectsLevelThreshold) {
  SetLogLevel(LogLevel::kWarning);
  std::vector<LogRecord> captured;
  SetLogSink([&captured](const LogRecord& r) { captured.push_back(r); });
  SSR_LOG(kInfo) << "dropped";
  SSR_LOG(kWarning) << "kept";
  ASSERT_EQ(captured.size(), 1u);
  EXPECT_EQ(captured[0].message, "kept");
}

TEST_F(LoggingTest, FormatRendersComponentAndFields) {
  LogRecord record;
  record.level = LogLevel::kWarning;
  record.component = "pool";
  record.message = "evicting";
  record.fields.emplace_back("page", "7");
  record.fields.emplace_back("reason", "cold cache");
  const std::string line = FormatLogRecord(record);
  EXPECT_NE(line.find("WARN"), std::string::npos);
  EXPECT_NE(line.find("[pool]"), std::string::npos);
  EXPECT_NE(line.find("evicting"), std::string::npos);
  EXPECT_NE(line.find("page=7"), std::string::npos);
  // Values containing spaces are quoted.
  EXPECT_NE(line.find("reason=\"cold cache\""), std::string::npos);
}

TEST_F(LoggingTest, FormatOmitsBracketsForUntaggedRecords) {
  LogRecord record;
  record.level = LogLevel::kInfo;
  record.message = "plain";
  const std::string line = FormatLogRecord(record);
  EXPECT_EQ(line.find('['), std::string::npos);
}

// The satellite fix under test: streamed arguments must NOT be evaluated
// when the level is below the threshold.
int EvaluationCounter(int* counter) {
  ++*counter;
  return *counter;
}

TEST_F(LoggingTest, DisabledLevelSkipsArgumentEvaluation) {
  SetLogLevel(LogLevel::kError);
  int evaluations = 0;
  SSR_LOG(kDebug) << "n=" << EvaluationCounter(&evaluations);
  SSR_LOG_C(kInfo, "test").With("n", 1) << EvaluationCounter(&evaluations);
  EXPECT_EQ(evaluations, 0);
  SSR_LOG(kError) << "n=" << EvaluationCounter(&evaluations);
  EXPECT_EQ(evaluations, 1);
}

}  // namespace
}  // namespace ssr
