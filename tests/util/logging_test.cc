#include "util/logging.h"

#include <gtest/gtest.h>

namespace ssr {
namespace {

class LoggingTest : public ::testing::Test {
 protected:
  void TearDown() override { SetLogLevel(LogLevel::kWarning); }
};

TEST_F(LoggingTest, LevelRoundTrips) {
  SetLogLevel(LogLevel::kDebug);
  EXPECT_EQ(GetLogLevel(), LogLevel::kDebug);
  SetLogLevel(LogLevel::kError);
  EXPECT_EQ(GetLogLevel(), LogLevel::kError);
}

TEST_F(LoggingTest, MacroStreamsWithoutCrashing) {
  SetLogLevel(LogLevel::kOff);
  SSR_LOG(kInfo) << "value " << 42 << " pi " << 3.14;  // dropped, but built
  SetLogLevel(LogLevel::kDebug);
  SSR_LOG(kDebug) << "emitted at debug";
}

TEST_F(LoggingTest, DefaultLevelIsWarning) {
  EXPECT_EQ(GetLogLevel(), LogLevel::kWarning);
}

}  // namespace
}  // namespace ssr
