#include "util/mathutil.h"

#include <cmath>

#include <gtest/gtest.h>

namespace ssr {
namespace {

TEST(MathUtilTest, NextPowerOfTwo) {
  EXPECT_EQ(NextPowerOfTwo(0), 1u);
  EXPECT_EQ(NextPowerOfTwo(1), 1u);
  EXPECT_EQ(NextPowerOfTwo(2), 2u);
  EXPECT_EQ(NextPowerOfTwo(3), 4u);
  EXPECT_EQ(NextPowerOfTwo(4), 4u);
  EXPECT_EQ(NextPowerOfTwo(1000), 1024u);
  EXPECT_EQ(NextPowerOfTwo((1ULL << 40) + 1), 1ULL << 41);
}

TEST(MathUtilTest, IsPowerOfTwo) {
  EXPECT_FALSE(IsPowerOfTwo(0));
  EXPECT_TRUE(IsPowerOfTwo(1));
  EXPECT_TRUE(IsPowerOfTwo(64));
  EXPECT_FALSE(IsPowerOfTwo(65));
}

TEST(MathUtilTest, FloorLog2) {
  EXPECT_EQ(FloorLog2(1), 0);
  EXPECT_EQ(FloorLog2(2), 1);
  EXPECT_EQ(FloorLog2(3), 1);
  EXPECT_EQ(FloorLog2(1024), 10);
  EXPECT_EQ(FloorLog2(1ULL << 63), 63);
}

TEST(MathUtilTest, Clamp) {
  EXPECT_EQ(Clamp(0.5, 0.0, 1.0), 0.5);
  EXPECT_EQ(Clamp(-1.0, 0.0, 1.0), 0.0);
  EXPECT_EQ(Clamp(2.0, 0.0, 1.0), 1.0);
}

TEST(MathUtilTest, IntegrateConstant) {
  const double v = IntegrateMidpoint([](double) { return 3.0; }, 0.0, 2.0);
  EXPECT_NEAR(v, 6.0, 1e-9);
}

TEST(MathUtilTest, IntegrateLinear) {
  // ∫_0^1 x dx = 0.5; the midpoint rule is exact for linear functions.
  const double v = IntegrateMidpoint([](double x) { return x; }, 0.0, 1.0);
  EXPECT_NEAR(v, 0.5, 1e-12);
}

TEST(MathUtilTest, IntegrateQuadraticConverges) {
  const double v =
      IntegrateMidpoint([](double x) { return x * x; }, 0.0, 1.0, 1024);
  EXPECT_NEAR(v, 1.0 / 3.0, 1e-6);
}

TEST(MathUtilTest, IntegrateEmptyRangeIsZero) {
  EXPECT_EQ(IntegrateMidpoint([](double) { return 1.0; }, 1.0, 1.0), 0.0);
  EXPECT_EQ(IntegrateMidpoint([](double) { return 1.0; }, 2.0, 1.0), 0.0);
}

TEST(MathUtilTest, ChernoffBoundDecreasesWithN) {
  // Small n clamps to the trivial bound 1; past that the bound decays.
  const double b1 = ChernoffTwoSidedBound(100, 0.5, 0.2);
  const double b2 = ChernoffTwoSidedBound(1000, 0.5, 0.2);
  const double b3 = ChernoffTwoSidedBound(10000, 0.5, 0.2);
  EXPECT_GE(b1, b2);
  EXPECT_GT(b2, b3);
  EXPECT_LE(b1, 1.0);
  EXPECT_GE(b3, 0.0);
}

TEST(MathUtilTest, MinHashesForAccuracyMonotonicInEps) {
  const std::size_t loose = MinHashesForAccuracy(0.5, 0.2, 0.05);
  const std::size_t tight = MinHashesForAccuracy(0.5, 0.05, 0.05);
  EXPECT_LT(loose, tight);
  EXPECT_GE(loose, 1u);
}

TEST(MathUtilTest, BinomialTailBoundaryCases) {
  EXPECT_EQ(BinomialUpperTail(10, 0.5, 0), 1.0);
  EXPECT_EQ(BinomialUpperTail(10, 0.5, 11), 0.0);
  EXPECT_EQ(BinomialUpperTail(10, 0.0, 1), 0.0);
  EXPECT_EQ(BinomialUpperTail(10, 1.0, 10), 1.0);
}

TEST(MathUtilTest, BinomialTailMatchesSymmetry) {
  // For p=0.5 and odd n, P(X >= (n+1)/2) = 0.5 by symmetry.
  EXPECT_NEAR(BinomialUpperTail(11, 0.5, 6), 0.5, 1e-9);
}

TEST(MathUtilTest, BinomialTailAgainstDirectComputation) {
  // n = 4, p = 0.3: P(X >= 2) = 1 - P(0) - P(1)
  const double p0 = std::pow(0.7, 4);
  const double p1 = 4 * 0.3 * std::pow(0.7, 3);
  EXPECT_NEAR(BinomialUpperTail(4, 0.3, 2), 1.0 - p0 - p1, 1e-12);
}

}  // namespace
}  // namespace ssr
