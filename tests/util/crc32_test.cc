#include "util/crc32.h"

#include <string>

#include <gtest/gtest.h>

namespace ssr {
namespace {

TEST(Crc32Test, KnownVectors) {
  // The IEEE 802.3 check value for "123456789".
  EXPECT_EQ(Crc32("123456789"), 0xcbf43926u);
  EXPECT_EQ(Crc32(""), 0u);
  EXPECT_EQ(Crc32("a"), 0xe8b7be43u);
}

TEST(Crc32Test, IncrementalMatchesOneShot) {
  const std::string data = "the quick brown fox jumps over the lazy dog";
  for (std::size_t split = 0; split <= data.size(); ++split) {
    std::uint32_t crc = 0;
    crc = Crc32Update(crc, data.data(), split);
    crc = Crc32Update(crc, data.data() + split, data.size() - split);
    EXPECT_EQ(crc, Crc32(data)) << "split at " << split;
  }
}

TEST(Crc32Test, SingleBitFlipChangesChecksum) {
  std::string data(512, '\0');
  const std::uint32_t clean = Crc32(data);
  for (std::size_t bit : {std::size_t{0}, std::size_t{7}, std::size_t{2048},
                          data.size() * 8 - 1}) {
    std::string flipped = data;
    flipped[bit / 8] ^= static_cast<char>(1u << (bit % 8));
    EXPECT_NE(Crc32(flipped), clean) << "bit " << bit;
  }
}

TEST(Crc32Test, DistinguishesPermutations) {
  EXPECT_NE(Crc32("ab"), Crc32("ba"));
}

}  // namespace
}  // namespace ssr
