#include "util/dictionary.h"

#include <gtest/gtest.h>

#include "util/set_ops.h"

namespace ssr {
namespace {

TEST(DictionaryTest, InternAssignsDenseIds) {
  Dictionary dict;
  EXPECT_EQ(dict.Intern("a"), 0u);
  EXPECT_EQ(dict.Intern("b"), 1u);
  EXPECT_EQ(dict.Intern("a"), 0u);  // idempotent
  EXPECT_EQ(dict.size(), 2u);
}

TEST(DictionaryTest, LookupFindsInternedOnly) {
  Dictionary dict;
  dict.Intern("x");
  auto found = dict.Lookup("x");
  ASSERT_TRUE(found.ok());
  EXPECT_EQ(found.value(), 0u);
  EXPECT_TRUE(dict.Lookup("y").status().IsNotFound());
}

TEST(DictionaryTest, ResolveRoundTrips) {
  Dictionary dict;
  const ElementId id = dict.Intern("http://example.com/page");
  auto token = dict.Resolve(id);
  ASSERT_TRUE(token.ok());
  EXPECT_EQ(token.value(), "http://example.com/page");
  EXPECT_TRUE(dict.Resolve(99).status().IsNotFound());
}

TEST(DictionaryTest, InternSetNormalizes) {
  Dictionary dict;
  const ElementSet set = dict.InternSet({"c", "a", "b", "a"});
  EXPECT_EQ(set.size(), 3u);
  EXPECT_TRUE(IsNormalizedSet(set));
}

TEST(DictionaryTest, EmptyTokenIsValid) {
  Dictionary dict;
  const ElementId id = dict.Intern("");
  EXPECT_EQ(dict.Resolve(id).value(), "");
}

TEST(DictionaryTest, ManyTokensStayConsistent) {
  Dictionary dict;
  for (int i = 0; i < 1000; ++i) {
    dict.Intern("token-" + std::to_string(i));
  }
  EXPECT_EQ(dict.size(), 1000u);
  for (int i = 0; i < 1000; ++i) {
    const std::string token = "token-" + std::to_string(i);
    auto id = dict.Lookup(token);
    ASSERT_TRUE(id.ok());
    EXPECT_EQ(dict.Resolve(id.value()).value(), token);
  }
}

}  // namespace
}  // namespace ssr
