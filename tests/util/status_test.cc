#include "util/status.h"

#include <gtest/gtest.h>

namespace ssr {
namespace {

TEST(StatusTest, DefaultIsOk) {
  Status s;
  EXPECT_TRUE(s.ok());
  EXPECT_EQ(s.code(), Status::Code::kOk);
  EXPECT_EQ(s.ToString(), "OK");
}

TEST(StatusTest, NamedConstructorsSetCodeAndMessage) {
  struct Case {
    Status status;
    Status::Code code;
  };
  const Case cases[] = {
      {Status::InvalidArgument("a"), Status::Code::kInvalidArgument},
      {Status::NotFound("b"), Status::Code::kNotFound},
      {Status::OutOfRange("c"), Status::Code::kOutOfRange},
      {Status::AlreadyExists("d"), Status::Code::kAlreadyExists},
      {Status::FailedPrecondition("e"), Status::Code::kFailedPrecondition},
      {Status::ResourceExhausted("f"), Status::Code::kResourceExhausted},
      {Status::Internal("g"), Status::Code::kInternal},
      {Status::NotSupported("h"), Status::Code::kNotSupported},
      {Status::Corruption("i"), Status::Code::kCorruption},
      {Status::DataLoss("j"), Status::Code::kDataLoss},
      {Status::Unavailable("k"), Status::Code::kUnavailable},
  };
  for (const auto& c : cases) {
    EXPECT_FALSE(c.status.ok());
    EXPECT_EQ(c.status.code(), c.code);
    EXPECT_FALSE(c.status.message().empty());
  }
}

TEST(StatusTest, PredicatesMatchCode) {
  EXPECT_TRUE(Status::NotFound("x").IsNotFound());
  EXPECT_FALSE(Status::NotFound("x").IsInvalidArgument());
  EXPECT_TRUE(Status::InvalidArgument("x").IsInvalidArgument());
  EXPECT_TRUE(Status::Corruption("x").IsCorruption());
  EXPECT_TRUE(Status::AlreadyExists("x").IsAlreadyExists());
  EXPECT_TRUE(Status::FailedPrecondition("x").IsFailedPrecondition());
  EXPECT_TRUE(Status::ResourceExhausted("x").IsResourceExhausted());
  EXPECT_TRUE(Status::Internal("x").IsInternal());
  EXPECT_TRUE(Status::NotSupported("x").IsNotSupported());
  EXPECT_TRUE(Status::OutOfRange("x").IsOutOfRange());
  EXPECT_TRUE(Status::DataLoss("x").IsDataLoss());
  EXPECT_FALSE(Status::DataLoss("x").IsCorruption());
  EXPECT_TRUE(Status::Unavailable("x").IsUnavailable());
  EXPECT_FALSE(Status::Unavailable("x").IsInternal());
}

TEST(StatusTest, RobustnessCodeNames) {
  EXPECT_EQ(Status::DataLoss("truncated").ToString(), "DataLoss: truncated");
  EXPECT_EQ(Status::Unavailable("retry me").ToString(),
            "Unavailable: retry me");
}

TEST(StatusTest, ToStringIncludesCodeNameAndMessage) {
  const Status s = Status::NotFound("missing sid 42");
  EXPECT_EQ(s.ToString(), "NotFound: missing sid 42");
}

TEST(StatusTest, CodeNamesAreDistinct) {
  EXPECT_NE(StatusCodeName(Status::Code::kNotFound),
            StatusCodeName(Status::Code::kCorruption));
  EXPECT_EQ(StatusCodeName(Status::Code::kOk), "OK");
}

Status FailsThenPropagates(bool fail) {
  SSR_RETURN_IF_ERROR(fail ? Status::Internal("inner") : Status::OK());
  return Status::NotFound("outer");
}

TEST(StatusTest, ReturnIfErrorMacroPropagates) {
  EXPECT_TRUE(FailsThenPropagates(true).IsInternal());
  EXPECT_TRUE(FailsThenPropagates(false).IsNotFound());
}

}  // namespace
}  // namespace ssr
