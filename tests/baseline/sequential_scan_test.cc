#include "baseline/sequential_scan.h"

#include <gtest/gtest.h>

#include "baseline/exact_evaluator.h"
#include "util/random.h"
#include "util/set_ops.h"

namespace ssr {
namespace {

SetCollection RandomCollection(std::size_t n, std::uint64_t seed) {
  SetCollection sets;
  Rng rng(seed);
  for (std::size_t i = 0; i < n; ++i) {
    ElementSet s;
    const std::size_t size = 5 + rng.Uniform(40);
    for (std::size_t j = 0; j < size; ++j) s.push_back(rng.Uniform(2000));
    NormalizeSet(s);
    if (s.empty()) s.push_back(1);
    sets.push_back(s);
  }
  return sets;
}

TEST(SequentialScanTest, ValidatesArguments) {
  SetStore store;
  ASSERT_TRUE(store.Add({1, 2}).ok());
  EXPECT_FALSE(SequentialScanQuery(store, {1, 2}, 0.8, 0.2).ok());
  EXPECT_FALSE(SequentialScanQuery(store, {2, 1}, 0.2, 0.8).ok());
}

TEST(SequentialScanTest, MatchesExactEvaluator) {
  SetCollection sets = RandomCollection(200, 7);
  SetStore store;
  for (const auto& s : sets) ASSERT_TRUE(store.Add(s).ok());
  ExactEvaluator exact(sets);
  Rng rng(8);
  for (int t = 0; t < 15; ++t) {
    const ElementSet& q = sets[rng.Uniform(sets.size())];
    const double s1 = rng.NextDouble() * 0.5;
    const double s2 = s1 + rng.NextDouble() * (1.0 - s1);
    auto scan = SequentialScanQuery(store, q, s1, s2);
    ASSERT_TRUE(scan.ok());
    EXPECT_EQ(scan->sids, exact.Query(q, s1, s2));
  }
}

TEST(SequentialScanTest, ExaminesEverySetAndChargesAllPages) {
  SetCollection sets = RandomCollection(300, 9);
  SetStore store;
  for (const auto& s : sets) ASSERT_TRUE(store.Add(s).ok());
  store.ResetIoAccounting();
  auto scan = SequentialScanQuery(store, sets[0], 0.9, 1.0);
  ASSERT_TRUE(scan.ok());
  EXPECT_EQ(scan->stats.sets_examined, 300u);
  EXPECT_EQ(scan->stats.io.sequential_reads, store.num_pages());
  EXPECT_EQ(scan->stats.io.random_reads, 0u);
  EXPECT_GT(scan->stats.io_seconds, 0.0);
}

TEST(SequentialScanTest, FullRangeReturnsEverything) {
  SetCollection sets = RandomCollection(50, 10);
  SetStore store;
  for (const auto& s : sets) ASSERT_TRUE(store.Add(s).ok());
  auto scan = SequentialScanQuery(store, sets[0], 0.0, 1.0);
  ASSERT_TRUE(scan.ok());
  EXPECT_EQ(scan->sids.size(), 50u);
}

TEST(SequentialScanTest, SkipsDeletedSets) {
  SetCollection sets = RandomCollection(20, 11);
  SetStore store;
  for (const auto& s : sets) ASSERT_TRUE(store.Add(s).ok());
  ASSERT_TRUE(store.Delete(3).ok());
  auto scan = SequentialScanQuery(store, sets[3], 0.0, 1.0);
  ASSERT_TRUE(scan.ok());
  EXPECT_FALSE(std::binary_search(scan->sids.begin(), scan->sids.end(),
                                  SetId{3}));
  EXPECT_EQ(scan->stats.sets_examined, 19u);
}

TEST(SequentialScanTest, CrossoverBoundShape) {
  // |Q| < |S| * a / rtn: more sets or bigger sets raise the bound; a larger
  // random/sequential ratio lowers it.
  SetStoreOptions options;
  SetStore store(options);
  for (int i = 0; i < 100; ++i) {
    ElementSet s;
    for (ElementId e = 0; e < 120; ++e) s.push_back(i * 1000 + e);
    ASSERT_TRUE(store.Add(s).ok());
  }
  const double bound = ScanCrossoverResultSize(store);
  EXPECT_GT(bound, 0.0);
  EXPECT_LT(bound, 100.0);
  // Doubling rtn halves the bound.
  SetStoreOptions fast_random = options;
  fast_random.io.random_multiplier = 4.0;
  SetStore store2(fast_random);
  for (int i = 0; i < 100; ++i) {
    ElementSet s;
    for (ElementId e = 0; e < 120; ++e) s.push_back(i * 1000 + e);
    ASSERT_TRUE(store2.Add(s).ok());
  }
  EXPECT_NEAR(ScanCrossoverResultSize(store2), 2.0 * bound, 1e-9);
}

}  // namespace
}  // namespace ssr
