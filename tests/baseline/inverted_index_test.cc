#include "baseline/inverted_index.h"

#include <gtest/gtest.h>

#include "baseline/exact_evaluator.h"
#include "util/random.h"
#include "util/set_ops.h"

namespace ssr {
namespace {

SetCollection RandomCollection(std::size_t n, std::uint64_t seed) {
  SetCollection sets;
  Rng rng(seed);
  for (std::size_t i = 0; i < n; ++i) {
    ElementSet s;
    const std::size_t size = 3 + rng.Uniform(25);
    for (std::size_t j = 0; j < size; ++j) s.push_back(rng.Uniform(500));
    NormalizeSet(s);
    if (s.empty()) s.push_back(1);
    sets.push_back(s);
  }
  return sets;
}

TEST(InvertedIndexTest, VocabularyAndPostings) {
  SetCollection sets = {{1, 2}, {2, 3}, {3}};
  InvertedIndex index(sets);
  EXPECT_EQ(index.vocabulary_size(), 3u);
  EXPECT_EQ(index.total_postings(), 5u);
}

TEST(InvertedIndexTest, MatchesExactEvaluatorOnPositiveRanges) {
  SetCollection sets = RandomCollection(300, 21);
  InvertedIndex index(sets);
  ExactEvaluator exact(sets);
  Rng rng(22);
  for (int t = 0; t < 25; ++t) {
    const ElementSet& q = sets[rng.Uniform(sets.size())];
    const double s1 = 0.05 + rng.NextDouble() * 0.6;
    const double s2 = s1 + rng.NextDouble() * (1.0 - s1);
    EXPECT_EQ(index.Query(q, s1, s2), exact.Query(q, s1, s2))
        << "range [" << s1 << ", " << s2 << "]";
  }
}

TEST(InvertedIndexTest, ZeroLowerBoundIncludesDisjointSets) {
  SetCollection sets = {{1, 2}, {50, 60}};
  InvertedIndex index(sets);
  const auto result = index.Query({1, 2}, 0.0, 0.3);
  ASSERT_EQ(result.size(), 1u);
  EXPECT_EQ(result[0], 1u);  // the disjoint set, similarity 0
}

TEST(InvertedIndexTest, UnknownElementsYieldNothingForPositiveRange) {
  SetCollection sets = {{1, 2}, {3, 4}};
  InvertedIndex index(sets);
  EXPECT_TRUE(index.Query({100, 200}, 0.1, 1.0).empty());
}

TEST(InvertedIndexTest, ExactSelfMatch) {
  SetCollection sets = RandomCollection(50, 23);
  InvertedIndex index(sets);
  for (SetId sid = 0; sid < 10; ++sid) {
    const auto result = index.Query(sets[sid], 0.999, 1.0);
    EXPECT_TRUE(std::binary_search(result.begin(), result.end(), sid));
  }
}

}  // namespace
}  // namespace ssr
