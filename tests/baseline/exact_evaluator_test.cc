#include "baseline/exact_evaluator.h"

#include <gtest/gtest.h>

#include "util/set_ops.h"

namespace ssr {
namespace {

TEST(ExactEvaluatorTest, RangeEndpointsInclusive) {
  SetCollection sets = {
      {1, 2, 3, 4},      // sid 0: sim with query {1,2,3,4} = 1.0
      {1, 2, 3, 4, 5, 6, 7, 8},  // sid 1: sim = 0.5
      {1, 2},            // sid 2: sim = 0.5
      {9, 10},           // sid 3: sim = 0.0
  };
  ExactEvaluator exact(sets);
  const ElementSet q{1, 2, 3, 4};
  EXPECT_EQ(exact.Query(q, 0.5, 0.5), (std::vector<SetId>{1, 2}));
  EXPECT_EQ(exact.Query(q, 0.5, 1.0), (std::vector<SetId>{0, 1, 2}));
  EXPECT_EQ(exact.Query(q, 0.0, 0.0), (std::vector<SetId>{3}));
  EXPECT_EQ(exact.Query(q, 0.0, 1.0).size(), 4u);
}

TEST(ExactEvaluatorTest, SimilarityToMatchesJaccard) {
  SetCollection sets = {{1, 2, 3}, {2, 3, 4}};
  ExactEvaluator exact(sets);
  EXPECT_DOUBLE_EQ(exact.SimilarityTo(0, {2, 3, 4}), 0.5);
  EXPECT_DOUBLE_EQ(exact.SimilarityTo(1, {2, 3, 4}), 1.0);
}

TEST(ExactEvaluatorTest, SimilarPairsThresholded) {
  SetCollection sets = {{1, 2, 3}, {1, 2, 3}, {1, 2, 9}, {50, 60}};
  ExactEvaluator exact(sets);
  auto pairs = exact.SimilarPairs(0.9);
  ASSERT_EQ(pairs.size(), 1u);
  EXPECT_EQ(std::get<0>(pairs[0]), 0u);
  EXPECT_EQ(std::get<1>(pairs[0]), 1u);
  EXPECT_DOUBLE_EQ(std::get<2>(pairs[0]), 1.0);
  EXPECT_EQ(exact.SimilarPairs(0.4).size(), 3u);  // plus the two 0.5 pairs
}

TEST(ExactEvaluatorTest, EmptyRangeYieldsNothingAboveMax) {
  SetCollection sets = {{1}, {2}};
  ExactEvaluator exact(sets);
  EXPECT_TRUE(exact.Query({1}, 0.5, 0.9).empty());
}

}  // namespace
}  // namespace ssr
