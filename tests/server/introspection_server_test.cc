// Introspection-server tests: the endpoint surface over real localhost
// HTTP (scrape conformance, JSON health, statusz/tracez/varz), the
// ISSUE-pinned acceptance path — /healthz flips healthy -> degraded when a
// shard is quarantined by the snapshot salvage path — the 503-on-unhealthy
// contract, socketless Handle() dispatch, and a TSan-facing test that
// scrapes /metrics while worker threads mutate the registry (the
// snapshot-consistent renderer must never emit a torn histogram family).

#include "server/introspection_server.h"

#include <atomic>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "obs/export.h"
#include "obs/exposition.h"
#include "obs/metrics.h"
#include "server/http.h"
#include "shard/sharded_index.h"
#include "util/random.h"
#include "util/set_ops.h"

namespace ssr {
namespace server {
namespace {

SetCollection MakeSets(std::size_t n, std::uint64_t seed = 4611) {
  SetCollection sets;
  Rng rng(seed);
  for (std::size_t i = 0; i < n; ++i) {
    ElementSet s;
    const std::size_t size = 10 + rng.Uniform(60);
    for (std::size_t j = 0; j < size; ++j) s.push_back(rng.Uniform(6000));
    NormalizeSet(s);
    if (s.empty()) s.push_back(1);
    sets.push_back(s);
  }
  return sets;
}

IndexLayout TestLayout() {
  IndexLayout layout;
  layout.delta = 0.4;
  layout.points = {{0.15, FilterKind::kDissimilarity, 8, 0},
                   {0.4, FilterKind::kDissimilarity, 8, 0},
                   {0.4, FilterKind::kSimilarity, 8, 0},
                   {0.75, FilterKind::kSimilarity, 8, 0}};
  return layout;
}

shard::ShardedIndexOptions TestOptions(std::uint32_t num_shards) {
  shard::ShardedIndexOptions options;
  options.num_shards = num_shards;
  options.index.embedding.minhash.num_hashes = 80;
  options.index.embedding.minhash.seed = 777;
  options.index.seed = 4242;
  return options;
}

// Flips bytes inside shard `s`'s store-section payload so only that shard
// fails CRC on load — the same corruption the sharded-index salvage tests
// inject.
std::string CorruptShardStore(std::string blob, std::uint32_t s) {
  std::string name = "shard";
  name += std::to_string(s);
  name += "_store";
  const std::size_t name_pos = blob.find(name);
  EXPECT_NE(name_pos, std::string::npos);
  const std::size_t payload = name_pos + name.size() + 8 + 4;
  for (std::size_t i = 0; i < 16 && payload + i < blob.size(); ++i) {
    blob[payload + i] = static_cast<char>(blob[payload + i] ^ 0x5a);
  }
  return blob;
}

IntrospectionServerOptions ManualTickOptions() {
  IntrospectionServerOptions options;
  options.tick_interval_seconds = 0.0;  // tests drive Tick() themselves
  return options;
}

std::string HealthNeedle(const char* status) {
  // JsonWriter output is compact: `"status":"healthy"`.
  std::string needle = "\"status\":\"";
  needle += status;
  needle += "\"";
  return needle;
}

TEST(IntrospectionServerTest, ServesEveryEndpointOverRealHttp) {
  obs::MetricsRegistry registry;
  registry.GetCounter("ssr_index_queries_total", "index/0")->Add(3);
  obs::Histogram* lat = registry.GetHistogram(
      "ssr_index_query_latency_micros", "index/0", obs::LatencyBoundsMicros());
  lat->Observe(42.0);

  IntrospectionServer server(ManualTickOptions(), &registry);
  ASSERT_TRUE(server.Start().ok());
  ASSERT_TRUE(server.running());
  ASSERT_NE(server.port(), 0);
  server.Tick(server.NowSeconds());

  const HttpGetResult metrics =
      HttpGet("127.0.0.1", server.port(), "/metrics");
  ASSERT_TRUE(metrics.ok) << metrics.error;
  EXPECT_EQ(metrics.status, 200);
  const auto issues = obs::ValidateExposition(metrics.body);
  EXPECT_TRUE(issues.empty()) << obs::FormatIssues(issues);
  EXPECT_NE(metrics.body.find("# HELP ssr_index_queries_total"),
            std::string::npos);
  EXPECT_NE(metrics.body.find("ssr_health_verdict"), std::string::npos);

  const HttpGetResult healthz =
      HttpGet("127.0.0.1", server.port(), "/healthz");
  ASSERT_TRUE(healthz.ok) << healthz.error;
  EXPECT_EQ(healthz.status, 200);
  EXPECT_NE(healthz.body.find(HealthNeedle("healthy")), std::string::npos)
      << healthz.body;

  for (const char* path : {"/statusz", "/tracez", "/tracez?limit=4",
                           "/varz"}) {
    const HttpGetResult r = HttpGet("127.0.0.1", server.port(), path);
    ASSERT_TRUE(r.ok) << path << ": " << r.error;
    EXPECT_EQ(r.status, 200) << path;
    EXPECT_FALSE(r.body.empty()) << path;
  }

  const HttpGetResult missing =
      HttpGet("127.0.0.1", server.port(), "/nope");
  ASSERT_TRUE(missing.ok) << missing.error;
  EXPECT_EQ(missing.status, 404);

  EXPECT_GE(server.requests_served(), 7u);
  server.Stop();
  EXPECT_FALSE(server.running());
  server.Stop();  // idempotent
}

// The ISSUE acceptance path: inject the PR-7 fault (a corrupted shard
// store section salvage-loaded into a quarantined shard) and verify the
// health verdict observed over HTTP flips healthy -> degraded, with the
// shard_quarantine reason attached, while the endpoint stays 200 (the
// process is degraded-but-serving, not down).
TEST(IntrospectionServerTest, HealthzFlipsWhenSalvageQuarantinesAShard) {
  const SetCollection sets = MakeSets(160);
  auto built = shard::ShardedSetSimilarityIndex::Build(sets, TestLayout(),
                                                       TestOptions(4));
  ASSERT_TRUE(built.ok());
  std::stringstream buf;
  ASSERT_TRUE(built->SaveTo(buf).ok());

  obs::MetricsRegistry registry;
  IntrospectionServer server(ManualTickOptions(), &registry);
  ASSERT_TRUE(server.Start().ok());

  StatusSources sources;
  sources.sharded_index = &*built;
  server.SetSources(sources);
  const HttpGetResult before =
      HttpGet("127.0.0.1", server.port(), "/healthz");
  ASSERT_TRUE(before.ok) << before.error;
  EXPECT_EQ(before.status, 200);
  EXPECT_NE(before.body.find(HealthNeedle("healthy")), std::string::npos)
      << before.body;

  RecoveryReport report;
  SnapshotLoadOptions salvage;
  salvage.salvage = true;
  salvage.report = &report;
  std::istringstream damaged(CorruptShardStore(buf.str(), 1));
  auto loaded = shard::ShardedSetSimilarityIndex::Load(damaged,
                                                       TestOptions(0), salvage);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  ASSERT_TRUE(report.salvaged);
  ASSERT_TRUE(loaded->shard_degraded(1));

  sources.sharded_index = &*loaded;
  sources.last_recovery = &report;
  server.SetSources(sources);
  const HttpGetResult after =
      HttpGet("127.0.0.1", server.port(), "/healthz");
  ASSERT_TRUE(after.ok) << after.error;
  EXPECT_EQ(after.status, 200) << "degraded still serves";
  EXPECT_NE(after.body.find(HealthNeedle("degraded")), std::string::npos)
      << after.body;
  EXPECT_NE(after.body.find("shard_quarantine"), std::string::npos)
      << after.body;

  // /statusz carries the per-shard flags and the recovery report.
  const HttpGetResult statusz =
      HttpGet("127.0.0.1", server.port(), "/statusz");
  ASSERT_TRUE(statusz.ok) << statusz.error;
  EXPECT_NE(statusz.body.find("\"degraded\":true"), std::string::npos)
      << statusz.body;

  // Replacing the damaged index with a healthy one (the operational
  // "rebuild the shard" recovery) flips the verdict back. Note a salvaged
  // shard stays degraded until its index exists again — clearing the flag
  // alone cannot heal it.
  sources.sharded_index = &*built;
  server.SetSources(sources);
  const HttpGetResult healed =
      HttpGet("127.0.0.1", server.port(), "/healthz");
  ASSERT_TRUE(healed.ok) << healed.error;
  EXPECT_NE(healed.body.find(HealthNeedle("healthy")), std::string::npos)
      << healed.body;
  server.Stop();
}

TEST(IntrospectionServerTest, UnhealthyAnswersServiceUnavailable) {
  obs::MetricsRegistry registry;
  IntrospectionServer server(ManualTickOptions(), &registry);
  ASSERT_TRUE(server.Start().ok());

  // Burn the entire error budget: at the default 99.9% availability
  // target, all-errors traffic is a fast burn far past the page threshold.
  server.slo_tracker().RecordOutcomes(1000, 1000, server.NowSeconds());
  const HttpGetResult r = HttpGet("127.0.0.1", server.port(), "/healthz");
  ASSERT_TRUE(r.ok) << r.error;
  EXPECT_EQ(r.status, 503);
  EXPECT_NE(r.body.find(HealthNeedle("unhealthy")), std::string::npos)
      << r.body;
  EXPECT_NE(r.body.find("slo_burn_fast"), std::string::npos) << r.body;
  server.Stop();
}

TEST(IntrospectionServerTest, SocketlessHandleDispatch) {
  obs::MetricsRegistry registry;
  IntrospectionServer server(ManualTickOptions(), &registry);

  HttpRequest request;
  request.method = "GET";
  request.path = "/metrics";
  EXPECT_EQ(server.Handle(request).status, 200);
  request.path = "/unknown";
  EXPECT_EQ(server.Handle(request).status, 404);

  // /tracez caps the limit parameter at the configured maximum and falls
  // back to the default on garbage.
  request.path = "/tracez";
  request.query["limit"] = "999999";
  EXPECT_EQ(server.Handle(request).status, 200);
  request.query["limit"] = "garbage";
  EXPECT_EQ(server.Handle(request).status, 200);
}

TEST(IntrospectionServerTest, TickPublishesSloAndHealthGauges) {
  obs::MetricsRegistry registry;
  obs::Histogram* lat = registry.GetHistogram(
      "ssr_router_query_latency_micros", "router", obs::LatencyBoundsMicros());
  obs::Counter* total = registry.GetCounter("ssr_router_queries_total");
  obs::Counter* errors =
      registry.GetCounter("ssr_router_partial_answers_total");

  IntrospectionServer server(ManualTickOptions(), &registry);
  StatusSources sources;
  sources.slo_latency = lat;
  sources.slo_total = total;
  sources.slo_errors = errors;
  server.SetSources(sources);

  server.Tick(0.0);  // baseline capture
  for (int i = 0; i < 50; ++i) {
    lat->Observe(300.0);
    total->Increment();
  }
  errors->Add(5);
  server.Tick(1.0);

  const obs::SloWindowReport r =
      server.slo_tracker().Report(obs::kSloWindowMinute, 1.0);
  EXPECT_EQ(r.latency_count, 50u);
  EXPECT_EQ(r.total, 50u);
  EXPECT_EQ(r.errors, 5u);
  EXPECT_GT(r.p50_micros, 0.0);

  // The republished gauges land in the registry and render on /metrics.
  const std::string text = obs::PrometheusText(registry);
  EXPECT_NE(text.find("ssr_slo_burn_rate"), std::string::npos);
  EXPECT_NE(text.find("ssr_health_verdict"), std::string::npos);
  const auto issues = obs::ValidateExposition(text);
  EXPECT_TRUE(issues.empty()) << obs::FormatIssues(issues);
}

// TSan-facing: scrape /metrics continuously while worker threads mutate
// the same registry. Every scrape must validate — in particular no torn
// histogram family (`_count` != the +Inf bucket), which is exactly what a
// non-snapshot renderer produces under concurrent Observe calls.
TEST(IntrospectionServerTest, ConcurrentScrapesStayConsistent) {
  obs::MetricsRegistry registry;
  IntrospectionServer server(ManualTickOptions(), &registry);

  std::atomic<bool> stop{false};
  std::vector<std::thread> writers;
  for (int w = 0; w < 3; ++w) {
    writers.emplace_back([&registry, &stop, w]() {
      const std::string scope = "shard/" + std::to_string(w);
      obs::Histogram* h = registry.GetHistogram(
          "ssr_index_query_latency_micros", scope,
          obs::LatencyBoundsMicros());
      obs::Counter* c =
          registry.GetCounter("ssr_index_queries_total", scope);
      std::uint64_t i = 0;
      while (!stop.load(std::memory_order_relaxed)) {
        h->Observe(static_cast<double>((i * 37) % 5000));
        c->Increment();
        ++i;
      }
    });
  }

  HttpRequest scrape;
  scrape.method = "GET";
  scrape.path = "/metrics";
  int validated = 0;
  for (int round = 0; round < 40; ++round) {
    const HttpResponse response = server.Handle(scrape);
    ASSERT_EQ(response.status, 200);
    const auto issues = obs::ValidateExposition(response.body);
    ASSERT_TRUE(issues.empty())
        << "scrape " << round << " torn:\n" << obs::FormatIssues(issues);
    ++validated;
  }
  stop.store(true, std::memory_order_relaxed);
  for (std::thread& t : writers) t.join();
  EXPECT_EQ(validated, 40);
}

// Stands up real components against the process-wide registry (a sharded
// index serving queries, plus the server's own instruments) and then
// sweeps every registered entry: each must carry a # HELP entry and a
// grammar-valid name, or /metrics would ship a nonconformant family.
// ctest runs each discovered test in its own process, so the test
// populates the registry itself rather than relying on siblings.
TEST(IntrospectionServerTest, DefaultRegistryMetricsAllConform) {
  const SetCollection sets = MakeSets(60);
  auto built = shard::ShardedSetSimilarityIndex::Build(sets, TestLayout(),
                                                       TestOptions(2));
  ASSERT_TRUE(built.ok());
  ASSERT_TRUE(built->Query(sets[0], 0.5, 1.0).ok());
  IntrospectionServer server(ManualTickOptions());  // default registry
  server.Tick(0.0);  // republishes the ssr_slo_* / ssr_health_verdict gauges

  const auto entries = obs::MetricsRegistry::Default().Entries();
  EXPECT_FALSE(entries.empty());
  for (const auto& entry : entries) {
    EXPECT_TRUE(obs::IsValidMetricName(entry.name)) << entry.name;
    EXPECT_NE(obs::MetricHelp(entry.name), nullptr)
        << entry.name << " has no # HELP entry in obs/exposition.cc";
  }
}

}  // namespace
}  // namespace server
}  // namespace ssr
