// HTTP plumbing tests: request-head parsing (target/path/query split,
// lowercased headers, malformed rejections), the head-complete predicate
// the read loop uses, and response serialization.

#include "server/http.h"

#include <string>

#include <gtest/gtest.h>

namespace ssr {
namespace server {
namespace {

TEST(HttpTest, ParsesARequestHead) {
  HttpRequest request;
  ASSERT_TRUE(ParseRequest(
      "GET /tracez?limit=16&fmt=json HTTP/1.1\r\n"
      "Host: 127.0.0.1:8080\r\n"
      "User-Agent: curl/8.0\r\n"
      "\r\n",
      &request));
  EXPECT_EQ(request.method, "GET");
  EXPECT_EQ(request.target, "/tracez?limit=16&fmt=json");
  EXPECT_EQ(request.path, "/tracez");
  EXPECT_EQ(request.version, "HTTP/1.1");
  EXPECT_EQ(request.query.at("limit"), "16");
  EXPECT_EQ(request.query.at("fmt"), "json");
  EXPECT_EQ(request.headers.at("host"), "127.0.0.1:8080");
  EXPECT_EQ(request.headers.at("user-agent"), "curl/8.0");
}

TEST(HttpTest, BareLfLineEndingsAreAccepted) {
  HttpRequest request;
  ASSERT_TRUE(ParseRequest("GET /metrics HTTP/1.1\nHost: x\n\n", &request));
  EXPECT_EQ(request.path, "/metrics");
  EXPECT_TRUE(request.query.empty());
}

TEST(HttpTest, RejectsMalformedHeads) {
  HttpRequest request;
  EXPECT_FALSE(ParseRequest("", &request));
  EXPECT_FALSE(ParseRequest("GET\r\n\r\n", &request));
  EXPECT_FALSE(ParseRequest("GET /x\r\n\r\n", &request));  // no version
  EXPECT_FALSE(ParseRequest("GET /x NOTHTTP\r\n\r\n", &request));
  EXPECT_FALSE(ParseRequest("GET /x HTTP/1.1\r\nbadheader\r\n\r\n",
                            &request));
}

TEST(HttpTest, BytesPastTheBlankLineAreIgnored) {
  HttpRequest request;
  ASSERT_TRUE(ParseRequest(
      "GET /metrics HTTP/1.1\r\n\r\nleftover body bytes", &request));
  EXPECT_EQ(request.path, "/metrics");
}

TEST(HttpTest, RequestHeadCompletePredicate) {
  EXPECT_FALSE(RequestHeadComplete(""));
  EXPECT_FALSE(RequestHeadComplete("GET / HTTP/1.1\r\nHost: x\r\n"));
  EXPECT_TRUE(RequestHeadComplete("GET / HTTP/1.1\r\nHost: x\r\n\r\n"));
  EXPECT_TRUE(RequestHeadComplete("GET / HTTP/1.1\n\n"));
}

TEST(HttpTest, SerializesAResponse) {
  HttpResponse response;
  response.status = 200;
  response.content_type = "text/plain; version=0.0.4";
  response.body = "hello\n";
  const std::string wire = SerializeResponse(response);
  EXPECT_EQ(wire.find("HTTP/1.1 200 OK\r\n"), 0u);
  EXPECT_NE(wire.find("Content-Type: text/plain; version=0.0.4\r\n"),
            std::string::npos);
  EXPECT_NE(wire.find("Content-Length: 6\r\n"), std::string::npos);
  EXPECT_NE(wire.find("Connection: close\r\n"), std::string::npos);
  EXPECT_EQ(wire.substr(wire.size() - 10), "\r\n\r\nhello\n");
}

TEST(HttpTest, StatusReasons) {
  EXPECT_STREQ(StatusReason(200), "OK");
  EXPECT_STREQ(StatusReason(400), "Bad Request");
  EXPECT_STREQ(StatusReason(404), "Not Found");
  EXPECT_STREQ(StatusReason(405), "Method Not Allowed");
  EXPECT_STREQ(StatusReason(503), "Service Unavailable");
  EXPECT_STREQ(StatusReason(299), "Unknown");
}

}  // namespace
}  // namespace server
}  // namespace ssr
