#include "fault/fault_injector.h"

#include <cstring>
#include <sstream>
#include <vector>

#include <gtest/gtest.h>

#include "util/serialize.h"

namespace ssr {
namespace fault {
namespace {

// Every test runs against the process-wide Default() injector (that is what
// the built-in sites consult), so each resets it on entry and exit. The
// whole suite is about faults firing, so it skips when the hooks are
// compiled out (-DSSR_FAULT_INJECTION=OFF).
class FaultInjectorTest : public ::testing::Test {
 protected:
  void SetUp() override {
    FaultInjector::Default().Reset();
#ifdef SSR_NO_FAULT_INJECTION
    GTEST_SKIP() << "built with SSR_NO_FAULT_INJECTION";
#endif
  }
  void TearDown() override { FaultInjector::Default().Reset(); }
};

TEST_F(FaultInjectorTest, DisabledInjectorNeverFires) {
  FaultInjector& fi = FaultInjector::Default();
  fi.Arm("t/site", FaultKind::kReadError, FaultSchedule::Always());
  EXPECT_FALSE(fi.enabled());
  for (int i = 0; i < 10; ++i) {
    EXPECT_FALSE(fi.Check("t/site").has_value());
  }
  EXPECT_EQ(fi.hits("t/site"), 0u);
  EXPECT_EQ(fi.total_fires(), 0u);
}

TEST_F(FaultInjectorTest, AlwaysScheduleFiresEveryHit) {
  FaultInjector& fi = FaultInjector::Default();
  fi.Enable(/*seed=*/1);
  fi.Arm("t/site", FaultKind::kWriteError, FaultSchedule::Always());
  for (int i = 0; i < 5; ++i) {
    auto kind = fi.Check("t/site");
    ASSERT_TRUE(kind.has_value());
    EXPECT_EQ(*kind, FaultKind::kWriteError);
  }
  EXPECT_EQ(fi.hits("t/site"), 5u);
  EXPECT_EQ(fi.fires("t/site"), 5u);
}

TEST_F(FaultInjectorTest, UnarmedSiteNeverFires) {
  FaultInjector& fi = FaultInjector::Default();
  fi.Enable(1);
  EXPECT_FALSE(fi.Check("t/other").has_value());
}

TEST_F(FaultInjectorTest, EveryNthFiresOnSchedule) {
  FaultInjector& fi = FaultInjector::Default();
  fi.Enable(1);
  fi.Arm("t/site", FaultKind::kReadError, FaultSchedule::EveryNth(3));
  std::vector<bool> fired;
  for (int i = 0; i < 9; ++i) fired.push_back(fi.Check("t/site").has_value());
  // Hits 3, 6, 9 fire (1-based count, n % 3 == 0).
  EXPECT_EQ(fired, (std::vector<bool>{false, false, true, false, false, true,
                                      false, false, true}));
}

TEST_F(FaultInjectorTest, OnceSkipsThenFiresExactlyOnce) {
  FaultInjector& fi = FaultInjector::Default();
  fi.Enable(1);
  fi.Arm("t/site", FaultKind::kTornWrite, FaultSchedule::Once(/*after_hits=*/2));
  EXPECT_FALSE(fi.Check("t/site").has_value());
  EXPECT_FALSE(fi.Check("t/site").has_value());
  EXPECT_TRUE(fi.Check("t/site").has_value());
  for (int i = 0; i < 5; ++i) {
    EXPECT_FALSE(fi.Check("t/site").has_value());  // one-shot disarmed
  }
  EXPECT_EQ(fi.fires("t/site"), 1u);
}

TEST_F(FaultInjectorTest, ProbabilityScheduleIsDeterministicUnderSeed) {
  FaultInjector& fi = FaultInjector::Default();
  const auto run = [&fi]() {
    fi.Reset();
    fi.Enable(/*seed=*/0xfeedULL);
    fi.Arm("t/site", FaultKind::kReadError,
           FaultSchedule::WithProbability(0.5));
    std::vector<bool> fired;
    for (int i = 0; i < 64; ++i) {
      fired.push_back(fi.Check("t/site").has_value());
    }
    return fired;
  };
  const auto first = run();
  const auto second = run();
  EXPECT_EQ(first, second);
  // Sanity: p=0.5 over 64 draws fires some but not all.
  std::size_t count = 0;
  for (bool b : first) count += b ? 1 : 0;
  EXPECT_GT(count, 8u);
  EXPECT_LT(count, 56u);
}

TEST_F(FaultInjectorTest, ProbabilityRoughlyMatchesRate) {
  FaultInjector& fi = FaultInjector::Default();
  // Rate bounds are loose enough to hold under any CI-matrix seed.
  fi.Enable(SeedFromEnv(42));
  fi.Arm("t/site", FaultKind::kReadError, FaultSchedule::WithProbability(0.1));
  std::size_t fires = 0;
  constexpr int kTrials = 5000;
  for (int i = 0; i < kTrials; ++i) {
    if (fi.Check("t/site").has_value()) ++fires;
  }
  const double rate = static_cast<double>(fires) / kTrials;
  EXPECT_GT(rate, 0.05);
  EXPECT_LT(rate, 0.15);
}

TEST_F(FaultInjectorTest, CheckStatusTranslatesIoErrorsToUnavailable) {
  FaultInjector& fi = FaultInjector::Default();
  fi.Enable(1);
  fi.Arm("t/site", FaultKind::kReadError, FaultSchedule::Always());
  EXPECT_TRUE(fi.CheckStatus("t/site").IsUnavailable());
  fi.Arm("t/site", FaultKind::kWriteError, FaultSchedule::Always());
  EXPECT_TRUE(fi.CheckStatus("t/site").IsUnavailable());
  EXPECT_TRUE(fi.CheckStatus("t/unarmed").ok());
}

TEST_F(FaultInjectorTest, DisarmStopsFiring) {
  FaultInjector& fi = FaultInjector::Default();
  fi.Enable(1);
  fi.Arm("t/site", FaultKind::kReadError, FaultSchedule::Always());
  EXPECT_TRUE(fi.Check("t/site").has_value());
  fi.Disarm("t/site");
  EXPECT_FALSE(fi.Check("t/site").has_value());
}

TEST_F(FaultInjectorTest, WriterFaultSiteProducesFailedStream) {
  FaultInjector& fi = FaultInjector::Default();
  fi.Enable(7);
  fi.Arm("t/wr", FaultKind::kWriteError, FaultSchedule::Always());
  std::ostringstream out;
  BinaryWriter writer(out, "t/wr");
  writer.WriteU64(42);
  EXPECT_FALSE(writer.ok());
}

TEST_F(FaultInjectorTest, TornWriteLeavesPrefix) {
  FaultInjector& fi = FaultInjector::Default();
  fi.Enable(7);
  fi.Arm("t/wr", FaultKind::kTornWrite, FaultSchedule::Always());
  std::ostringstream out;
  BinaryWriter writer(out, "t/wr");
  writer.WriteU64(0x1122334455667788ULL);
  EXPECT_FALSE(writer.ok());
  EXPECT_EQ(out.str().size(), 4u);  // half of the 8 bytes landed
}

TEST_F(FaultInjectorTest, BitFlipCorruptsExactlyOneBit) {
  FaultInjector& fi = FaultInjector::Default();
  fi.Enable(7);
  fi.Arm("t/wr", FaultKind::kBitFlip, FaultSchedule::Once());
  std::ostringstream out;
  BinaryWriter writer(out, "t/wr");
  const std::uint64_t value = 0xa5a5a5a5a5a5a5a5ULL;
  writer.WriteU64(value);
  ASSERT_TRUE(writer.ok());  // bit flips do not fail the stream
  const std::string bytes = out.str();
  ASSERT_EQ(bytes.size(), 8u);
  std::uint64_t read = 0;
  std::memcpy(&read, bytes.data(), 8);
  const std::uint64_t diff = read ^ value;
  EXPECT_NE(diff, 0u);
  EXPECT_EQ(diff & (diff - 1), 0u);  // exactly one bit set
}

TEST_F(FaultInjectorTest, ReaderFaultSiteSurfacesUnavailable) {
  FaultInjector& fi = FaultInjector::Default();
  fi.Enable(7);
  std::stringstream buf;
  BinaryWriter writer(buf);
  writer.WriteU64(99);
  fi.Arm("t/rd", FaultKind::kReadError, FaultSchedule::Always());
  BinaryReader reader(buf, "t/rd");
  std::uint64_t v = 0;
  EXPECT_TRUE(reader.ReadU64(&v).IsUnavailable());
}

TEST_F(FaultInjectorTest, LatencyFiresAreCountedAndNeverReturned) {
  FaultInjector& fi = FaultInjector::Default();
  fi.Enable(7);
  FaultSchedule schedule = FaultSchedule::Always();
  schedule.latency_micros = 10.0;
  fi.Arm("t/lat", FaultKind::kLatency, schedule);
  EXPECT_FALSE(fi.Check("t/lat").has_value());
  EXPECT_EQ(fi.fires("t/lat"), 1u);
}

}  // namespace
}  // namespace fault
}  // namespace ssr
