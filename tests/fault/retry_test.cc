#include "fault/retry.h"

#include <cstddef>

#include <gtest/gtest.h>

#include "util/result.h"
#include "util/status.h"

namespace ssr {
namespace fault {
namespace {

TEST(RetryTest, SucceedsImmediatelyWithoutRetry) {
  std::size_t calls = 0;
  Status s = RetryWithPolicy(RetryPolicy{}, [&]() {
    ++calls;
    return Status::OK();
  });
  EXPECT_TRUE(s.ok());
  EXPECT_EQ(calls, 1u);
}

TEST(RetryTest, RecoversAfterTransientFailures) {
  std::size_t calls = 0;
  Status s = RetryWithPolicy(RetryPolicy{}, [&]() {
    ++calls;
    return calls < 3 ? Status::Unavailable("blip") : Status::OK();
  });
  EXPECT_TRUE(s.ok());
  EXPECT_EQ(calls, 3u);
}

TEST(RetryTest, ExhaustsAtMaxAttempts) {
  std::size_t calls = 0;
  RetryPolicy policy;
  policy.max_attempts = 4;
  Status s = RetryWithPolicy(policy, [&]() {
    ++calls;
    return Status::Unavailable("still down");
  });
  EXPECT_TRUE(s.IsUnavailable());
  EXPECT_EQ(calls, 4u);
}

TEST(RetryTest, NonRetriableFailurePropagatesImmediately) {
  for (const Status& terminal :
       {Status::Corruption("bad crc"), Status::DataLoss("truncated"),
        Status::NotFound("gone")}) {
    std::size_t calls = 0;
    Status s = RetryWithPolicy(RetryPolicy{}, [&]() {
      ++calls;
      return terminal;
    });
    EXPECT_EQ(s.code(), terminal.code());
    EXPECT_EQ(calls, 1u) << terminal.ToString();
  }
}

TEST(RetryTest, WorksWithResultValues) {
  std::size_t calls = 0;
  Result<int> r = RetryWithPolicy(RetryPolicy{}, [&]() -> Result<int> {
    ++calls;
    if (calls < 2) return Status::Unavailable("blip");
    return 17;
  });
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r.value(), 17);
  EXPECT_EQ(calls, 2u);
}

TEST(RetryTest, ResultFailureAfterExhaustionKeepsLastStatus) {
  RetryPolicy policy;
  policy.max_attempts = 2;
  Result<int> r = RetryWithPolicy(policy, [&]() -> Result<int> {
    return Status::Unavailable("flaky shard");
  });
  EXPECT_FALSE(r.ok());
  EXPECT_TRUE(r.status().IsUnavailable());
}

TEST(RetryTest, ZeroMaxAttemptsStillRunsOnce) {
  std::size_t calls = 0;
  RetryPolicy policy;
  policy.max_attempts = 0;
  Status s = RetryWithPolicy(policy, [&]() {
    ++calls;
    return Status::Unavailable("x");
  });
  EXPECT_TRUE(s.IsUnavailable());
  EXPECT_EQ(calls, 1u);
}

TEST(RetryTest, IsRetriableOnlyForUnavailable) {
  EXPECT_TRUE(IsRetriable(Status::Unavailable("x")));
  EXPECT_FALSE(IsRetriable(Status::Corruption("x")));
  EXPECT_FALSE(IsRetriable(Status::DataLoss("x")));
  EXPECT_FALSE(IsRetriable(Status::OK()));
}

}  // namespace
}  // namespace fault
}  // namespace ssr
