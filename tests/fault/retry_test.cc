#include "fault/retry.h"

#include <cmath>
#include <cstddef>
#include <cstdint>

#include <gtest/gtest.h>

#include "obs/metrics.h"
#include "util/hash.h"
#include "util/result.h"
#include "util/status.h"

namespace ssr {
namespace fault {
namespace {

TEST(RetryTest, SucceedsImmediatelyWithoutRetry) {
  std::size_t calls = 0;
  Status s = RetryWithPolicy(RetryPolicy{}, [&]() {
    ++calls;
    return Status::OK();
  });
  EXPECT_TRUE(s.ok());
  EXPECT_EQ(calls, 1u);
}

TEST(RetryTest, RecoversAfterTransientFailures) {
  std::size_t calls = 0;
  Status s = RetryWithPolicy(RetryPolicy{}, [&]() {
    ++calls;
    return calls < 3 ? Status::Unavailable("blip") : Status::OK();
  });
  EXPECT_TRUE(s.ok());
  EXPECT_EQ(calls, 3u);
}

TEST(RetryTest, ExhaustsAtMaxAttempts) {
  std::size_t calls = 0;
  RetryPolicy policy;
  policy.max_attempts = 4;
  Status s = RetryWithPolicy(policy, [&]() {
    ++calls;
    return Status::Unavailable("still down");
  });
  EXPECT_TRUE(s.IsUnavailable());
  EXPECT_EQ(calls, 4u);
}

TEST(RetryTest, NonRetriableFailurePropagatesImmediately) {
  for (const Status& terminal :
       {Status::Corruption("bad crc"), Status::DataLoss("truncated"),
        Status::NotFound("gone")}) {
    std::size_t calls = 0;
    Status s = RetryWithPolicy(RetryPolicy{}, [&]() {
      ++calls;
      return terminal;
    });
    EXPECT_EQ(s.code(), terminal.code());
    EXPECT_EQ(calls, 1u) << terminal.ToString();
  }
}

TEST(RetryTest, WorksWithResultValues) {
  std::size_t calls = 0;
  Result<int> r = RetryWithPolicy(RetryPolicy{}, [&]() -> Result<int> {
    ++calls;
    if (calls < 2) return Status::Unavailable("blip");
    return 17;
  });
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r.value(), 17);
  EXPECT_EQ(calls, 2u);
}

TEST(RetryTest, ResultFailureAfterExhaustionKeepsLastStatus) {
  RetryPolicy policy;
  policy.max_attempts = 2;
  Result<int> r = RetryWithPolicy(policy, [&]() -> Result<int> {
    return Status::Unavailable("flaky shard");
  });
  EXPECT_FALSE(r.ok());
  EXPECT_TRUE(r.status().IsUnavailable());
}

TEST(RetryTest, ZeroMaxAttemptsStillRunsOnce) {
  std::size_t calls = 0;
  RetryPolicy policy;
  policy.max_attempts = 0;
  Status s = RetryWithPolicy(policy, [&]() {
    ++calls;
    return Status::Unavailable("x");
  });
  EXPECT_TRUE(s.IsUnavailable());
  EXPECT_EQ(calls, 1u);
}

TEST(RetryTest, IsRetriableOnlyForUnavailable) {
  EXPECT_TRUE(IsRetriable(Status::Unavailable("x")));
  EXPECT_FALSE(IsRetriable(Status::Corruption("x")));
  EXPECT_FALSE(IsRetriable(Status::DataLoss("x")));
  EXPECT_FALSE(IsRetriable(Status::OK()));
}

TEST(BackoffTest, UnjitteredScheduleIsExponentialWithCap) {
  RetryPolicy policy;
  policy.initial_backoff_micros = 100.0;
  policy.backoff_multiplier = 2.0;
  policy.max_backoff_micros = 1000.0;
  EXPECT_DOUBLE_EQ(BackoffForRetry(policy, 1), 100.0);
  EXPECT_DOUBLE_EQ(BackoffForRetry(policy, 2), 200.0);
  EXPECT_DOUBLE_EQ(BackoffForRetry(policy, 3), 400.0);
  EXPECT_DOUBLE_EQ(BackoffForRetry(policy, 4), 800.0);
  EXPECT_DOUBLE_EQ(BackoffForRetry(policy, 5), 1000.0);  // capped
  EXPECT_DOUBLE_EQ(BackoffForRetry(policy, 6), 1000.0);
  // The cap short-circuits the exponential loop, so an absurd retry index
  // cannot overflow the growth to infinity before the cap applies.
  EXPECT_DOUBLE_EQ(BackoffForRetry(policy, 4096), 1000.0);
}

TEST(BackoffTest, ZeroInitialBackoffSleepsNothing) {
  RetryPolicy policy;  // default: no backoff
  EXPECT_DOUBLE_EQ(BackoffForRetry(policy, 1), 0.0);
  EXPECT_DOUBLE_EQ(BackoffForRetry(policy, 7), 0.0);
  EXPECT_DOUBLE_EQ(BackoffForRetry(policy, 0), 0.0);  // not a retry
}

TEST(BackoffTest, JitterIsDeterministicBoundedAndSeedKeyed) {
  RetryPolicy policy;
  policy.initial_backoff_micros = 1000.0;
  policy.backoff_multiplier = 1.0;  // isolate the jitter term
  policy.jitter_fraction = 0.25;
  policy.jitter_seed = 42;

  for (std::size_t k = 1; k <= 8; ++k) {
    const double jittered = BackoffForRetry(policy, k);
    // Deterministic: the same policy replays the same schedule.
    EXPECT_DOUBLE_EQ(jittered, BackoffForRetry(policy, k));
    // Bounded: base * (1 +/- fraction).
    EXPECT_GE(jittered, 750.0);
    EXPECT_LE(jittered, 1250.0);
    // And exactly the documented draw: u_k from SplitMix64(seed + k)
    // mapped onto [-1, 1].
    const std::uint64_t draw =
        SplitMix64(policy.jitter_seed + static_cast<std::uint64_t>(k));
    const double u = static_cast<double>(draw >> 11) * 0x1.0p-52 - 1.0;
    EXPECT_DOUBLE_EQ(jittered, 1000.0 * (1.0 + u * 0.25));
  }

  // Distinct seeds decorrelate concurrent retriers: the schedules differ
  // somewhere in the first few retries.
  RetryPolicy other = policy;
  other.jitter_seed = 43;
  bool differs = false;
  for (std::size_t k = 1; k <= 8 && !differs; ++k) {
    differs = BackoffForRetry(policy, k) != BackoffForRetry(other, k);
  }
  EXPECT_TRUE(differs);
}

TEST(RetryStatsTest, FastPathSuccessWritesCleanStats) {
  RetryStats stats;
  stats.retries = 99;  // must be overwritten, not accumulated
  Status s = RetryWithPolicy(
      RetryPolicy{}, [&]() { return Status::OK(); }, &stats);
  EXPECT_TRUE(s.ok());
  EXPECT_EQ(stats.attempts, 1u);
  EXPECT_EQ(stats.retries, 0u);
  EXPECT_DOUBLE_EQ(stats.backoff_micros, 0.0);
  EXPECT_FALSE(stats.recovered);
  EXPECT_FALSE(stats.exhausted);
}

TEST(RetryStatsTest, RecoveryAccountsAttemptsAndBackoff) {
  RetryPolicy policy;
  policy.max_attempts = 4;
  policy.initial_backoff_micros = 10.0;  // tiny but nonzero: sums exactly
  policy.backoff_multiplier = 2.0;
  std::size_t calls = 0;
  RetryStats stats;
  Status s = RetryWithPolicy(
      policy,
      [&]() {
        ++calls;
        return calls < 3 ? Status::Unavailable("blip") : Status::OK();
      },
      &stats);
  EXPECT_TRUE(s.ok());
  EXPECT_EQ(stats.attempts, 3u);
  EXPECT_EQ(stats.retries, 2u);
  EXPECT_TRUE(stats.recovered);
  EXPECT_FALSE(stats.exhausted);
  EXPECT_DOUBLE_EQ(stats.backoff_micros,
                   BackoffForRetry(policy, 1) + BackoffForRetry(policy, 2));
}

TEST(RetryStatsTest, ExhaustionIsFlaggedAndCounted) {
  obs::Counter* exhausted_counter =
      obs::MetricsRegistry::Default().GetCounter("ssr_retry_exhausted_total");
  const std::uint64_t before = exhausted_counter->value();
  RetryPolicy policy;
  policy.max_attempts = 3;
  RetryStats stats;
  Status s = RetryWithPolicy(
      policy, [&]() { return Status::Unavailable("down"); }, &stats);
  EXPECT_TRUE(s.IsUnavailable());
  EXPECT_EQ(stats.attempts, 3u);
  EXPECT_EQ(stats.retries, 2u);
  EXPECT_FALSE(stats.recovered);
  EXPECT_TRUE(stats.exhausted);
  EXPECT_EQ(exhausted_counter->value() - before, 1u);
}

TEST(RetryStatsTest, NonRetriableFailureIsNotExhaustion) {
  RetryStats stats;
  Status s = RetryWithPolicy(
      RetryPolicy{}, [&]() { return Status::Corruption("bad"); }, &stats);
  EXPECT_TRUE(s.IsCorruption());
  EXPECT_EQ(stats.attempts, 1u);
  EXPECT_EQ(stats.retries, 0u);
  EXPECT_FALSE(stats.exhausted);  // permanent failure, not a retry budget
}

}  // namespace
}  // namespace fault
}  // namespace ssr
