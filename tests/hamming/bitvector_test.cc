#include "hamming/bitvector.h"

#include <gtest/gtest.h>

#include "util/random.h"

namespace ssr {
namespace {

TEST(BitVectorTest, ConstructionZeroed) {
  BitVector v(130);
  EXPECT_EQ(v.size(), 130u);
  EXPECT_EQ(v.PopCount(), 0u);
  for (std::size_t i = 0; i < 130; ++i) EXPECT_FALSE(v.Get(i));
}

TEST(BitVectorTest, SetAndGet) {
  BitVector v(70);
  v.Set(0, true);
  v.Set(63, true);
  v.Set(64, true);
  v.Set(69, true);
  EXPECT_TRUE(v.Get(0));
  EXPECT_TRUE(v.Get(63));
  EXPECT_TRUE(v.Get(64));
  EXPECT_TRUE(v.Get(69));
  EXPECT_FALSE(v.Get(1));
  EXPECT_EQ(v.PopCount(), 4u);
  v.Set(63, false);
  EXPECT_FALSE(v.Get(63));
  EXPECT_EQ(v.PopCount(), 3u);
}

TEST(BitVectorTest, FromStringRoundTrip) {
  const std::string bits = "0110100111010001";
  BitVector v = BitVector::FromString(bits);
  EXPECT_EQ(v.size(), bits.size());
  EXPECT_EQ(v.ToString(), bits);
}

TEST(BitVectorTest, ComplementFlipsAllBitsAndKeepsInvariant) {
  BitVector v = BitVector::FromString("0110100");
  BitVector c = v.Complement();
  EXPECT_EQ(c.ToString(), "1001011");
  EXPECT_EQ(v.PopCount() + c.PopCount(), v.size());
  // The word tail beyond size() must stay zero so word ops remain exact.
  BitVector big(100);
  big.ComplementInPlace();
  EXPECT_EQ(big.PopCount(), 100u);
}

TEST(BitVectorTest, DoubleComplementIsIdentity) {
  Rng rng(21);
  BitVector v(150);
  for (std::size_t i = 0; i < 150; ++i) v.Set(i, rng.Bernoulli(0.4));
  EXPECT_EQ(v.Complement().Complement(), v);
}

TEST(BitVectorTest, AppendBits) {
  BitVector v;
  v.AppendBits(0b1011, 4);
  v.AppendBits(0b01, 2);
  EXPECT_EQ(v.ToString(), "110110");
  EXPECT_EQ(v.size(), 6u);
}

TEST(BitVectorTest, AppendWordsAcrossBoundaries) {
  BitVector v;
  std::uint64_t words[2] = {~0ULL, 0b101ULL};
  v.AppendWords(words, 67);
  EXPECT_EQ(v.size(), 67u);
  EXPECT_EQ(v.PopCount(), 66u);  // 64 ones + bits 0 and 2 of the second word
  EXPECT_TRUE(v.Get(64));
  EXPECT_FALSE(v.Get(65));
  EXPECT_TRUE(v.Get(66));
}

TEST(BitVectorTest, HammingDistanceBasics) {
  BitVector a = BitVector::FromString("10110");
  BitVector b = BitVector::FromString("10011");
  EXPECT_EQ(HammingDistance(a, b), 2u);
  EXPECT_EQ(HammingDistance(a, a), 0u);
}

TEST(BitVectorTest, HammingSimilarityDefinition4) {
  BitVector a = BitVector::FromString("1111");
  BitVector b = BitVector::FromString("1100");
  EXPECT_DOUBLE_EQ(HammingSimilarity(a, b), 0.5);
  EXPECT_DOUBLE_EQ(HammingSimilarity(a, a), 1.0);
  BitVector empty1, empty2;
  EXPECT_DOUBLE_EQ(HammingSimilarity(empty1, empty2), 1.0);
}

TEST(BitVectorTest, DistanceSymmetricAndTriangle) {
  Rng rng(22);
  for (int t = 0; t < 50; ++t) {
    BitVector a(200), b(200), c(200);
    for (std::size_t i = 0; i < 200; ++i) {
      a.Set(i, rng.Bernoulli(0.5));
      b.Set(i, rng.Bernoulli(0.5));
      c.Set(i, rng.Bernoulli(0.5));
    }
    EXPECT_EQ(HammingDistance(a, b), HammingDistance(b, a));
    EXPECT_LE(HammingDistance(a, c),
              HammingDistance(a, b) + HammingDistance(b, c));
  }
}

TEST(BitVectorTest, ComplementDistanceIdentity) {
  // Theorem 2's engine: d(a, ~b) = t - d(a, b).
  Rng rng(23);
  for (int t = 0; t < 50; ++t) {
    BitVector a(128), b(128);
    for (std::size_t i = 0; i < 128; ++i) {
      a.Set(i, rng.Bernoulli(0.3));
      b.Set(i, rng.Bernoulli(0.7));
    }
    EXPECT_EQ(HammingDistance(a, b.Complement()),
              128u - HammingDistance(a, b));
    EXPECT_DOUBLE_EQ(HammingSimilarity(a, b.Complement()),
                     1.0 - HammingSimilarity(a, b));
  }
}

TEST(BitVectorTest, PopCountMatchesManualCount) {
  Rng rng(24);
  BitVector v(300);
  std::size_t manual = 0;
  for (std::size_t i = 0; i < 300; ++i) {
    const bool bit = rng.Bernoulli(0.5);
    v.Set(i, bit);
    manual += bit ? 1 : 0;
  }
  EXPECT_EQ(v.PopCount(), manual);
}

}  // namespace
}  // namespace ssr
