#include "hamming/embedding.h"

#include <gtest/gtest.h>

#include "util/random.h"
#include "util/set_ops.h"

namespace ssr {
namespace {

EmbeddingParams MakeParams(std::size_t k, unsigned bits,
                           CodeKind kind = CodeKind::kHadamard) {
  EmbeddingParams p;
  p.minhash.num_hashes = k;
  p.minhash.value_bits = bits;
  p.minhash.seed = 31;
  p.code_kind = kind;
  return p;
}

TEST(EmbeddingTest, CreateValidatesParams) {
  EXPECT_TRUE(Embedding::Create(MakeParams(10, 8)).ok());
  EXPECT_FALSE(Embedding::Create(MakeParams(0, 8)).ok());
  EXPECT_FALSE(Embedding::Create(MakeParams(10, 0)).ok());
}

TEST(EmbeddingTest, DimensionIsMTimesK) {
  auto e = Embedding::Create(MakeParams(10, 8));
  ASSERT_TRUE(e.ok());
  EXPECT_EQ(e->dimension(), 10u * 256u);
  auto simplex = Embedding::Create(MakeParams(10, 8, CodeKind::kSimplex));
  EXPECT_EQ(simplex->dimension(), 10u * 255u);
  auto naive = Embedding::Create(MakeParams(10, 8, CodeKind::kNaiveBinary));
  EXPECT_EQ(naive->dimension(), 10u * 8u);
}

TEST(EmbeddingTest, DistanceRatioHalfForHadamard) {
  auto e = Embedding::Create(MakeParams(4, 6));
  EXPECT_DOUBLE_EQ(e->distance_ratio(), 0.5);
  auto s = Embedding::Create(MakeParams(4, 6, CodeKind::kSimplex));
  EXPECT_DOUBLE_EQ(s->distance_ratio(), 32.0 / 63.0);
  auto n = Embedding::Create(MakeParams(4, 6, CodeKind::kNaiveBinary));
  EXPECT_DOUBLE_EQ(n->distance_ratio(), 0.0);
}

// Theorem 1, deterministically: two signatures agreeing on fraction s embed
// at Hamming distance exactly (1-s)·k·d, i.e. S_H = 1 − (1−s)·ρ.
TEST(EmbeddingTest, Theorem1ExactForHadamard) {
  auto e = Embedding::Create(MakeParams(8, 8));
  ASSERT_TRUE(e.ok());
  // Signatures agreeing on 6 of 8 coordinates: s = 0.75.
  Signature a(std::vector<std::uint16_t>{1, 2, 3, 4, 5, 6, 7, 8});
  Signature b(std::vector<std::uint16_t>{1, 2, 3, 4, 5, 6, 9, 10});
  const BitVector ha = e->EmbedSignature(a);
  const BitVector hb = e->EmbedSignature(b);
  EXPECT_EQ(ha.size(), e->dimension());
  // Exactly 2 differing coordinates × m/2 = 128 differing bits each.
  EXPECT_EQ(HammingDistance(ha, hb), 2u * 128u);
  EXPECT_DOUBLE_EQ(HammingSimilarity(ha, hb),
                   e->SetToHammingSimilarity(0.75));
}

TEST(EmbeddingTest, Theorem1SweepAllAgreementLevels) {
  auto e = Embedding::Create(MakeParams(10, 6));
  ASSERT_TRUE(e.ok());
  const unsigned m = e->code().codeword_bits();  // 64
  for (std::size_t agree = 0; agree <= 10; ++agree) {
    Signature a(10), b(10);
    for (std::size_t i = 0; i < 10; ++i) {
      a[i] = static_cast<std::uint16_t>(i + 1);
      b[i] = i < agree ? a[i] : static_cast<std::uint16_t>(40 + i);
    }
    const std::size_t dist =
        HammingDistance(e->EmbedSignature(a), e->EmbedSignature(b));
    EXPECT_EQ(dist, (10 - agree) * (m / 2));
  }
}

TEST(EmbeddingTest, NaiveEmbeddingDistorts) {
  // The same 50%-agreement signatures yield wildly varying bit agreement
  // under the naive code (Example 1); confirm it deviates from the affine
  // mapping for at least one pair.
  auto e = Embedding::Create(MakeParams(4, 3, CodeKind::kNaiveBinary));
  ASSERT_TRUE(e.ok());
  Signature a(std::vector<std::uint16_t>{7, 3, 5, 1});
  Signature b(std::vector<std::uint16_t>{3, 3, 5, 3});  // agreement 0.5
  const double sh = HammingSimilarity(e->EmbedSignature(a),
                                      e->EmbedSignature(b));
  EXPECT_NEAR(sh, 0.8333, 0.01);  // paper's Example 1: 0.83, not 0.5
}

TEST(EmbeddingTest, SimilarityMappingsRoundTrip) {
  auto e = Embedding::Create(MakeParams(10, 8));
  for (double s : {0.0, 0.1, 0.5, 0.9, 1.0}) {
    const double sh = e->SetToHammingSimilarity(s);
    EXPECT_NEAR(e->HammingToSetSimilarity(sh), s, 1e-12);
  }
  EXPECT_DOUBLE_EQ(e->SetToHammingSimilarity(1.0), 1.0);
  EXPECT_DOUBLE_EQ(e->SetToHammingSimilarity(0.0), 0.5);  // Hadamard ρ = 1/2
}

TEST(EmbeddingTest, DistanceRangeMapping) {
  auto e = Embedding::Create(MakeParams(10, 8));
  const std::size_t dim = e->dimension();
  auto [d_min, d_max] = e->SimilarityRangeToDistanceRange(0.0, 1.0);
  EXPECT_EQ(d_min, 0u);
  EXPECT_EQ(d_max, dim / 2);
  auto [d1, d2] = e->SimilarityRangeToDistanceRange(0.5, 0.9);
  EXPECT_LT(d1, d2);
  EXPECT_NEAR(static_cast<double>(d1), 0.05 * dim, 2.0);
  EXPECT_NEAR(static_cast<double>(d2), 0.25 * dim, 2.0);
}

TEST(EmbeddingTest, EmbeddedBitMatchesMaterialized) {
  auto e = Embedding::Create(MakeParams(6, 7));
  ASSERT_TRUE(e.ok());
  Rng rng(33);
  Signature sig(6);
  for (std::size_t i = 0; i < 6; ++i) {
    sig[i] = static_cast<std::uint16_t>(rng.Uniform(128));
  }
  const BitVector full = e->EmbedSignature(sig);
  for (std::size_t p = 0; p < e->dimension(); ++p) {
    EXPECT_EQ(e->EmbeddedBit(sig, p), full.Get(p)) << "pos " << p;
  }
}

// End-to-end: embedded Hamming similarity of real sets approximates the
// affine map of their Jaccard similarity.
TEST(EmbeddingTest, EndToEndSimilarityPreservation) {
  auto e = Embedding::Create(MakeParams(500, 8));
  ASSERT_TRUE(e.ok());
  ElementSet a, b;
  for (ElementId x = 0; x < 60; ++x) a.push_back(x);
  for (ElementId x = 20; x < 80; ++x) b.push_back(x);
  NormalizeSet(a);
  NormalizeSet(b);
  const double sim = Jaccard(a, b);  // 40/80 = 0.5
  const double sh = HammingSimilarity(e->Embed(a), e->Embed(b));
  EXPECT_NEAR(sh, e->SetToHammingSimilarity(sim), 0.03);
}

TEST(EmbeddingTest, CopyShareComponentsSafely) {
  auto e = Embedding::Create(MakeParams(8, 8));
  ASSERT_TRUE(e.ok());
  Embedding copy = *e;  // cheap copy sharing hasher/code
  const ElementSet set{1, 2, 3};
  EXPECT_EQ(copy.Sign(set), e->Sign(set));
  EXPECT_EQ(copy.dimension(), e->dimension());
}

}  // namespace
}  // namespace ssr
