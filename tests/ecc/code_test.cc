#include "ecc/code.h"

#include <gtest/gtest.h>

#include "ecc/hadamard.h"
#include "ecc/naive.h"
#include "ecc/simplex.h"
#include "hamming/bitvector.h"

namespace ssr {
namespace {

TEST(CodeFactoryTest, RejectsBadMessageBits) {
  EXPECT_FALSE(MakeCode(CodeKind::kHadamard, 0).ok());
  EXPECT_FALSE(MakeCode(CodeKind::kHadamard, 17).ok());
  EXPECT_TRUE(MakeCode(CodeKind::kHadamard, 1).ok());
  EXPECT_TRUE(MakeCode(CodeKind::kSimplex, 16).ok());
  EXPECT_TRUE(MakeCode(CodeKind::kNaiveBinary, 8).ok());
}

TEST(HadamardTest, Dimensions) {
  HadamardCode code(8);
  EXPECT_EQ(code.message_bits(), 8u);
  EXPECT_EQ(code.codeword_bits(), 256u);
  EXPECT_EQ(code.pairwise_distance(), 128u);
  EXPECT_TRUE(code.is_equidistant());
}

TEST(SimplexTest, Dimensions) {
  SimplexCode code(8);
  EXPECT_EQ(code.codeword_bits(), 255u);
  EXPECT_EQ(code.pairwise_distance(), 128u);
  EXPECT_TRUE(code.is_equidistant());
}

TEST(NaiveTest, Dimensions) {
  NaiveBinaryCode code(8);
  EXPECT_EQ(code.codeword_bits(), 8u);
  EXPECT_FALSE(code.is_equidistant());
}

TEST(HadamardTest, ZeroMessageIsZeroCodeword) {
  HadamardCode code(6);
  for (unsigned p = 0; p < code.codeword_bits(); ++p) {
    EXPECT_FALSE(code.Bit(0, p));
  }
}

TEST(HadamardTest, BitIsInnerProductParity) {
  HadamardCode code(4);
  // Message 0b0101, position 0b0110 -> common bits 0b0100 -> parity 1.
  EXPECT_TRUE(code.Bit(0b0101, 0b0110));
  // Message 0b0101, position 0b1010 -> common 0b0000 -> parity 0.
  EXPECT_FALSE(code.Bit(0b0101, 0b1010));
}

TEST(NaiveTest, BitIsIdentity) {
  NaiveBinaryCode code(8);
  const std::uint16_t v = 0b10110010;
  for (unsigned p = 0; p < 8; ++p) {
    EXPECT_EQ(code.Bit(v, p), ((v >> p) & 1) != 0);
  }
}

TEST(CodeTest, EncodeMatchesBitForAllKinds) {
  for (CodeKind kind :
       {CodeKind::kHadamard, CodeKind::kSimplex, CodeKind::kNaiveBinary}) {
    auto code = MakeCode(kind, 6);
    ASSERT_TRUE(code.ok());
    std::vector<std::uint64_t> words(code.value()->codeword_words());
    for (std::uint16_t msg : {0, 1, 17, 42, 63}) {
      code.value()->Encode(msg, words.data());
      for (unsigned p = 0; p < code.value()->codeword_bits(); ++p) {
        const bool from_words = (words[p >> 6] >> (p & 63)) & 1;
        EXPECT_EQ(from_words, code.value()->Bit(msg, p))
            << code.value()->name() << " msg=" << msg << " p=" << p;
      }
    }
  }
}

// Theorem 1's requirement, exhaustively: all pairs of distinct codewords at
// the exact claimed distance, for every message width we can afford.
class EquidistanceSweep : public ::testing::TestWithParam<unsigned> {};

TEST_P(EquidistanceSweep, HadamardExhaustive) {
  HadamardCode code(GetParam());
  EXPECT_TRUE(VerifyEquidistant(code).ok());
}

TEST_P(EquidistanceSweep, SimplexExhaustive) {
  SimplexCode code(GetParam());
  EXPECT_TRUE(VerifyEquidistant(code).ok());
}

INSTANTIATE_TEST_SUITE_P(MessageBits, EquidistanceSweep,
                         ::testing::Values(1u, 2u, 3u, 4u, 5u, 6u, 7u, 8u,
                                           9u, 10u));

TEST(CodeTest, VerifyEquidistantRejectsNaive) {
  NaiveBinaryCode code(4);
  EXPECT_TRUE(VerifyEquidistant(code).IsFailedPrecondition());
}

TEST(HadamardTest, DistanceExactlyHalfForSpotPairs) {
  HadamardCode code(8);
  std::vector<std::uint64_t> u(code.codeword_words());
  std::vector<std::uint64_t> v(code.codeword_words());
  for (auto [a, b] : std::vector<std::pair<int, int>>{
           {0, 1}, {3, 200}, {255, 254}, {17, 18}}) {
    code.Encode(static_cast<std::uint16_t>(a), u.data());
    code.Encode(static_cast<std::uint16_t>(b), v.data());
    unsigned dist = 0;
    for (std::size_t w = 0; w < u.size(); ++w) {
      dist += __builtin_popcountll(u[w] ^ v[w]);
    }
    EXPECT_EQ(dist, 128u) << a << " vs " << b;
  }
}

// The paper's Example 1 distortion: under the naive embedding the bit
// agreement of two signature vectors is NOT determined by their coordinate
// agreement.
TEST(NaiveTest, Example1Distortion) {
  // V1 = (7,3,5,1), V2 = (3,3,5,3) with 3-bit values; sim(V1,V2) = 0.5 but
  // the straw-man bit agreement is much higher.
  NaiveBinaryCode code(3);
  const std::vector<std::uint16_t> v1{7, 3, 5, 1};
  const std::vector<std::uint16_t> v2{3, 3, 5, 3};
  unsigned equal_bits = 0, total_bits = 0;
  for (std::size_t i = 0; i < v1.size(); ++i) {
    for (unsigned p = 0; p < 3; ++p) {
      equal_bits += code.Bit(v1[i], p) == code.Bit(v2[i], p) ? 1 : 0;
      ++total_bits;
    }
  }
  const double agreement =
      static_cast<double>(equal_bits) / static_cast<double>(total_bits);
  EXPECT_GT(agreement, 0.7);  // paper reports 0.83 for its bit convention
}

TEST(CodeTest, NamesIdentifyKindAndWidth) {
  EXPECT_NE(HadamardCode(8).name().find("hadamard"), std::string::npos);
  EXPECT_NE(SimplexCode(8).name().find("simplex"), std::string::npos);
  EXPECT_NE(NaiveBinaryCode(8).name().find("naive"), std::string::npos);
  EXPECT_NE(HadamardCode(8).name().find("256"), std::string::npos);
}

}  // namespace
}  // namespace ssr
