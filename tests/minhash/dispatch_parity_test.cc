// Dispatch parity: the AVX2 batch-signing kernels must be bit-identical to
// the portable scalar loops on every input — both perform the exact same
// mod-2^64 operations, so any divergence is a kernel bug, not rounding.
// On hardware without AVX2 (or with SSR_SIMD=OFF, where the Avx2 entry
// points forward to the scalar loops) the comparisons are trivially equal,
// so this suite passes in every build configuration; the CI SIMD-off leg
// runs it to pin exactly that.

#include <cstdint>
#include <vector>

#include <gtest/gtest.h>

#include "minhash/simd.h"
#include "util/hash.h"
#include "util/random.h"

namespace ssr {
namespace {

std::vector<std::uint64_t> RandomWords(Rng& rng, std::size_t n) {
  std::vector<std::uint64_t> words;
  words.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    words.push_back(rng.Next());
  }
  return words;
}

std::vector<ElementId> RandomElements(Rng& rng, std::size_t n) {
  std::vector<ElementId> elems;
  elems.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    elems.push_back(static_cast<ElementId>(rng.Next()));
  }
  return elems;
}

// k values straddling the AVX2 width (4 lanes): scalar-only tails, exact
// multiples, and the paper's k = 100.
const std::size_t kLaneCounts[] = {1, 2, 3, 4, 5, 7, 8, 100};
// Element counts covering empty sets, single elements, and long runs.
const std::size_t kElementCounts[] = {0, 1, 2, 5, 31, 257};

TEST(DispatchParityTest, ClassicKernelsAreBitIdentical) {
  Rng rng(21);
  for (std::size_t k : kLaneCounts) {
    const std::vector<std::uint64_t> derived = RandomWords(rng, k);
    for (std::size_t n : kElementCounts) {
      const std::vector<ElementId> elems = RandomElements(rng, n);
      std::vector<std::uint64_t> scalar(k, UINT64_MAX);
      std::vector<std::uint64_t> vectorized(k, UINT64_MAX);
      std::vector<std::uint64_t> automatic(k, UINT64_MAX);
      simd::ClassicMinScalar(derived.data(), k, elems.data(), n,
                             scalar.data());
      simd::ClassicMinAvx2(derived.data(), k, elems.data(), n,
                           vectorized.data());
      simd::ClassicMinAuto(derived.data(), k, elems.data(), n,
                           automatic.data());
      ASSERT_EQ(scalar, vectorized) << "k=" << k << " n=" << n;
      ASSERT_EQ(scalar, automatic) << "k=" << k << " n=" << n;
    }
  }
}

TEST(DispatchParityTest, CMinKernelsAreBitIdentical) {
  Rng rng(22);
  for (std::size_t k : kLaneCounts) {
    for (std::size_t n : kElementCounts) {
      const std::vector<std::uint64_t> z = RandomWords(rng, n);
      const std::uint64_t step = rng.Next() | 1;  // must be odd
      std::vector<std::uint64_t> scalar(k, UINT64_MAX);
      std::vector<std::uint64_t> vectorized(k, UINT64_MAX);
      std::vector<std::uint64_t> automatic(k, UINT64_MAX);
      simd::CMinScalar(z.data(), n, step, k, scalar.data());
      simd::CMinAvx2(z.data(), n, step, k, vectorized.data());
      simd::CMinAuto(z.data(), n, step, k, automatic.data());
      ASSERT_EQ(scalar, vectorized) << "k=" << k << " n=" << n;
      ASSERT_EQ(scalar, automatic) << "k=" << k << " n=" << n;
    }
  }
}

// The scalar kernels themselves are pinned against a from-scratch loop, so
// the parity tests above anchor to the defining formulas rather than to
// whatever both kernels happen to compute.
TEST(DispatchParityTest, ScalarClassicMatchesDefinition) {
  Rng rng(23);
  const std::size_t k = 9, n = 40;
  const std::vector<std::uint64_t> derived = RandomWords(rng, k);
  const std::vector<ElementId> elems = RandomElements(rng, n);
  std::vector<std::uint64_t> minima(k, UINT64_MAX);
  simd::ClassicMinScalar(derived.data(), k, elems.data(), n, minima.data());
  for (std::size_t i = 0; i < k; ++i) {
    std::uint64_t expected = UINT64_MAX;
    for (ElementId e : elems) {
      expected = std::min(expected, Fmix64(e ^ derived[i]));
    }
    ASSERT_EQ(minima[i], expected) << "lane " << i;
  }
}

TEST(DispatchParityTest, ScalarCMinMatchesDefinition) {
  Rng rng(24);
  const std::size_t k = 9, n = 40;
  const std::vector<std::uint64_t> z = RandomWords(rng, n);
  const std::uint64_t step = rng.Next() | 1;
  std::vector<std::uint64_t> minima(k, UINT64_MAX);
  simd::CMinScalar(z.data(), n, step, k, minima.data());
  for (std::size_t i = 0; i < k; ++i) {
    std::uint64_t expected = UINT64_MAX;
    for (std::uint64_t zj : z) {
      expected = std::min(
          expected, simd::CMix(zj + static_cast<std::uint64_t>(i) * step));
    }
    ASSERT_EQ(minima[i], expected) << "lane " << i;
  }
}

// Kernels with pre-seeded minima continue a split set: running the kernel
// over two halves must equal one run over the whole.
TEST(DispatchParityTest, SplitRunsCompose) {
  Rng rng(25);
  const std::size_t k = 100, n = 64;
  const std::vector<std::uint64_t> derived = RandomWords(rng, k);
  const std::vector<ElementId> elems = RandomElements(rng, n);
  std::vector<std::uint64_t> whole(k, UINT64_MAX);
  std::vector<std::uint64_t> split(k, UINT64_MAX);
  simd::ClassicMinAuto(derived.data(), k, elems.data(), n, whole.data());
  simd::ClassicMinAuto(derived.data(), k, elems.data(), n / 2, split.data());
  simd::ClassicMinAuto(derived.data(), k, elems.data() + n / 2, n - n / 2,
                       split.data());
  EXPECT_EQ(whole, split);
}

TEST(DispatchParityTest, RuntimeDispatchIsConsistent) {
  // Runtime AVX2 can only be on if the kernels were compiled in; the
  // queried value is stable across calls (resolved once per process).
  if (simd::Avx2Runtime()) {
    EXPECT_TRUE(simd::Avx2Compiled());
  }
  EXPECT_EQ(simd::Avx2Runtime(), simd::Avx2Runtime());
}

}  // namespace
}  // namespace ssr
