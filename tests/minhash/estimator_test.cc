#include "minhash/estimator.h"

#include <cmath>

#include <gtest/gtest.h>

#include "minhash/min_hasher.h"
#include "util/set_ops.h"

namespace ssr {
namespace {

TEST(EstimatorTest, CollisionProbabilityIsTwoToMinusB) {
  EXPECT_DOUBLE_EQ(SimilarityEstimator(8).collision_probability(),
                   1.0 / 256.0);
  EXPECT_DOUBLE_EQ(SimilarityEstimator(1).collision_probability(), 0.5);
  EXPECT_DOUBLE_EQ(SimilarityEstimator(16).collision_probability(),
                   1.0 / 65536.0);
}

TEST(EstimatorTest, CorrectionMapsEndpoints) {
  SimilarityEstimator est(8);
  Signature a(std::vector<std::uint16_t>{1, 2, 3, 4});
  Signature same = a;
  // Full agreement estimates 1 even after correction.
  EXPECT_DOUBLE_EQ(est.Estimate(a, same), 1.0);
  // Zero agreement is clamped to 0 (raw below the collision floor).
  Signature other(std::vector<std::uint16_t>{9, 10, 11, 12});
  EXPECT_DOUBLE_EQ(est.Estimate(a, other), 0.0);
}

TEST(EstimatorTest, CorrectionRemovesLowBitBias) {
  // With only 4-bit values, disjoint sets agree on ~1/16 of coordinates by
  // fingerprint collision; the corrected estimate should be near zero while
  // the raw one is visibly inflated.
  MinHashParams params;
  params.num_hashes = 4000;
  params.value_bits = 4;
  params.seed = 11;
  MinHasher hasher(params);
  ElementSet a, b;
  for (ElementId e = 0; e < 40; ++e) {
    a.push_back(e);
    b.push_back(500 + e);
  }
  const Signature sa = hasher.Sign(a);
  const Signature sb = hasher.Sign(b);
  SimilarityEstimator est(4);
  const double raw = est.RawEstimate(sa, sb);
  const double corrected = est.Estimate(sa, sb);
  EXPECT_GT(raw, 0.035);  // ~1/16 = 0.0625 expected
  EXPECT_LT(raw, 0.095);
  EXPECT_LT(corrected, 0.02);
}

TEST(EstimatorTest, CorrectedEstimateTracksTrueSimilarity) {
  MinHashParams params;
  params.num_hashes = 3000;
  params.value_bits = 8;
  params.seed = 12;
  MinHasher hasher(params);
  ElementSet a, b;
  for (ElementId e = 0; e < 30; ++e) a.push_back(e);
  for (ElementId e = 10; e < 40; ++e) b.push_back(e);
  NormalizeSet(a);
  NormalizeSet(b);
  const double sim = Jaccard(a, b);  // 20/40 = 0.5
  SimilarityEstimator est(8);
  EXPECT_NEAR(est.Estimate(hasher.Sign(a), hasher.Sign(b)), sim, 0.04);
}

TEST(EstimatorTest, ConfidenceWidthShrinksWithK) {
  SimilarityEstimator est(8);
  const double w100 = est.ConfidenceHalfWidth(100, 0.05);
  const double w1000 = est.ConfidenceHalfWidth(1000, 0.05);
  EXPECT_GT(w100, w1000);
  EXPECT_NEAR(w100 / w1000, std::sqrt(10.0), 0.01);
}

TEST(EstimatorTest, DeviationBoundIsProbability) {
  for (std::size_t k : {1u, 10u, 100u, 1000u}) {
    for (double eps : {0.01, 0.1, 0.5}) {
      const double b = SimilarityEstimator::DeviationProbabilityBound(k, eps);
      EXPECT_GE(b, 0.0);
      EXPECT_LE(b, 1.0);
    }
  }
  EXPECT_LT(SimilarityEstimator::DeviationProbabilityBound(1000, 0.1),
            SimilarityEstimator::DeviationProbabilityBound(10, 0.1));
}

}  // namespace
}  // namespace ssr
