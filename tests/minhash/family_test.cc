// Signature engine v2 family contracts: every pluggable backend must keep
// the signature shape (k b-bit values, empty-set sentinel), agree with
// itself across Sign / SignOne / SignBatch, stay deterministic across
// instances, and — the property that makes a family usable at all —
// estimate Jaccard within statistical tolerance of the exact value.
// The classic family additionally pins digest compatibility: its output is
// re-derived here from raw HashFamily evaluations, the pre-v2 semantics.

#include <algorithm>
#include <cstdint>
#include <vector>

#include <gtest/gtest.h>

#include "minhash/estimator.h"
#include "minhash/family.h"
#include "minhash/min_hasher.h"
#include "util/hash.h"
#include "util/random.h"
#include "util/set_ops.h"

namespace ssr {
namespace {

MinHashParams ParamsFor(MinHashFamilyKind family, std::size_t k = 100,
                        unsigned b = 8, std::uint64_t seed = 0xfa1711e5ULL) {
  MinHashParams p;
  p.num_hashes = k;
  p.value_bits = b;
  p.seed = seed;
  p.family = family;
  return p;
}

ElementSet RandomSet(Rng& rng, std::size_t max_size = 80) {
  ElementSet s;
  const std::size_t size = 1 + rng.Uniform(max_size);
  for (std::size_t j = 0; j < size; ++j) s.push_back(rng.Uniform(100000));
  NormalizeSet(s);
  if (s.empty()) s.push_back(1);
  return s;
}

TEST(MinHashFamilyTest, NamesAndBytesRoundTrip) {
  for (MinHashFamilyKind kind : kAllMinHashFamilies) {
    auto from_byte = MinHashFamilyFromByte(static_cast<std::uint8_t>(kind));
    ASSERT_TRUE(from_byte.ok());
    EXPECT_EQ(from_byte.value(), kind);
    auto from_name = MinHashFamilyFromName(MinHashFamilyName(kind));
    ASSERT_TRUE(from_name.ok());
    EXPECT_EQ(from_name.value(), kind);
  }
  auto future = MinHashFamilyFromByte(3);
  ASSERT_FALSE(future.ok());
  EXPECT_TRUE(future.status().IsNotSupported()) << future.status().ToString();
  auto unknown = MinHashFamilyFromName("permuted-congruential");
  ASSERT_FALSE(unknown.ok());
  EXPECT_TRUE(unknown.status().IsInvalidArgument());
}

TEST(MinHashFamilyTest, EmptySetYieldsSentinelInEveryFamily) {
  for (MinHashFamilyKind kind : kAllMinHashFamilies) {
    for (unsigned b : {1u, 4u, 8u, 16u}) {
      MinHasher hasher(ParamsFor(kind, 32, b));
      const Signature sig = hasher.Sign(ElementSet{});
      ASSERT_EQ(sig.size(), 32u);
      for (std::size_t i = 0; i < sig.size(); ++i) {
        EXPECT_EQ(sig[i], hasher.value_mask())
            << MinHashFamilyName(kind) << " b=" << b << " coordinate " << i;
      }
    }
  }
}

TEST(MinHashFamilyTest, SignOneProjectsTheFullSignature) {
  Rng rng(11);
  for (MinHashFamilyKind kind : kAllMinHashFamilies) {
    MinHasher hasher(ParamsFor(kind, 64));
    for (int t = 0; t < 5; ++t) {
      const ElementSet s = RandomSet(rng);
      const Signature sig = hasher.Sign(s);
      for (std::size_t i = 0; i < sig.size(); ++i) {
        ASSERT_EQ(hasher.SignOne(s, i), sig[i])
            << MinHashFamilyName(kind) << " coordinate " << i;
      }
    }
  }
}

TEST(MinHashFamilyTest, SignBatchMatchesIndividualSigns) {
  Rng rng(12);
  for (MinHashFamilyKind kind : kAllMinHashFamilies) {
    MinHasher hasher(ParamsFor(kind, 100));
    std::vector<ElementSet> sets;
    for (int t = 0; t < 17; ++t) sets.push_back(RandomSet(rng));
    sets.push_back(ElementSet{});  // empty set inside a batch
    sets.push_back(RandomSet(rng, 3));

    std::vector<Signature> batched(sets.size());
    hasher.SignBatch(sets.data(), sets.size(), batched.data());
    for (std::size_t i = 0; i < sets.size(); ++i) {
      ASSERT_EQ(batched[i], hasher.Sign(sets[i]))
          << MinHashFamilyName(kind) << " set " << i;
    }
  }
}

TEST(MinHashFamilyTest, DeterministicAcrossInstances) {
  Rng rng(13);
  const ElementSet s = RandomSet(rng);
  for (MinHashFamilyKind kind : kAllMinHashFamilies) {
    MinHasher a(ParamsFor(kind));
    MinHasher b(ParamsFor(kind));
    EXPECT_EQ(a.Sign(s), b.Sign(s)) << MinHashFamilyName(kind);
    MinHasher other_seed(ParamsFor(kind, 100, 8, 0xd1fULL));
    EXPECT_NE(a.Sign(s), other_seed.Sign(s)) << MinHashFamilyName(kind);
  }
}

TEST(MinHashFamilyTest, FamiliesProduceDistinctSignatures) {
  Rng rng(14);
  const ElementSet s = RandomSet(rng, 60);
  MinHasher classic(ParamsFor(MinHashFamilyKind::kClassic));
  MinHasher super(ParamsFor(MinHashFamilyKind::kSuperMinHash));
  MinHasher cmin(ParamsFor(MinHashFamilyKind::kCMinHash));
  EXPECT_NE(classic.Sign(s), super.Sign(s));
  EXPECT_NE(classic.Sign(s), cmin.Sign(s));
  EXPECT_NE(super.Sign(s), cmin.Sign(s));
}

// The digest-compatibility anchor: the classic family must equal the pre-v2
// MinHasher bit for bit. The pre-v2 semantics were: value i = Fmix64(min
// over elements e of HashU64(e, seed_i)) masked to b bits, with seeds from
// HashFamily(k, master_seed) — re-derived here from first principles.
TEST(MinHashFamilyTest, ClassicMatchesPreV2Semantics) {
  Rng rng(15);
  const std::size_t k = 80;
  const std::uint64_t master_seed = 999;
  MinHashParams params = ParamsFor(MinHashFamilyKind::kClassic, k, 8,
                                   master_seed);
  MinHasher hasher(params);
  HashFamily reference(k, master_seed);
  for (int t = 0; t < 10; ++t) {
    const ElementSet s = RandomSet(rng);
    const Signature sig = hasher.Sign(s);
    for (std::size_t i = 0; i < k; ++i) {
      std::uint64_t min = UINT64_MAX;
      for (ElementId e : s) {
        min = std::min(min, HashU64(e, reference.seed(i)));
      }
      const std::uint16_t expected =
          static_cast<std::uint16_t>(Fmix64(min)) & hasher.value_mask();
      ASSERT_EQ(sig[i], expected) << "coordinate " << i;
    }
  }
}

// Statistical acceptance per family: at k = 100 the collision-corrected
// estimate, averaged over 30 independently drawn pairs of sets with the
// same exact Jaccard, must land within +-0.05 of it. Seeded, so this is a
// deterministic regression, not a flaky sampling test; the expected
// deviation of the 30-pair mean is ~sqrt(J(1-J)/100/30) < 0.01.
TEST(MinHashFamilyTest, EstimatesTrackExactJaccardWithinTolerance) {
  struct Level {
    std::size_t shared, unique_each;
  };
  // Exact J = shared / (shared + 2 * unique_each).
  const Level levels[] = {{20, 40}, {50, 25}, {80, 10}};
  const std::size_t k = 100;
  const unsigned b = 12;
  SimilarityEstimator estimator(b);
  for (MinHashFamilyKind kind : kAllMinHashFamilies) {
    MinHasher hasher(ParamsFor(kind, k, b));
    for (const Level& level : levels) {
      const double exact =
          static_cast<double>(level.shared) /
          static_cast<double>(level.shared + 2 * level.unique_each);
      double sum = 0.0;
      const int pairs = 30;
      for (int p = 0; p < pairs; ++p) {
        // Disjoint element ranges make the intersection exact by
        // construction; a fresh base per pair makes the draws independent.
        const ElementId base = static_cast<ElementId>(1 + p) * 1000000;
        ElementSet a, bset;
        for (std::size_t i = 0; i < level.shared; ++i) {
          a.push_back(base + i);
          bset.push_back(base + i);
        }
        for (std::size_t i = 0; i < level.unique_each; ++i) {
          a.push_back(base + 300000 + i);
          bset.push_back(base + 600000 + i);
        }
        NormalizeSet(a);
        NormalizeSet(bset);
        sum += estimator.Estimate(hasher.Sign(a), hasher.Sign(bset));
      }
      const double mean = sum / pairs;
      EXPECT_NEAR(mean, exact, 0.05)
          << MinHashFamilyName(kind) << " at exact J = " << exact;
    }
  }
}

}  // namespace
}  // namespace ssr
