#include "minhash/min_hasher.h"

#include <cmath>

#include <gtest/gtest.h>

#include "util/random.h"
#include "util/set_ops.h"

namespace ssr {
namespace {

MinHashParams Params(std::size_t k, unsigned bits, std::uint64_t seed = 1) {
  MinHashParams p;
  p.num_hashes = k;
  p.value_bits = bits;
  p.seed = seed;
  return p;
}

TEST(MinHashParamsTest, Validation) {
  EXPECT_TRUE(Params(10, 8).Validate().ok());
  EXPECT_FALSE(Params(0, 8).Validate().ok());
  EXPECT_FALSE(Params(10, 0).Validate().ok());
  EXPECT_FALSE(Params(10, 17).Validate().ok());
  EXPECT_TRUE(Params(1, 1).Validate().ok());
  EXPECT_TRUE(Params(10, 16).Validate().ok());
}

TEST(MinHasherTest, Deterministic) {
  MinHasher h1(Params(32, 8, 7));
  MinHasher h2(Params(32, 8, 7));
  const ElementSet set{10, 20, 30, 40};
  EXPECT_EQ(h1.Sign(set), h2.Sign(set));
}

TEST(MinHasherTest, DifferentSeedsDiffer) {
  MinHasher h1(Params(32, 8, 7));
  MinHasher h2(Params(32, 8, 8));
  const ElementSet set{10, 20, 30, 40};
  EXPECT_NE(h1.Sign(set), h2.Sign(set));
}

TEST(MinHasherTest, SignatureHasKValuesWithinMask) {
  MinHasher h(Params(50, 6));
  const Signature sig = h.Sign({1, 2, 3});
  EXPECT_EQ(sig.size(), 50u);
  for (std::size_t i = 0; i < sig.size(); ++i) {
    EXPECT_LE(sig[i], h.value_mask());
  }
}

TEST(MinHasherTest, IdenticalSetsIdenticalSignatures) {
  MinHasher h(Params(64, 8));
  const ElementSet a{5, 17, 999};
  const ElementSet b{5, 17, 999};
  EXPECT_EQ(h.Sign(a), h.Sign(b));
}

TEST(MinHasherTest, OrderInvariantViaNormalization) {
  // Signatures depend only on membership, not insertion order.
  MinHasher h(Params(64, 8));
  ElementSet a{9, 4, 1};
  ElementSet b{1, 9, 4};
  NormalizeSet(a);
  NormalizeSet(b);
  EXPECT_EQ(h.Sign(a), h.Sign(b));
}

TEST(MinHasherTest, EmptySetSignatureIsSentinel) {
  MinHasher h(Params(16, 8));
  const Signature sig = h.Sign({});
  for (std::size_t i = 0; i < sig.size(); ++i) {
    EXPECT_EQ(sig[i], h.value_mask());
  }
}

TEST(MinHasherTest, SignOneMatchesSign) {
  MinHasher h(Params(20, 10));
  const ElementSet set{3, 1, 4, 1, 5};
  const Signature sig = h.Sign(set);
  for (std::size_t i = 0; i < 20; ++i) {
    EXPECT_EQ(h.SignOne(set, i), sig[i]);
  }
}

TEST(MinHasherTest, SingletonSetsCollideIffEqual) {
  MinHasher h(Params(16, 16));
  const Signature a = h.Sign({42});
  const Signature b = h.Sign({42});
  const Signature c = h.Sign({43});
  EXPECT_EQ(a, b);
  EXPECT_NE(a, c);
}

// Core property (Section 3.1): per-coordinate agreement probability equals
// the Jaccard similarity. Verified empirically over many coordinates.
TEST(MinHasherTest, AgreementEstimatesJaccard) {
  MinHasher h(Params(2000, 16, 99));  // 16 bits: negligible collisions
  struct Case {
    ElementSet a, b;
  };
  std::vector<Case> cases;
  // sim = 1/3
  cases.push_back({{1, 2}, {2, 3}});
  // sim = 0.5
  cases.push_back({{1, 2, 3}, {2, 3, 4}});
  // sim = 0.8: |inter| = 8, |union| = 10
  {
    ElementSet a, b;
    for (ElementId e = 0; e < 8; ++e) {
      a.push_back(e);
      b.push_back(e);
    }
    a.push_back(100);
    b.push_back(200);
    cases.push_back({a, b});
  }
  for (const auto& c : cases) {
    const double expected = Jaccard(c.a, c.b);
    const double est = h.Sign(c.a).AgreementFraction(h.Sign(c.b));
    // 2000 coordinates: ±3σ ≈ 3·sqrt(s(1-s)/2000) < 0.04.
    EXPECT_NEAR(est, expected, 0.04)
        << "a-size=" << c.a.size() << " b-size=" << c.b.size();
  }
}

TEST(MinHasherTest, DisjointSetsRarelyAgreeAt16Bits) {
  MinHasher h(Params(1000, 16));
  ElementSet a, b;
  for (ElementId e = 0; e < 50; ++e) {
    a.push_back(e);
    b.push_back(1000 + e);
  }
  const double est = h.Sign(a).AgreementFraction(h.Sign(b));
  EXPECT_LT(est, 0.01);  // only 2^-16 fingerprint collisions
}

// Sweep similarity levels with a parameterized property test.
class MinHashAccuracySweep : public ::testing::TestWithParam<int> {};

TEST_P(MinHashAccuracySweep, AgreementTracksSimilarity) {
  const int shared = GetParam();  // shared elements out of 20 total
  ElementSet a, b;
  for (int e = 0; e < shared; ++e) {
    a.push_back(static_cast<ElementId>(e));
    b.push_back(static_cast<ElementId>(e));
  }
  // (20 - shared) private elements each.
  for (int e = 0; e < 20 - shared; ++e) {
    a.push_back(static_cast<ElementId>(1000 + e));
    b.push_back(static_cast<ElementId>(2000 + e));
  }
  NormalizeSet(a);
  NormalizeSet(b);
  const double sim = Jaccard(a, b);
  MinHasher h(Params(3000, 16, 5));
  const double est = h.Sign(a).AgreementFraction(h.Sign(b));
  EXPECT_NEAR(est, sim, 0.035);
}

INSTANTIATE_TEST_SUITE_P(SharedElements, MinHashAccuracySweep,
                         ::testing::Values(0, 2, 5, 10, 14, 18, 20));

}  // namespace
}  // namespace ssr
