// b-bit packed signatures: packing must be lossless (the b-bit truncation
// already happened at signing time), the SWAR/popcount agreement kernel
// must count exactly what the value-by-value loop counts, and the packed
// estimator overloads must be numerically identical to the unpacked ones.

#include <cstdint>
#include <vector>

#include <gtest/gtest.h>

#include "minhash/estimator.h"
#include "minhash/min_hasher.h"
#include "minhash/packed.h"
#include "minhash/signature.h"
#include "util/random.h"

namespace ssr {
namespace {

Signature RandomSignature(Rng& rng, std::size_t k, unsigned value_bits) {
  const std::uint16_t mask =
      static_cast<std::uint16_t>((1u << value_bits) - 1u);
  Signature sig(k);
  for (std::size_t i = 0; i < k; ++i) {
    sig[i] = static_cast<std::uint16_t>(rng.Next()) & mask;
  }
  return sig;
}

// A pair that actually agrees on many coordinates: start from a copy and
// re-randomize a fraction. Pure random pairs agree ~2^-b of the time, which
// would leave the agreement path nearly untested at large b.
Signature Perturb(Rng& rng, const Signature& base, unsigned value_bits,
                  double flip_probability) {
  const std::uint16_t mask =
      static_cast<std::uint16_t>((1u << value_bits) - 1u);
  Signature out = base;
  for (std::size_t i = 0; i < out.size(); ++i) {
    if (rng.Bernoulli(flip_probability)) {
      out[i] = static_cast<std::uint16_t>(rng.Next()) & mask;
    }
  }
  return out;
}

TEST(PackedSignatureTest, PackRoundTripsEveryWidth) {
  Rng rng(31);
  for (unsigned b = 1; b <= 16; ++b) {
    for (std::size_t k : {1u, 3u, 16u, 63u, 64u, 65u, 100u}) {
      const Signature sig = RandomSignature(rng, k, b);
      const PackedSignature packed = PackedSignature::Pack(sig, b);
      ASSERT_EQ(packed.size(), k);
      ASSERT_GE(packed.lane_bits(), b);
      for (std::size_t i = 0; i < k; ++i) {
        ASSERT_EQ(packed.at(i), sig[i]) << "b=" << b << " k=" << k
                                        << " coordinate " << i;
      }
    }
  }
}

TEST(PackedSignatureTest, AgreementMatchesValueByValueCount) {
  Rng rng(32);
  for (unsigned b = 1; b <= 16; ++b) {
    for (double flip : {0.0, 0.1, 0.5, 1.0}) {
      const std::size_t k = 100;
      const Signature a = RandomSignature(rng, k, b);
      const Signature c = Perturb(rng, a, b, flip);
      std::size_t expected = 0;
      for (std::size_t i = 0; i < k; ++i) {
        if (a[i] == c[i]) ++expected;
      }
      const PackedSignature pa = PackedSignature::Pack(a, b);
      const PackedSignature pc = PackedSignature::Pack(c, b);
      ASSERT_EQ(pa.AgreementCount(pc), expected) << "b=" << b;
      ASSERT_DOUBLE_EQ(pa.AgreementFraction(pc), a.AgreementFraction(c))
          << "b=" << b;
    }
  }
}

TEST(PackedSignatureTest, MismatchedShapesCompareAsZero) {
  Rng rng(33);
  const Signature a = RandomSignature(rng, 32, 8);
  const Signature b = RandomSignature(rng, 33, 8);
  EXPECT_EQ(PackedSignature::Pack(a, 8).AgreementCount(
                PackedSignature::Pack(b, 8)),
            0u);
  // Same k, different lane widths (8 vs 16): not comparable.
  EXPECT_EQ(PackedSignature::Pack(a, 8).AgreementCount(
                PackedSignature::Pack(a, 16)),
            0u);
  EXPECT_EQ(PackedSignature().AgreementCount(PackedSignature()), 0u);
  EXPECT_EQ(PackedSignature().AgreementFraction(PackedSignature()), 0.0);
}

TEST(PackedSignatureTest, EstimatorPackedMatchesUnpacked) {
  Rng rng(34);
  for (unsigned b : {1u, 4u, 8u, 12u, 16u}) {
    SimilarityEstimator estimator(b);
    for (double flip : {0.05, 0.4, 0.9}) {
      const Signature a = RandomSignature(rng, 100, b);
      const Signature c = Perturb(rng, a, b, flip);
      const PackedSignature pa = PackedSignature::Pack(a, b);
      const PackedSignature pc = PackedSignature::Pack(c, b);
      ASSERT_DOUBLE_EQ(estimator.RawEstimate(pa, pc),
                       estimator.RawEstimate(a, c))
          << "b=" << b;
      ASSERT_DOUBLE_EQ(estimator.Estimate(pa, pc), estimator.Estimate(a, c))
          << "b=" << b;
    }
  }
}

// End to end over real signatures: pack what MinHasher produces and verify
// the packed estimate equals the unpacked one for every family.
TEST(PackedSignatureTest, RealSignaturesSurvivePacking) {
  Rng rng(35);
  for (MinHashFamilyKind kind : kAllMinHashFamilies) {
    MinHashParams params;
    params.num_hashes = 100;
    params.value_bits = 8;
    params.family = kind;
    MinHasher hasher(params);
    SimilarityEstimator estimator(params.value_bits);
    ElementSet x, y;
    for (int i = 0; i < 60; ++i) x.push_back(static_cast<ElementId>(i));
    for (int i = 30; i < 90; ++i) y.push_back(static_cast<ElementId>(i));
    const Signature sx = hasher.Sign(x), sy = hasher.Sign(y);
    const PackedSignature px = PackedSignature::Pack(sx, params.value_bits);
    const PackedSignature py = PackedSignature::Pack(sy, params.value_bits);
    EXPECT_DOUBLE_EQ(estimator.Estimate(px, py), estimator.Estimate(sx, sy))
        << MinHashFamilyName(kind);
  }
}

}  // namespace
}  // namespace ssr
