#include "minhash/signature.h"

#include <gtest/gtest.h>

namespace ssr {
namespace {

TEST(SignatureTest, DefaultIsEmpty) {
  Signature sig;
  EXPECT_TRUE(sig.empty());
  EXPECT_EQ(sig.size(), 0u);
}

TEST(SignatureTest, SizedConstructionZeroInitialized) {
  Signature sig(5);
  EXPECT_EQ(sig.size(), 5u);
  for (std::size_t i = 0; i < 5; ++i) EXPECT_EQ(sig[i], 0);
}

TEST(SignatureTest, FromValuesAndIndexing) {
  Signature sig(std::vector<std::uint16_t>{1, 2, 3});
  EXPECT_EQ(sig.size(), 3u);
  EXPECT_EQ(sig[1], 2);
  sig[1] = 9;
  EXPECT_EQ(sig[1], 9);
}

TEST(SignatureTest, EqualityIsValueBased) {
  Signature a(std::vector<std::uint16_t>{1, 2});
  Signature b(std::vector<std::uint16_t>{1, 2});
  Signature c(std::vector<std::uint16_t>{1, 3});
  EXPECT_EQ(a, b);
  EXPECT_NE(a, c);
}

TEST(SignatureTest, AgreementFractionBasic) {
  Signature a(std::vector<std::uint16_t>{1, 2, 3, 4});
  Signature b(std::vector<std::uint16_t>{1, 2, 9, 9});
  EXPECT_DOUBLE_EQ(a.AgreementFraction(b), 0.5);
  EXPECT_DOUBLE_EQ(a.AgreementFraction(a), 1.0);
}

TEST(SignatureTest, AgreementFractionMismatchedOrEmpty) {
  Signature a(std::vector<std::uint16_t>{1, 2});
  Signature b(std::vector<std::uint16_t>{1, 2, 3});
  Signature empty;
  EXPECT_DOUBLE_EQ(a.AgreementFraction(b), 0.0);
  EXPECT_DOUBLE_EQ(empty.AgreementFraction(empty), 0.0);
}

TEST(SignatureTest, AgreementSymmetric) {
  Signature a(std::vector<std::uint16_t>{4, 5, 6, 7, 8});
  Signature b(std::vector<std::uint16_t>{4, 0, 6, 0, 8});
  EXPECT_DOUBLE_EQ(a.AgreementFraction(b), b.AgreementFraction(a));
  EXPECT_DOUBLE_EQ(a.AgreementFraction(b), 0.6);
}

}  // namespace
}  // namespace ssr
