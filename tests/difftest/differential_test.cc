// Randomized differential test harness: one seeded workload — a generated
// collection, a churn phase of Insert/Erase, and mixed range queries — is
// pushed through every executor the system has:
//
//   oracle   sequential scan (baseline/sequential_scan.h, exact by
//            construction)
//   serial   one SetSimilarityIndex
//   batch    exec::BatchExecutor over that index (4 workers)
//   sharded  ShardedSetSimilarityIndex at P in {1, 2, 4, 7}, serial gather
//   routed   QueryRouter (parallel scatter + batch) at P = 4
//
// The differential contract pins down exactly what the system guarantees:
//
//   identity   every index-based executor returns the bit-identical answer.
//              Candidate membership is a pure function of signatures (the
//              hash tables fingerprint-disambiguate bucket collisions), so
//              partitioning, batching, and routing must not change results.
//   precision  every answer is a subset of the sequential-scan oracle —
//              exact Jaccard verification admits no false positives.
//   exactness  full-range [0, 1] queries (the kFullCollection plan) are
//              set-identical to the oracle. Narrower plans probe LSH
//              filters whose recall is tunably below 1 by design
//              (Section 4), so oracle-identity there would assert a
//              property the paper's scheme intentionally trades away.
//
// plus the degraded-shard phase: with one shard forced unavailable the
// sharded answers must come back tagged partial and be exactly the healthy
// answer minus the degraded shard's sids — a subset of the oracle, never a
// superset.
//
// The crash-recovery schedule folds the durability protocol (checkpoint +
// WAL, storage/recovery.h) into the same contracts: checkpoint the serial
// index, run journaled churn through an attached WAL, crash at a seeded
// byte offset of the log, recover, re-apply the journal tail the crash
// lost, and the recovered executor must be bit-identical to the one that
// never crashed — then churn and query on, with every contract intact.
//
// Every assertion prints the seed and a copy-paste repro command; pin a
// failing seed with SSR_DIFFTEST_SEED=<seed> (it replaces the default seed
// list, so the failing workload runs alone).

#include <algorithm>
#include <cstdlib>
#include <memory>
#include <sstream>
#include <string>
#include <utility>
#include <vector>

#include <gtest/gtest.h>

#include "baseline/sequential_scan.h"
#include "core/set_similarity_index.h"
#include "exec/batch_executor.h"
#include "shard/query_router.h"
#include "shard/sharded_index.h"
#include "storage/recovery.h"
#include "storage/wal.h"
#include "util/random.h"
#include "util/set_ops.h"

namespace ssr {
namespace {

constexpr std::uint32_t kShardCounts[] = {1, 2, 4, 7};

// Which signing family the whole schedule runs under. Defaults to classic
// (the digest-compatibility anchor); CI's difftest-sweep matrix crosses the
// seed loop with SSR_DIFFTEST_FAMILY in {classic, superminhash, cminhash},
// and the AllFamiliesOneSeed slice below keeps every family in tier-1.
MinHashFamilyKind DifftestFamily() {
  if (const char* env = std::getenv("SSR_DIFFTEST_FAMILY")) {
    auto parsed = MinHashFamilyFromName(env);
    if (parsed.ok()) return parsed.value();
    ADD_FAILURE() << "unknown SSR_DIFFTEST_FAMILY '" << env << "'";
  }
  return MinHashFamilyKind::kClassic;
}

std::vector<std::uint64_t> DifftestSeeds() {
  if (const char* env = std::getenv("SSR_DIFFTEST_SEED")) {
    char* end = nullptr;
    const unsigned long long pinned = std::strtoull(env, &end, 10);
    if (end != env && *end == '\0') return {pinned};
  }
  // The default tier-1 slice. CI's difftest-sweep job covers 16 seeds by
  // looping SSR_DIFFTEST_SEED over 101..116 under ASan/UBSan.
  return {101, 102, 103, 104};
}

std::string Repro(std::uint64_t seed) {
  return "repro: SSR_DIFFTEST_SEED=" + std::to_string(seed) +
         " ./tests/difftest_test"
         " --gtest_filter='*DifferentialTest*' (seed " +
         std::to_string(seed) + ")";
}

struct RangeQuery {
  ElementSet query;
  double sigma1 = 0.0;
  double sigma2 = 1.0;
};

// The workload under test, with every executor kept in lockstep. The
// oracle store backs both the sequential scan and the single index, so
// global sids stay dense and identical across all executors.
class Workload {
 public:
  explicit Workload(std::uint64_t seed,
                    MinHashFamilyKind family = DifftestFamily())
      : seed_(seed), family_(family), rng_(seed) {}

  Status BuildAll() {
    const std::size_t n = 120 + rng_.Uniform(80);
    for (std::size_t i = 0; i < n; ++i) sets_.push_back(RandomSet());

    layout_.delta = 0.4;
    layout_.points = {{0.15, FilterKind::kDissimilarity, 8, 0},
                      {0.4, FilterKind::kDissimilarity, 8, 0},
                      {0.4, FilterKind::kSimilarity, 8, 0},
                      {0.75, FilterKind::kSimilarity, 8, 0}};

    store_ = std::make_unique<SetStore>();
    for (const ElementSet& s : sets_) {
      auto sid = store_->Add(s);
      if (!sid.ok()) return sid.status();
    }
    live_.assign(sets_.size(), true);

    IndexOptions index_options;
    index_options.embedding.minhash.num_hashes = 80;
    index_options.embedding.minhash.seed = 777;
    index_options.embedding.minhash.family = family_;
    index_options.seed = 4242;
    auto single = SetSimilarityIndex::Build(*store_, layout_, index_options);
    if (!single.ok()) return single.status();
    index_ =
        std::make_unique<SetSimilarityIndex>(std::move(single).value());

    for (std::uint32_t p : kShardCounts) {
      shard::ShardedIndexOptions options;
      options.num_shards = p;
      options.index = index_options;
      auto sharded =
          shard::ShardedSetSimilarityIndex::Build(sets_, layout_, options);
      if (!sharded.ok()) return sharded.status();
      sharded_.push_back(std::make_unique<shard::ShardedSetSimilarityIndex>(
          std::move(sharded).value()));
    }
    return Status::OK();
  }

  // Random churn: erases (live, dead, and never-inserted sids) and fresh
  // inserts, applied to the store+index pair and every sharded index
  // identically. Status contracts are themselves differential assertions:
  // all executors must agree on OK vs NotFound.
  void Churn(std::size_t ops) {
    for (std::size_t op = 0; op < ops; ++op) {
      if (rng_.Bernoulli(0.45) || num_live() <= 10) {
        const SetId sid = static_cast<SetId>(sets_.size());
        sets_.push_back(RandomSet());
        live_.push_back(true);
        auto stored = store_->Add(sets_[sid]);
        ASSERT_TRUE(stored.ok()) << Repro(seed_);
        ASSERT_EQ(*stored, sid) << Repro(seed_);
        ASSERT_TRUE(index_->Insert(sid, sets_[sid]).ok()) << Repro(seed_);
        Journal(/*insert=*/true, sid);
        for (auto& sh : sharded_) {
          ASSERT_TRUE(sh->Insert(sid, sets_[sid]).ok()) << Repro(seed_);
        }
      } else {
        // Bias toward live sids but sometimes pick dead or out-of-range
        // ones: every executor must agree the erase is NotFound.
        SetId sid = static_cast<SetId>(rng_.Uniform(sets_.size() + 5));
        const bool expect_ok = sid < sets_.size() && live_[sid];
        const Status from_index = index_->Erase(sid);
        ASSERT_EQ(from_index.ok(), expect_ok)
            << from_index.ToString() << "\n" << Repro(seed_);
        if (!expect_ok) {
          ASSERT_TRUE(from_index.IsNotFound()) << Repro(seed_);
        } else {
          ASSERT_TRUE(store_->Delete(sid).ok()) << Repro(seed_);
          live_[sid] = false;
          Journal(/*insert=*/false, sid);
        }
        for (auto& sh : sharded_) {
          const Status st = sh->Erase(sid);
          ASSERT_EQ(st.ok(), expect_ok) << st.ToString() << "\n"
                                        << Repro(seed_);
          if (!expect_ok) {
            ASSERT_TRUE(st.IsNotFound()) << Repro(seed_);
          }
        }
      }
      if (::testing::Test::HasFatalFailure()) return;
    }
  }

  std::vector<RangeQuery> MakeQueries(std::size_t n) {
    std::vector<RangeQuery> queries;
    for (std::size_t t = 0; t < n; ++t) {
      RangeQuery q;
      if (rng_.Bernoulli(0.7) && !sets_.empty()) {
        q.query = sets_[rng_.Uniform(sets_.size())];
      } else {
        q.query = RandomSet();
      }
      switch (rng_.Uniform(4)) {
        case 0:  // narrow high-similarity band
          q.sigma1 = 0.6 + rng_.NextDouble() * 0.35;
          q.sigma2 = q.sigma1 + rng_.NextDouble() * (1.0 - q.sigma1);
          break;
        case 1:  // dissimilarity band
          q.sigma1 = rng_.NextDouble() * 0.2;
          q.sigma2 = q.sigma1 + rng_.NextDouble() * 0.3;
          break;
        case 2:  // full range (the kFullCollection plan)
          q.sigma1 = 0.0;
          q.sigma2 = 1.0;
          break;
        default:  // arbitrary mixed range
          q.sigma1 = rng_.NextDouble() * 0.8;
          q.sigma2 = q.sigma1 + rng_.NextDouble() * (1.0 - q.sigma1);
      }
      queries.push_back(std::move(q));
    }
    return queries;
  }

  // Runs `queries` through every executor and asserts the differential
  // contract: executor identity, precision against the oracle, full-range
  // exactness, and the QueryStats invariants.
  void CheckAll(const std::vector<RangeQuery>& queries) {
    // Batch inputs once: batch executor over the single index, router over
    // the P=4 sharded index.
    std::vector<exec::BatchQuery> batch;
    for (const RangeQuery& q : queries) {
      batch.push_back({q.query, q.sigma1, q.sigma2});
    }
    exec::BatchExecutorOptions batch_options;
    batch_options.num_threads = 4;
    exec::BatchExecutor executor(*index_, batch_options);
    const exec::BatchResult batched = executor.Run(batch);
    ASSERT_EQ(batched.failed, 0u) << Repro(seed_);

    shard::QueryRouterOptions router_options;
    router_options.num_threads = 4;
    shard::QueryRouter router(*ShardedAt(4), router_options);
    const shard::RoutedBatchResult routed = router.RunBatch(batch);
    ASSERT_EQ(routed.failed, 0u) << Repro(seed_);

    for (std::size_t i = 0; i < queries.size(); ++i) {
      const RangeQuery& q = queries[i];
      auto oracle = SequentialScanQuery(*store_, q.query, q.sigma1, q.sigma2);
      ASSERT_TRUE(oracle.ok()) << oracle.status().ToString() << "\n"
                               << Repro(seed_);
      const std::vector<SetId>& truth = oracle->sids;

      // The serial single index is the reference every other executor must
      // reproduce bit for bit.
      auto serial = index_->Query(q.query, q.sigma1, q.sigma2);
      ASSERT_TRUE(serial.ok()) << serial.status().ToString() << "\n"
                               << Repro(seed_);
      const std::vector<SetId>& reference = serial->sids;
      ASSERT_TRUE(std::includes(truth.begin(), truth.end(),
                                reference.begin(), reference.end()))
          << "serial index returned a false positive on query " << i << "\n"
          << Repro(seed_);
      if (serial->stats.plan == QueryPlanKind::kFullCollection) {
        ASSERT_EQ(reference, truth)
            << "full-range plan is exact by construction, query " << i << "\n"
            << Repro(seed_);
      }
      CheckStats(serial->stats, i, "serial");

      ASSERT_EQ(batched.results[i].sids, reference)
          << "batch executor diverged on query " << i << "\n" << Repro(seed_);
      CheckStats(batched.results[i].stats, i, "batch");

      for (std::size_t pi = 0; pi < sharded_.size(); ++pi) {
        auto sharded = sharded_[pi]->Query(q.query, q.sigma1, q.sigma2);
        ASSERT_TRUE(sharded.ok()) << sharded.status().ToString() << "\n"
                                  << Repro(seed_);
        ASSERT_EQ(sharded->sids, reference)
            << "sharded P=" << kShardCounts[pi] << " diverged on query " << i
            << "\n" << Repro(seed_);
        ASSERT_FALSE(sharded->partial) << Repro(seed_);
        CheckStats(sharded->stats, i, "sharded");
        // Sharded bookkeeping: merged counters are the per-shard sums.
        std::size_t candidates = 0, fetched = 0;
        for (const QueryStats& ps : sharded->per_shard) {
          candidates += ps.candidates;
          fetched += ps.sets_fetched;
        }
        ASSERT_EQ(sharded->stats.candidates, candidates) << Repro(seed_);
        ASSERT_EQ(sharded->stats.sets_fetched, fetched) << Repro(seed_);
      }

      ASSERT_EQ(routed.results[i].sids, reference)
          << "query router diverged on query " << i << "\n" << Repro(seed_);

      if (::testing::Test::HasFatalFailure()) return;
    }
  }

  // One shard of the P=4 index forced degraded: answers must be tagged
  // partial and equal the healthy reference answer minus the degraded
  // shard's sids (a subset of the oracle whenever that shard held matches —
  // never a superset).
  void CheckDegraded(const std::vector<RangeQuery>& queries) {
    shard::ShardedSetSimilarityIndex* sharded = ShardedAt(4);
    const std::uint32_t victim =
        static_cast<std::uint32_t>(rng_.Uniform(sharded->num_shards()));
    sharded->SetShardDegraded(victim, true);
    shard::QueryRouter router(*sharded, {});

    for (std::size_t i = 0; i < queries.size(); ++i) {
      const RangeQuery& q = queries[i];
      auto oracle = SequentialScanQuery(*store_, q.query, q.sigma1, q.sigma2);
      ASSERT_TRUE(oracle.ok()) << Repro(seed_);
      // The healthy answer (serial single index == healthy sharded, by the
      // identity contract above) minus the victim shard's sids is exactly
      // what the surviving shards can contribute.
      auto healthy = index_->Query(q.query, q.sigma1, q.sigma2);
      ASSERT_TRUE(healthy.ok()) << Repro(seed_);
      std::vector<SetId> expect;
      for (SetId sid : healthy->sids) {
        if (sharded->shard_map().ShardOf(sid) != victim) {
          expect.push_back(sid);
        }
      }

      auto serial = sharded->Query(q.query, q.sigma1, q.sigma2);
      auto routed = router.Query(q.query, q.sigma1, q.sigma2);
      ASSERT_TRUE(serial.ok()) << Repro(seed_);
      ASSERT_TRUE(routed.ok()) << Repro(seed_);
      for (const auto* r : {&*serial, &*routed}) {
        ASSERT_TRUE(r->partial) << "degraded answer must be tagged\n"
                                << Repro(seed_);
        ASSERT_TRUE(r->stats.degraded) << Repro(seed_);
        ASSERT_EQ(r->degraded_shards,
                  std::vector<std::uint32_t>{victim}) << Repro(seed_);
        ASSERT_EQ(r->sids, expect)
            << "degraded sharded answer is not oracle-minus-shard on query "
            << i << "\n" << Repro(seed_);
        ASSERT_TRUE(std::includes(oracle->sids.begin(), oracle->sids.end(),
                                  r->sids.begin(), r->sids.end()))
            << "degraded answer returned a superset\n" << Repro(seed_);
      }
      if (::testing::Test::HasFatalFailure()) return;
    }
    sharded->SetShardDegraded(victim, false);
  }

  std::size_t num_live() const {
    return static_cast<std::size_t>(
        std::count(live_.begin(), live_.end(), true));
  }

  // Starts the durability protocol on the serial executor: checkpoint its
  // current state (stable LSN 0 for this fresh log) and attach a WAL so
  // every subsequent churn mutation is logged before it applies. Churn also
  // journals each acknowledged op with the log offset its frame ends at —
  // the journal plays the part of the client's redo stream.
  void BeginDurability() {
    std::ostringstream ckpt;
    ASSERT_TRUE(WriteIndexCheckpoint(*index_, /*stable_lsn=*/0, ckpt).ok())
        << Repro(seed_);
    checkpoint_ = ckpt.str();
    wal_ = std::make_unique<WalWriter>(wal_stream_, kWalFirstLsn);
    index_->AttachWal(wal_.get());
  }

  // The crash: freeze the log at a seeded byte offset (anywhere — record
  // boundaries, torn tails, even inside the file header), recover from
  // (checkpoint, surviving prefix), re-apply the journal tail the crash
  // lost, and demand the recovered executor is bit-identical to the one
  // that never went down. The recovered store+index then *replace* the
  // originals: the rest of the schedule churns and queries on the revived
  // artifacts.
  void CrashRecoverResume() {
    index_->AttachWal(nullptr);
    const std::string full = wal_stream_.str();
    const std::size_t crash_at =
        static_cast<std::size_t>(rng_.Uniform(full.size() + 1));

    std::istringstream ckpt_in(checkpoint_);
    std::istringstream wal_in(full.substr(0, crash_at));
    auto rec = RecoverIndex(ckpt_in, &wal_in);
    ASSERT_TRUE(rec.ok()) << rec.status().ToString() << "\ncrash at byte "
                          << crash_at << "\n" << Repro(seed_);

    // Exactly the ops whose WAL frames fully landed are recovered.
    std::size_t acked = 0;
    while (acked < journal_.size() &&
           journal_[acked].end_offset <= crash_at) {
      ++acked;
    }
    ASSERT_EQ(rec->recovered_lsn, acked)
        << "crash at byte " << crash_at << "\n" << Repro(seed_);

    // Redo the lost tail from the journal. The store's dense sid allocator
    // makes replay deterministic: re-inserting in journal order must hand
    // back the original sids.
    for (std::size_t i = acked; i < journal_.size(); ++i) {
      const JournalOp& op = journal_[i];
      if (op.insert) {
        auto sid = rec->store->Add(sets_[op.sid]);
        ASSERT_TRUE(sid.ok()) << Repro(seed_);
        ASSERT_EQ(*sid, op.sid) << Repro(seed_);
        ASSERT_TRUE(rec->index->Insert(op.sid, sets_[op.sid]).ok())
            << Repro(seed_);
      } else {
        ASSERT_TRUE(rec->index->Erase(op.sid).ok()) << Repro(seed_);
        ASSERT_TRUE(rec->store->Delete(op.sid).ok()) << Repro(seed_);
      }
    }
    ASSERT_EQ(rec->index->ContentDigest(), index_->ContentDigest())
        << "recovered executor diverged from the uncrashed one, crash at "
        << "byte " << crash_at << "\n" << Repro(seed_);

    // Adopt the revived pair and resume logging on a fresh (truncated) log,
    // as a real recovery would. Every journaled op is now applied, so the
    // next LSN continues past the whole journal.
    const std::uint64_t next_lsn =
        kWalFirstLsn + static_cast<std::uint64_t>(journal_.size());
    store_ = std::move(rec->store);
    index_ = std::move(rec->index);
    journal_.clear();
    wal_stream_.str(std::string());
    wal_stream_.clear();
    wal_ = std::make_unique<WalWriter>(wal_stream_, next_lsn);
    index_->AttachWal(wal_.get());
  }

 private:
  struct JournalOp {
    bool insert = false;
    SetId sid = kInvalidSetId;
    std::size_t end_offset = 0;
  };

  void Journal(bool insert, SetId sid) {
    if (wal_ == nullptr) return;
    journal_.push_back({insert, sid, wal_->bytes_written()});
  }
  ElementSet RandomSet() {
    ElementSet s;
    const std::size_t size = 8 + rng_.Uniform(64);
    for (std::size_t j = 0; j < size; ++j) s.push_back(rng_.Uniform(5000));
    NormalizeSet(s);
    if (s.empty()) s.push_back(1);
    return s;
  }

  shard::ShardedSetSimilarityIndex* ShardedAt(std::uint32_t p) {
    for (std::size_t i = 0; i < sharded_.size(); ++i) {
      if (kShardCounts[i] == p) return sharded_[i].get();
    }
    return nullptr;
  }

  void CheckStats(const QueryStats& stats, std::size_t i, const char* who) {
    ASSERT_GE(stats.candidates, stats.results)
        << who << " verified more sids than it had candidates, query " << i
        << "\n" << Repro(seed_);
    ASSERT_LE(stats.sets_fetched, stats.candidates)
        << who << " fetched more sets than candidates, query " << i << "\n"
        << Repro(seed_);
    ASSERT_FALSE(stats.degraded)
        << who << " degraded without injected faults, query " << i << "\n"
        << Repro(seed_);
    ASSERT_EQ(stats.probe_failures, 0u) << Repro(seed_);
    ASSERT_EQ(stats.fetch_failures, 0u) << Repro(seed_);
  }

  const std::uint64_t seed_;
  const MinHashFamilyKind family_;
  Rng rng_;
  SetCollection sets_;
  std::vector<bool> live_;
  IndexLayout layout_;
  std::unique_ptr<SetStore> store_;
  std::unique_ptr<SetSimilarityIndex> index_;
  std::vector<std::unique_ptr<shard::ShardedSetSimilarityIndex>> sharded_;

  // Durability-schedule state (BeginDurability / CrashRecoverResume).
  std::string checkpoint_;
  std::ostringstream wal_stream_;
  std::unique_ptr<WalWriter> wal_;
  std::vector<JournalOp> journal_;
};

class DifferentialTest : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(DifferentialTest, AllExecutorsAgreeAcrossBuildChurnAndDegradation) {
  const std::uint64_t seed = GetParam();
  Workload w(seed);
  ASSERT_TRUE(w.BuildAll().ok()) << Repro(seed);

  // Fresh build: everything agrees.
  w.CheckAll(w.MakeQueries(12));
  if (::testing::Test::HasFatalFailure()) return;

  // Churn, then everything agrees again (twice: holes, then more holes and
  // re-grown sids).
  for (int round = 0; round < 2; ++round) {
    w.Churn(35);
    if (::testing::Test::HasFatalFailure()) return;
    w.CheckAll(w.MakeQueries(10));
    if (::testing::Test::HasFatalFailure()) return;
  }

  // One shard degraded: tagged partial subsets, never supersets.
  w.CheckDegraded(w.MakeQueries(8));
}

TEST_P(DifferentialTest, CrashRecoveryPreservesTheDifferentialContract) {
  const std::uint64_t seed = GetParam();
  Workload w(seed);
  ASSERT_TRUE(w.BuildAll().ok()) << Repro(seed);

  // Checkpoint, then churn with the WAL attached and every op journaled.
  w.BeginDurability();
  if (::testing::Test::HasFatalFailure()) return;
  w.Churn(30);
  if (::testing::Test::HasFatalFailure()) return;

  // Crash at a seeded byte of the log, recover, redo the lost tail; the
  // revived executor replaces the original.
  w.CrashRecoverResume();
  if (::testing::Test::HasFatalFailure()) return;

  // Every differential contract holds on the recovered artifacts...
  w.CheckAll(w.MakeQueries(10));
  if (::testing::Test::HasFatalFailure()) return;

  // ...and keeps holding as the recovered executor resumes churning.
  w.Churn(25);
  if (::testing::Test::HasFatalFailure()) return;
  w.CheckAll(w.MakeQueries(10));
  if (::testing::Test::HasFatalFailure()) return;
  w.CheckDegraded(w.MakeQueries(6));
}

// One seed under every signing family, including the durability schedule:
// the differential and crash-recovery contracts are family-blind, and this
// slice keeps the non-classic families covered in tier-1 even though the
// seed loop above runs under the (env-selected, default classic) family.
TEST(DifferentialFamilyTest, ContractsHoldUnderEveryFamily) {
  for (MinHashFamilyKind family : kAllMinHashFamilies) {
    SCOPED_TRACE(std::string("family ") +
                 std::string(MinHashFamilyName(family)));
    Workload w(105, family);
    ASSERT_TRUE(w.BuildAll().ok());
    w.CheckAll(w.MakeQueries(8));
    if (::testing::Test::HasFatalFailure()) return;
    w.BeginDurability();
    if (::testing::Test::HasFatalFailure()) return;
    w.Churn(20);
    if (::testing::Test::HasFatalFailure()) return;
    w.CrashRecoverResume();
    if (::testing::Test::HasFatalFailure()) return;
    w.CheckAll(w.MakeQueries(6));
    if (::testing::Test::HasFatalFailure()) return;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, DifferentialTest,
                         ::testing::ValuesIn(DifftestSeeds()),
                         [](const ::testing::TestParamInfo<std::uint64_t>& i) {
                           return "seed_" + std::to_string(i.param);
                         });

}  // namespace
}  // namespace ssr
