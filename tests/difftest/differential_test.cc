// Randomized differential test harness: one seeded workload — a generated
// collection, a churn phase of Insert/Erase, and mixed range queries — is
// pushed through every executor the system has:
//
//   oracle   sequential scan (baseline/sequential_scan.h, exact by
//            construction)
//   serial   one SetSimilarityIndex
//   batch    exec::BatchExecutor over that index (4 workers)
//   sharded  ShardedSetSimilarityIndex at P in {1, 2, 4, 7}, serial gather
//   routed   QueryRouter (parallel scatter + batch) at P = 4
//
// The differential contract pins down exactly what the system guarantees:
//
//   identity   every index-based executor returns the bit-identical answer.
//              Candidate membership is a pure function of signatures (the
//              hash tables fingerprint-disambiguate bucket collisions), so
//              partitioning, batching, and routing must not change results.
//   precision  every answer is a subset of the sequential-scan oracle —
//              exact Jaccard verification admits no false positives.
//   exactness  full-range [0, 1] queries (the kFullCollection plan) are
//              set-identical to the oracle. Narrower plans probe LSH
//              filters whose recall is tunably below 1 by design
//              (Section 4), so oracle-identity there would assert a
//              property the paper's scheme intentionally trades away.
//
// plus the degraded-shard phase: with one shard forced unavailable the
// sharded answers must come back tagged partial and be exactly the healthy
// answer minus the degraded shard's sids — a subset of the oracle, never a
// superset.
//
// The crash-recovery schedule folds the durability protocol (checkpoint +
// WAL, storage/recovery.h) into the same contracts: checkpoint the serial
// index, run journaled churn through an attached WAL, crash at a seeded
// byte offset of the log, recover, re-apply the journal tail the crash
// lost, and the recovered executor must be bit-identical to the one that
// never crashed — then churn and query on, with every contract intact.
//
// Every assertion prints the seed and a copy-paste repro command; pin a
// failing seed with SSR_DIFFTEST_SEED=<seed> (it replaces the default seed
// list, so the failing workload runs alone).

#include <algorithm>
#include <atomic>
#include <cstdlib>
#include <memory>
#include <mutex>
#include <sstream>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include <gtest/gtest.h>

#include "baseline/sequential_scan.h"
#include "core/set_similarity_index.h"
#include "exec/batch_executor.h"
#include "exec/epoch.h"
#include "shard/query_router.h"
#include "shard/sharded_index.h"
#include "storage/recovery.h"
#include "storage/wal.h"
#include "util/random.h"
#include "util/set_ops.h"

namespace ssr {
namespace {

constexpr std::uint32_t kShardCounts[] = {1, 2, 4, 7};

// Which signing family the whole schedule runs under. Defaults to classic
// (the digest-compatibility anchor); CI's difftest-sweep matrix crosses the
// seed loop with SSR_DIFFTEST_FAMILY in {classic, superminhash, cminhash},
// and the AllFamiliesOneSeed slice below keeps every family in tier-1.
MinHashFamilyKind DifftestFamily() {
  if (const char* env = std::getenv("SSR_DIFFTEST_FAMILY")) {
    auto parsed = MinHashFamilyFromName(env);
    if (parsed.ok()) return parsed.value();
    ADD_FAILURE() << "unknown SSR_DIFFTEST_FAMILY '" << env << "'";
  }
  return MinHashFamilyKind::kClassic;
}

std::vector<std::uint64_t> DifftestSeeds() {
  if (const char* env = std::getenv("SSR_DIFFTEST_SEED")) {
    char* end = nullptr;
    const unsigned long long pinned = std::strtoull(env, &end, 10);
    if (end != env && *end == '\0') return {pinned};
  }
  // The default tier-1 slice. CI's difftest-sweep job covers 16 seeds by
  // looping SSR_DIFFTEST_SEED over 101..116 under ASan/UBSan.
  return {101, 102, 103, 104};
}

std::string Repro(std::uint64_t seed) {
  return "repro: SSR_DIFFTEST_SEED=" + std::to_string(seed) +
         " ./tests/difftest_test"
         " --gtest_filter='*DifferentialTest*' (seed " +
         std::to_string(seed) + ")";
}

struct RangeQuery {
  ElementSet query;
  double sigma1 = 0.0;
  double sigma2 = 1.0;
};

// The workload under test, with every executor kept in lockstep. The
// oracle store backs both the sequential scan and the single index, so
// global sids stay dense and identical across all executors.
class Workload {
 public:
  explicit Workload(std::uint64_t seed,
                    MinHashFamilyKind family = DifftestFamily())
      : seed_(seed), family_(family), rng_(seed) {}

  Status BuildAll() {
    const std::size_t n = 120 + rng_.Uniform(80);
    for (std::size_t i = 0; i < n; ++i) sets_.push_back(RandomSet());

    layout_.delta = 0.4;
    layout_.points = {{0.15, FilterKind::kDissimilarity, 8, 0},
                      {0.4, FilterKind::kDissimilarity, 8, 0},
                      {0.4, FilterKind::kSimilarity, 8, 0},
                      {0.75, FilterKind::kSimilarity, 8, 0}};

    store_ = std::make_unique<SetStore>();
    for (const ElementSet& s : sets_) {
      auto sid = store_->Add(s);
      if (!sid.ok()) return sid.status();
    }
    live_.assign(sets_.size(), true);

    IndexOptions index_options;
    index_options.embedding.minhash.num_hashes = 80;
    index_options.embedding.minhash.seed = 777;
    index_options.embedding.minhash.family = family_;
    index_options.seed = 4242;
    auto single = SetSimilarityIndex::Build(*store_, layout_, index_options);
    if (!single.ok()) return single.status();
    index_ =
        std::make_unique<SetSimilarityIndex>(std::move(single).value());

    for (std::uint32_t p : kShardCounts) {
      shard::ShardedIndexOptions options;
      options.num_shards = p;
      options.index = index_options;
      auto sharded =
          shard::ShardedSetSimilarityIndex::Build(sets_, layout_, options);
      if (!sharded.ok()) return sharded.status();
      sharded_.push_back(std::make_unique<shard::ShardedSetSimilarityIndex>(
          std::move(sharded).value()));
    }
    return Status::OK();
  }

  // Random churn: erases (live, dead, and never-inserted sids) and fresh
  // inserts, applied to the store+index pair and every sharded index
  // identically. Status contracts are themselves differential assertions:
  // all executors must agree on OK vs NotFound.
  void Churn(std::size_t ops) {
    for (std::size_t op = 0; op < ops; ++op) {
      if (rng_.Bernoulli(0.45) || num_live() <= 10) {
        const SetId sid = static_cast<SetId>(sets_.size());
        sets_.push_back(RandomSet());
        live_.push_back(true);
        auto stored = store_->Add(sets_[sid]);
        ASSERT_TRUE(stored.ok()) << Repro(seed_);
        ASSERT_EQ(*stored, sid) << Repro(seed_);
        ASSERT_TRUE(index_->Insert(sid, sets_[sid]).ok()) << Repro(seed_);
        Journal(/*insert=*/true, sid);
        for (auto& sh : sharded_) {
          ASSERT_TRUE(sh->Insert(sid, sets_[sid]).ok()) << Repro(seed_);
        }
      } else {
        // Bias toward live sids but sometimes pick dead or out-of-range
        // ones: every executor must agree the erase is NotFound.
        SetId sid = static_cast<SetId>(rng_.Uniform(sets_.size() + 5));
        const bool expect_ok = sid < sets_.size() && live_[sid];
        const Status from_index = index_->Erase(sid);
        ASSERT_EQ(from_index.ok(), expect_ok)
            << from_index.ToString() << "\n" << Repro(seed_);
        if (!expect_ok) {
          ASSERT_TRUE(from_index.IsNotFound()) << Repro(seed_);
        } else {
          ASSERT_TRUE(store_->Delete(sid).ok()) << Repro(seed_);
          live_[sid] = false;
          Journal(/*insert=*/false, sid);
        }
        for (auto& sh : sharded_) {
          const Status st = sh->Erase(sid);
          ASSERT_EQ(st.ok(), expect_ok) << st.ToString() << "\n"
                                        << Repro(seed_);
          if (!expect_ok) {
            ASSERT_TRUE(st.IsNotFound()) << Repro(seed_);
          }
        }
      }
      if (::testing::Test::HasFatalFailure()) return;
    }
  }

  std::vector<RangeQuery> MakeQueries(std::size_t n) {
    std::vector<RangeQuery> queries;
    for (std::size_t t = 0; t < n; ++t) {
      RangeQuery q;
      if (rng_.Bernoulli(0.7) && !sets_.empty()) {
        q.query = sets_[rng_.Uniform(sets_.size())];
      } else {
        q.query = RandomSet();
      }
      switch (rng_.Uniform(4)) {
        case 0:  // narrow high-similarity band
          q.sigma1 = 0.6 + rng_.NextDouble() * 0.35;
          q.sigma2 = q.sigma1 + rng_.NextDouble() * (1.0 - q.sigma1);
          break;
        case 1:  // dissimilarity band
          q.sigma1 = rng_.NextDouble() * 0.2;
          q.sigma2 = q.sigma1 + rng_.NextDouble() * 0.3;
          break;
        case 2:  // full range (the kFullCollection plan)
          q.sigma1 = 0.0;
          q.sigma2 = 1.0;
          break;
        default:  // arbitrary mixed range
          q.sigma1 = rng_.NextDouble() * 0.8;
          q.sigma2 = q.sigma1 + rng_.NextDouble() * (1.0 - q.sigma1);
      }
      queries.push_back(std::move(q));
    }
    return queries;
  }

  // Runs `queries` through every executor and asserts the differential
  // contract: executor identity, precision against the oracle, full-range
  // exactness, and the QueryStats invariants.
  void CheckAll(const std::vector<RangeQuery>& queries) {
    // Batch inputs once: batch executor over the single index, router over
    // the P=4 sharded index.
    std::vector<exec::BatchQuery> batch;
    for (const RangeQuery& q : queries) {
      batch.push_back({q.query, q.sigma1, q.sigma2});
    }
    exec::BatchExecutorOptions batch_options;
    batch_options.num_threads = 4;
    exec::BatchExecutor executor(*index_, batch_options);
    const exec::BatchResult batched = executor.Run(batch);
    ASSERT_EQ(batched.failed, 0u) << Repro(seed_);

    shard::QueryRouterOptions router_options;
    router_options.num_threads = 4;
    shard::QueryRouter router(*ShardedAt(4), router_options);
    const shard::RoutedBatchResult routed = router.RunBatch(batch);
    ASSERT_EQ(routed.failed, 0u) << Repro(seed_);

    for (std::size_t i = 0; i < queries.size(); ++i) {
      const RangeQuery& q = queries[i];
      auto oracle = SequentialScanQuery(*store_, q.query, q.sigma1, q.sigma2);
      ASSERT_TRUE(oracle.ok()) << oracle.status().ToString() << "\n"
                               << Repro(seed_);
      const std::vector<SetId>& truth = oracle->sids;

      // The serial single index is the reference every other executor must
      // reproduce bit for bit.
      auto serial = index_->Query(q.query, q.sigma1, q.sigma2);
      ASSERT_TRUE(serial.ok()) << serial.status().ToString() << "\n"
                               << Repro(seed_);
      const std::vector<SetId>& reference = serial->sids;
      ASSERT_TRUE(std::includes(truth.begin(), truth.end(),
                                reference.begin(), reference.end()))
          << "serial index returned a false positive on query " << i << "\n"
          << Repro(seed_);
      if (serial->stats.plan == QueryPlanKind::kFullCollection) {
        ASSERT_EQ(reference, truth)
            << "full-range plan is exact by construction, query " << i << "\n"
            << Repro(seed_);
      }
      CheckStats(serial->stats, i, "serial");

      ASSERT_EQ(batched.results[i].sids, reference)
          << "batch executor diverged on query " << i << "\n" << Repro(seed_);
      CheckStats(batched.results[i].stats, i, "batch");

      for (std::size_t pi = 0; pi < sharded_.size(); ++pi) {
        auto sharded = sharded_[pi]->Query(q.query, q.sigma1, q.sigma2);
        ASSERT_TRUE(sharded.ok()) << sharded.status().ToString() << "\n"
                                  << Repro(seed_);
        ASSERT_EQ(sharded->sids, reference)
            << "sharded P=" << kShardCounts[pi] << " diverged on query " << i
            << "\n" << Repro(seed_);
        ASSERT_FALSE(sharded->partial) << Repro(seed_);
        CheckStats(sharded->stats, i, "sharded");
        // Sharded bookkeeping: merged counters are the per-shard sums.
        std::size_t candidates = 0, fetched = 0;
        for (const QueryStats& ps : sharded->per_shard) {
          candidates += ps.candidates;
          fetched += ps.sets_fetched;
        }
        ASSERT_EQ(sharded->stats.candidates, candidates) << Repro(seed_);
        ASSERT_EQ(sharded->stats.sets_fetched, fetched) << Repro(seed_);
      }

      ASSERT_EQ(routed.results[i].sids, reference)
          << "query router diverged on query " << i << "\n" << Repro(seed_);

      if (::testing::Test::HasFatalFailure()) return;
    }
  }

  // One shard of the P=4 index forced degraded: answers must be tagged
  // partial and equal the healthy reference answer minus the degraded
  // shard's sids (a subset of the oracle whenever that shard held matches —
  // never a superset).
  void CheckDegraded(const std::vector<RangeQuery>& queries) {
    shard::ShardedSetSimilarityIndex* sharded = ShardedAt(4);
    const std::uint32_t victim =
        static_cast<std::uint32_t>(rng_.Uniform(sharded->num_shards()));
    sharded->SetShardDegraded(victim, true);
    shard::QueryRouter router(*sharded, {});

    for (std::size_t i = 0; i < queries.size(); ++i) {
      const RangeQuery& q = queries[i];
      auto oracle = SequentialScanQuery(*store_, q.query, q.sigma1, q.sigma2);
      ASSERT_TRUE(oracle.ok()) << Repro(seed_);
      // The healthy answer (serial single index == healthy sharded, by the
      // identity contract above) minus the victim shard's sids is exactly
      // what the surviving shards can contribute.
      auto healthy = index_->Query(q.query, q.sigma1, q.sigma2);
      ASSERT_TRUE(healthy.ok()) << Repro(seed_);
      std::vector<SetId> expect;
      for (SetId sid : healthy->sids) {
        if (sharded->shard_map().ShardOf(sid) != victim) {
          expect.push_back(sid);
        }
      }

      auto serial = sharded->Query(q.query, q.sigma1, q.sigma2);
      auto routed = router.Query(q.query, q.sigma1, q.sigma2);
      ASSERT_TRUE(serial.ok()) << Repro(seed_);
      ASSERT_TRUE(routed.ok()) << Repro(seed_);
      for (const auto* r : {&*serial, &*routed}) {
        ASSERT_TRUE(r->partial) << "degraded answer must be tagged\n"
                                << Repro(seed_);
        ASSERT_TRUE(r->stats.degraded) << Repro(seed_);
        ASSERT_EQ(r->degraded_shards,
                  std::vector<std::uint32_t>{victim}) << Repro(seed_);
        ASSERT_EQ(r->sids, expect)
            << "degraded sharded answer is not oracle-minus-shard on query "
            << i << "\n" << Repro(seed_);
        ASSERT_TRUE(std::includes(oracle->sids.begin(), oracle->sids.end(),
                                  r->sids.begin(), r->sids.end()))
            << "degraded answer returned a superset\n" << Repro(seed_);
      }
      if (::testing::Test::HasFatalFailure()) return;
    }
    sharded->SetShardDegraded(victim, false);
  }

  std::size_t num_live() const {
    return static_cast<std::size_t>(
        std::count(live_.begin(), live_.end(), true));
  }

  // Starts the durability protocol on the serial executor: checkpoint its
  // current state (stable LSN 0 for this fresh log) and attach a WAL so
  // every subsequent churn mutation is logged before it applies. Churn also
  // journals each acknowledged op with the log offset its frame ends at —
  // the journal plays the part of the client's redo stream.
  void BeginDurability() {
    std::ostringstream ckpt;
    ASSERT_TRUE(WriteIndexCheckpoint(*index_, /*stable_lsn=*/0, ckpt).ok())
        << Repro(seed_);
    checkpoint_ = ckpt.str();
    wal_ = std::make_unique<WalWriter>(wal_stream_, kWalFirstLsn);
    index_->AttachWal(wal_.get());
  }

  // The crash: freeze the log at a seeded byte offset (anywhere — record
  // boundaries, torn tails, even inside the file header), recover from
  // (checkpoint, surviving prefix), re-apply the journal tail the crash
  // lost, and demand the recovered executor is bit-identical to the one
  // that never went down. The recovered store+index then *replace* the
  // originals: the rest of the schedule churns and queries on the revived
  // artifacts.
  void CrashRecoverResume() {
    index_->AttachWal(nullptr);
    const std::string full = wal_stream_.str();
    const std::size_t crash_at =
        static_cast<std::size_t>(rng_.Uniform(full.size() + 1));

    std::istringstream ckpt_in(checkpoint_);
    std::istringstream wal_in(full.substr(0, crash_at));
    auto rec = RecoverIndex(ckpt_in, &wal_in);
    ASSERT_TRUE(rec.ok()) << rec.status().ToString() << "\ncrash at byte "
                          << crash_at << "\n" << Repro(seed_);

    // Exactly the ops whose WAL frames fully landed are recovered.
    std::size_t acked = 0;
    while (acked < journal_.size() &&
           journal_[acked].end_offset <= crash_at) {
      ++acked;
    }
    ASSERT_EQ(rec->recovered_lsn, acked)
        << "crash at byte " << crash_at << "\n" << Repro(seed_);

    // Redo the lost tail from the journal. The store's dense sid allocator
    // makes replay deterministic: re-inserting in journal order must hand
    // back the original sids.
    for (std::size_t i = acked; i < journal_.size(); ++i) {
      const JournalOp& op = journal_[i];
      if (op.insert) {
        auto sid = rec->store->Add(sets_[op.sid]);
        ASSERT_TRUE(sid.ok()) << Repro(seed_);
        ASSERT_EQ(*sid, op.sid) << Repro(seed_);
        ASSERT_TRUE(rec->index->Insert(op.sid, sets_[op.sid]).ok())
            << Repro(seed_);
      } else {
        ASSERT_TRUE(rec->index->Erase(op.sid).ok()) << Repro(seed_);
        ASSERT_TRUE(rec->store->Delete(op.sid).ok()) << Repro(seed_);
      }
    }
    ASSERT_EQ(rec->index->ContentDigest(), index_->ContentDigest())
        << "recovered executor diverged from the uncrashed one, crash at "
        << "byte " << crash_at << "\n" << Repro(seed_);

    // Adopt the revived pair and resume logging on a fresh (truncated) log,
    // as a real recovery would. Every journaled op is now applied, so the
    // next LSN continues past the whole journal.
    const std::uint64_t next_lsn =
        kWalFirstLsn + static_cast<std::uint64_t>(journal_.size());
    store_ = std::move(rec->store);
    index_ = std::move(rec->index);
    journal_.clear();
    wal_stream_.str(std::string());
    wal_stream_.clear();
    wal_ = std::make_unique<WalWriter>(wal_stream_, next_lsn);
    index_->AttachWal(wal_.get());
  }

 private:
  struct JournalOp {
    bool insert = false;
    SetId sid = kInvalidSetId;
    std::size_t end_offset = 0;
  };

  void Journal(bool insert, SetId sid) {
    if (wal_ == nullptr) return;
    journal_.push_back({insert, sid, wal_->bytes_written()});
  }
  ElementSet RandomSet() {
    ElementSet s;
    const std::size_t size = 8 + rng_.Uniform(64);
    for (std::size_t j = 0; j < size; ++j) s.push_back(rng_.Uniform(5000));
    NormalizeSet(s);
    if (s.empty()) s.push_back(1);
    return s;
  }

  shard::ShardedSetSimilarityIndex* ShardedAt(std::uint32_t p) {
    for (std::size_t i = 0; i < sharded_.size(); ++i) {
      if (kShardCounts[i] == p) return sharded_[i].get();
    }
    return nullptr;
  }

  void CheckStats(const QueryStats& stats, std::size_t i, const char* who) {
    ASSERT_GE(stats.candidates, stats.results)
        << who << " verified more sids than it had candidates, query " << i
        << "\n" << Repro(seed_);
    ASSERT_LE(stats.sets_fetched, stats.candidates)
        << who << " fetched more sets than candidates, query " << i << "\n"
        << Repro(seed_);
    ASSERT_FALSE(stats.degraded)
        << who << " degraded without injected faults, query " << i << "\n"
        << Repro(seed_);
    ASSERT_EQ(stats.probe_failures, 0u) << Repro(seed_);
    ASSERT_EQ(stats.fetch_failures, 0u) << Repro(seed_);
  }

  const std::uint64_t seed_;
  const MinHashFamilyKind family_;
  Rng rng_;
  SetCollection sets_;
  std::vector<bool> live_;
  IndexLayout layout_;
  std::unique_ptr<SetStore> store_;
  std::unique_ptr<SetSimilarityIndex> index_;
  std::vector<std::unique_ptr<shard::ShardedSetSimilarityIndex>> sharded_;

  // Durability-schedule state (BeginDurability / CrashRecoverResume).
  std::string checkpoint_;
  std::ostringstream wal_stream_;
  std::unique_ptr<WalWriter> wal_;
  std::vector<JournalOp> journal_;
};

// The concurrent-churn schedule: W writer threads mutate the oracle store,
// the single index, and one sharded index in lockstep (each op under one
// op mutex, so the executors apply the identical op sequence), R reader
// threads query both executors continuously, and one driver thread runs
// online rebalances (grow P=3 -> 5, shrink back to 3, repeating) — all
// concurrently. While the churn runs, readers hold the weak contracts the
// live system guarantees: every answer is well-formed (sorted, unique, no
// invented sid), queries never error, and an answer that overlapped a
// rebalance is tagged. After the threads quiesce (joins + epoch Quiesce)
// the full differential contract must hold again on the settled state.
class ChurnSchedule {
 public:
  explicit ChurnSchedule(std::uint64_t seed)
      : seed_(seed), rng_(seed ^ 0xc4u) {}

  Status Build() {
    const std::size_t n = 100 + rng_.Uniform(60);
    layout_.delta = 0.4;
    layout_.points = {{0.15, FilterKind::kDissimilarity, 8, 0},
                      {0.4, FilterKind::kDissimilarity, 8, 0},
                      {0.4, FilterKind::kSimilarity, 8, 0},
                      {0.75, FilterKind::kSimilarity, 8, 0}};
    store_ = std::make_unique<SetStore>();
    for (std::size_t i = 0; i < n; ++i) {
      sets_.push_back(RandomSet(rng_));
      auto sid = store_->Add(sets_.back());
      if (!sid.ok()) return sid.status();
    }
    live_.assign(n, true);
    bound_.store(n);

    IndexOptions index_options;
    index_options.embedding.minhash.num_hashes = 80;
    index_options.embedding.minhash.seed = 777;
    index_options.embedding.minhash.family = DifftestFamily();
    index_options.seed = 4242;
    auto single = SetSimilarityIndex::Build(*store_, layout_, index_options);
    if (!single.ok()) return single.status();
    index_ = std::make_unique<SetSimilarityIndex>(std::move(single).value());
    index_->EnableConcurrentWrites(&em_);

    shard::ShardedIndexOptions sharded_options;
    sharded_options.num_shards = 3;
    sharded_options.index = index_options;
    auto sharded =
        shard::ShardedSetSimilarityIndex::Build(sets_, layout_,
                                                sharded_options);
    if (!sharded.ok()) return sharded.status();
    sharded_ = std::make_unique<shard::ShardedSetSimilarityIndex>(
        std::move(sharded).value());
    sharded_->EnableConcurrentWrites(&em_);
    return Status::OK();
  }

  // W writers + R readers + one rebalance driver, all concurrent. Joins
  // everything and quiesces the epoch manager before returning.
  void Run(int writers, int readers, std::size_t ops_per_writer) {
    std::atomic<bool> readers_stop{false};
    std::atomic<int> writers_live{writers};
    std::vector<std::thread> threads;

    for (int w = 0; w < writers; ++w) {
      threads.emplace_back([&, w] {
        Rng wrng(seed_ * 31 + w);
        for (std::size_t i = 0; i < ops_per_writer; ++i) {
          ApplyOneOp(wrng);
          if (::testing::Test::HasFatalFailure()) break;
        }
        writers_live.fetch_sub(1);
      });
    }

    for (int r = 0; r < readers; ++r) {
      threads.emplace_back([&, r] {
        Rng rrng(seed_ * 77 + r);
        shard::QueryRouterOptions router_options;
        router_options.num_threads = 2;
        shard::QueryRouter router(*sharded_, router_options);
        while (!readers_stop.load(std::memory_order_relaxed)) {
          const ElementSet probe = RandomSet(rrng);
          const double lo =
              rrng.Bernoulli(0.4) ? 0.0 : rrng.NextDouble() * 0.7;

          auto serial = index_->Query(probe, lo, 1.0);
          ASSERT_TRUE(serial.ok()) << serial.status().ToString() << "\n"
                                   << Repro(seed_);
          CheckWellFormed(serial->sids);

          auto sharded = sharded_->Query(probe, lo, 1.0);
          auto routed = router.Query(probe, lo, 1.0);
          for (const auto* res : {&sharded, &routed}) {
            ASSERT_TRUE(res->ok()) << res->status().ToString() << "\n"
                                   << Repro(seed_);
            CheckWellFormed((*res)->sids);
            if ((*res)->rebalancing) {
              ASSERT_TRUE((*res)->partial)
                  << "rebalancing answers must also be tagged partial\n"
                  << Repro(seed_);
              tagged_answers_.fetch_add(1, std::memory_order_relaxed);
            }
          }
          if (::testing::Test::HasFatalFailure()) return;
        }
      });
    }

    // The rebalance driver: grow/shrink cycles while the writers churn (at
    // least one full cycle, bounded so a fast churn cannot spin forever).
    threads.emplace_back([&] {
      for (int cycle = 0; cycle < 6; ++cycle) {
        for (std::uint32_t target : {5u, 3u}) {
          ASSERT_TRUE(sharded_->BeginRebalance(target).ok()) << Repro(seed_);
          for (;;) {
            auto remaining = sharded_->StepRebalance(2);
            ASSERT_TRUE(remaining.ok()) << remaining.status().ToString()
                                        << "\n" << Repro(seed_);
            if (*remaining == 0) break;
            std::this_thread::yield();
          }
          ASSERT_TRUE(sharded_->FinishRebalance().ok()) << Repro(seed_);
          if (::testing::Test::HasFatalFailure()) return;
        }
        if (writers_live.load() == 0) break;
      }
    });

    for (int w = 0; w < writers; ++w) threads[w].join();
    threads.back().join();  // the driver
    readers_stop.store(true);
    for (std::size_t t = writers; t + 1 < threads.size(); ++t) {
      threads[t].join();
    }
    em_.Quiesce();
  }

  // The settled re-check: the full differential contract on the artifacts
  // the churn left behind — identity across executors, precision against
  // the sequential-scan oracle, full-range exactness, no stray tags.
  void CheckSettled(std::size_t num_queries) {
    EXPECT_FALSE(sharded_->rebalancing()) << Repro(seed_);
    EXPECT_EQ(sharded_->num_shards(), 3u) << Repro(seed_);
    std::size_t live_count = 0;
    for (bool alive : live_) live_count += alive ? 1 : 0;
    EXPECT_EQ(index_->num_live_sets(), live_count) << Repro(seed_);
    EXPECT_EQ(sharded_->num_live_sets(), live_count) << Repro(seed_);

    shard::QueryRouter router(*sharded_, {});
    for (std::size_t i = 0; i < num_queries; ++i) {
      const ElementSet probe = rng_.Bernoulli(0.7)
                                   ? sets_[rng_.Uniform(sets_.size())]
                                   : RandomSet(rng_);
      const double lo = rng_.Bernoulli(0.4) ? 0.0 : rng_.NextDouble() * 0.7;
      const double hi =
          lo == 0.0 ? 1.0 : lo + rng_.NextDouble() * (1.0 - lo);

      auto oracle = SequentialScanQuery(*store_, probe, lo, hi);
      ASSERT_TRUE(oracle.ok()) << Repro(seed_);
      auto serial = index_->Query(probe, lo, hi);
      ASSERT_TRUE(serial.ok()) << serial.status().ToString() << "\n"
                               << Repro(seed_);
      const std::vector<SetId>& reference = serial->sids;
      ASSERT_TRUE(std::includes(oracle->sids.begin(), oracle->sids.end(),
                                reference.begin(), reference.end()))
          << "false positive after churn quiesced, query " << i << "\n"
          << Repro(seed_);
      if (serial->stats.plan == QueryPlanKind::kFullCollection) {
        ASSERT_EQ(reference, oracle->sids)
            << "full-range inexact after churn quiesced, query " << i << "\n"
            << Repro(seed_);
      }

      auto sharded = sharded_->Query(probe, lo, hi);
      auto routed = router.Query(probe, lo, hi);
      for (const auto* res : {&sharded, &routed}) {
        ASSERT_TRUE(res->ok()) << res->status().ToString() << "\n"
                               << Repro(seed_);
        ASSERT_EQ((*res)->sids, reference)
            << "sharded executor diverged after churn quiesced, query " << i
            << "\n" << Repro(seed_);
        ASSERT_FALSE((*res)->partial) << Repro(seed_);
        ASSERT_FALSE((*res)->rebalancing) << Repro(seed_);
      }
      if (::testing::Test::HasFatalFailure()) return;
    }
  }

  std::uint64_t tagged_answers() const { return tagged_answers_.load(); }

 private:
  // One lockstep mutation: ~60% fresh insert, else erase a random live
  // sid. Status agreement across executors is itself a differential
  // assertion.
  void ApplyOneOp(Rng& wrng) {
    std::lock_guard<std::mutex> lock(op_mu_);
    std::size_t live_count = 0;
    for (bool alive : live_) live_count += alive ? 1 : 0;
    if (live_count <= 10 || wrng.Bernoulli(0.6)) {
      const SetId sid = static_cast<SetId>(sets_.size());
      sets_.push_back(RandomSet(wrng));
      live_.push_back(true);
      // Publish the bound before the sid can surface in any answer.
      bound_.store(sets_.size(), std::memory_order_seq_cst);
      auto stored = store_->Add(sets_.back());
      ASSERT_TRUE(stored.ok()) << Repro(seed_);
      ASSERT_EQ(*stored, sid) << Repro(seed_);
      ASSERT_TRUE(index_->Insert(sid, sets_.back()).ok()) << Repro(seed_);
      ASSERT_TRUE(sharded_->Insert(sid, sets_.back()).ok()) << Repro(seed_);
    } else {
      SetId sid = static_cast<SetId>(wrng.Uniform(sets_.size()));
      while (!live_[sid]) sid = static_cast<SetId>(wrng.Uniform(sets_.size()));
      ASSERT_TRUE(index_->Erase(sid).ok()) << Repro(seed_);
      ASSERT_TRUE(store_->Delete(sid).ok()) << Repro(seed_);
      ASSERT_TRUE(sharded_->Erase(sid).ok()) << Repro(seed_);
      live_[sid] = false;
    }
  }

  // Weak reader contract under live churn: sorted, unique, and no sid
  // beyond the allocation bound at answer time (an invented sid).
  void CheckWellFormed(const std::vector<SetId>& sids) {
    ASSERT_TRUE(std::is_sorted(sids.begin(), sids.end())) << Repro(seed_);
    ASSERT_TRUE(std::adjacent_find(sids.begin(), sids.end()) == sids.end())
        << "duplicate sid in a concurrent answer\n" << Repro(seed_);
    const std::size_t bound = bound_.load(std::memory_order_seq_cst);
    if (!sids.empty()) {
      ASSERT_LT(sids.back(), bound)
          << "answer invented a sid that was never allocated\n"
          << Repro(seed_);
    }
  }

  static ElementSet RandomSet(Rng& rng) {
    ElementSet s;
    const std::size_t size = 8 + rng.Uniform(64);
    for (std::size_t j = 0; j < size; ++j) s.push_back(rng.Uniform(5000));
    NormalizeSet(s);
    if (s.empty()) s.push_back(1);
    return s;
  }

  const std::uint64_t seed_;
  Rng rng_;
  exec::EpochManager em_;  // declared before the indexes it outlives
  IndexLayout layout_;
  SetCollection sets_;        // op_mu_ during Run
  std::vector<bool> live_;    // op_mu_ during Run
  std::atomic<std::size_t> bound_{0};
  std::unique_ptr<SetStore> store_;
  std::unique_ptr<SetSimilarityIndex> index_;
  std::unique_ptr<shard::ShardedSetSimilarityIndex> sharded_;
  std::mutex op_mu_;
  std::atomic<std::uint64_t> tagged_answers_{0};
};

class DifferentialTest : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(DifferentialTest, AllExecutorsAgreeAcrossBuildChurnAndDegradation) {
  const std::uint64_t seed = GetParam();
  Workload w(seed);
  ASSERT_TRUE(w.BuildAll().ok()) << Repro(seed);

  // Fresh build: everything agrees.
  w.CheckAll(w.MakeQueries(12));
  if (::testing::Test::HasFatalFailure()) return;

  // Churn, then everything agrees again (twice: holes, then more holes and
  // re-grown sids).
  for (int round = 0; round < 2; ++round) {
    w.Churn(35);
    if (::testing::Test::HasFatalFailure()) return;
    w.CheckAll(w.MakeQueries(10));
    if (::testing::Test::HasFatalFailure()) return;
  }

  // One shard degraded: tagged partial subsets, never supersets.
  w.CheckDegraded(w.MakeQueries(8));
}

TEST_P(DifferentialTest, CrashRecoveryPreservesTheDifferentialContract) {
  const std::uint64_t seed = GetParam();
  Workload w(seed);
  ASSERT_TRUE(w.BuildAll().ok()) << Repro(seed);

  // Checkpoint, then churn with the WAL attached and every op journaled.
  w.BeginDurability();
  if (::testing::Test::HasFatalFailure()) return;
  w.Churn(30);
  if (::testing::Test::HasFatalFailure()) return;

  // Crash at a seeded byte of the log, recover, redo the lost tail; the
  // revived executor replaces the original.
  w.CrashRecoverResume();
  if (::testing::Test::HasFatalFailure()) return;

  // Every differential contract holds on the recovered artifacts...
  w.CheckAll(w.MakeQueries(10));
  if (::testing::Test::HasFatalFailure()) return;

  // ...and keeps holding as the recovered executor resumes churning.
  w.Churn(25);
  if (::testing::Test::HasFatalFailure()) return;
  w.CheckAll(w.MakeQueries(10));
  if (::testing::Test::HasFatalFailure()) return;
  w.CheckDegraded(w.MakeQueries(6));
}

// The concurrent-churn schedule: writers, readers, and a rebalance driver
// race for real, then the harness quiesces and re-checks the full
// differential contract. This is the live-mutability pin: epoch-guarded
// readers never see a torn structure (TSan/ASan enforce that), never an
// invented or duplicated sid (asserted live), and the settled state is
// indistinguishable from having applied the same ops serially.
TEST_P(DifferentialTest, ConcurrentChurnWithRebalanceSettlesToTheContract) {
  const std::uint64_t seed = GetParam();
  ChurnSchedule schedule(seed);
  ASSERT_TRUE(schedule.Build().ok()) << Repro(seed);

  schedule.Run(/*writers=*/2, /*readers=*/2, /*ops_per_writer=*/45);
  if (::testing::Test::HasFatalFailure()) return;

  schedule.CheckSettled(12);
  if (::testing::Test::HasFatalFailure()) return;

  // A second churn round against the settled (post-rebalance) topology,
  // then the contract again: mutability keeps working after the shard set
  // has been grown and shrunk under load.
  schedule.Run(/*writers=*/2, /*readers=*/2, /*ops_per_writer=*/25);
  if (::testing::Test::HasFatalFailure()) return;
  schedule.CheckSettled(8);
}

// One seed under every signing family, including the durability schedule:
// the differential and crash-recovery contracts are family-blind, and this
// slice keeps the non-classic families covered in tier-1 even though the
// seed loop above runs under the (env-selected, default classic) family.
TEST(DifferentialFamilyTest, ContractsHoldUnderEveryFamily) {
  for (MinHashFamilyKind family : kAllMinHashFamilies) {
    SCOPED_TRACE(std::string("family ") +
                 std::string(MinHashFamilyName(family)));
    Workload w(105, family);
    ASSERT_TRUE(w.BuildAll().ok());
    w.CheckAll(w.MakeQueries(8));
    if (::testing::Test::HasFatalFailure()) return;
    w.BeginDurability();
    if (::testing::Test::HasFatalFailure()) return;
    w.Churn(20);
    if (::testing::Test::HasFatalFailure()) return;
    w.CrashRecoverResume();
    if (::testing::Test::HasFatalFailure()) return;
    w.CheckAll(w.MakeQueries(6));
    if (::testing::Test::HasFatalFailure()) return;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, DifferentialTest,
                         ::testing::ValuesIn(DifftestSeeds()),
                         [](const ::testing::TestParamInfo<std::uint64_t>& i) {
                           return "seed_" + std::to_string(i.param);
                         });

}  // namespace
}  // namespace ssr
