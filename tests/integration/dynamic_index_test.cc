// Dynamic-maintenance integration: Section 4.3 claims the scheme "readily
// supports dynamic operations" because its primitives are hash indices.
// Drive a mixed insert/delete/query workload and check the index never
// returns a deleted sid and keeps finding live near-duplicates.

#include <algorithm>

#include <gtest/gtest.h>

#include "baseline/exact_evaluator.h"
#include "core/set_similarity_index.h"
#include "eval/metrics.h"
#include "util/random.h"
#include "util/set_ops.h"

namespace ssr {
namespace {

ElementSet RandomSet(Rng& rng, std::size_t max_size = 60) {
  ElementSet s;
  const std::size_t n = 10 + rng.Uniform(max_size);
  for (std::size_t i = 0; i < n; ++i) s.push_back(rng.Uniform(5000));
  NormalizeSet(s);
  if (s.empty()) s.push_back(1);
  return s;
}

TEST(DynamicIndexTest, MixedWorkloadStaysConsistent) {
  SetStore store;
  IndexLayout layout;
  layout.delta = 0.4;
  layout.points = {{0.2, FilterKind::kDissimilarity, 8, 0},
                   {0.4, FilterKind::kDissimilarity, 8, 0},
                   {0.4, FilterKind::kSimilarity, 8, 0},
                   {0.8, FilterKind::kSimilarity, 8, 0}};
  IndexOptions options;
  options.embedding.minhash.num_hashes = 60;
  options.embedding.minhash.seed = 404;

  // Start with a seed population.
  Rng rng(505);
  std::vector<ElementSet> live_sets;  // by sid; empty = deleted
  for (int i = 0; i < 150; ++i) {
    const ElementSet s = RandomSet(rng);
    ASSERT_TRUE(store.Add(s).ok());
    live_sets.push_back(s);
  }
  auto built = SetSimilarityIndex::Build(store, layout, options);
  ASSERT_TRUE(built.ok());
  SetSimilarityIndex index = std::move(built).value();

  std::vector<bool> alive(live_sets.size(), true);
  for (int op = 0; op < 200; ++op) {
    const double dice = rng.NextDouble();
    if (dice < 0.35) {
      // Insert (sometimes a clone of a live set to create high-sim pairs).
      ElementSet s;
      if (rng.Bernoulli(0.5)) {
        std::size_t base;
        do {
          base = rng.Uniform(live_sets.size());
        } while (!alive[base]);
        s = live_sets[base];
        if (!s.empty() && rng.Bernoulli(0.5)) {
          s[rng.Uniform(s.size())] = rng.Uniform(5000);
          NormalizeSet(s);
        }
      } else {
        s = RandomSet(rng);
      }
      auto sid = store.Add(s);
      ASSERT_TRUE(sid.ok());
      ASSERT_TRUE(index.Insert(sid.value(), s).ok());
      live_sets.push_back(s);
      alive.push_back(true);
    } else if (dice < 0.55) {
      // Delete a random live sid.
      std::size_t victim;
      do {
        victim = rng.Uniform(live_sets.size());
      } while (!alive[victim]);
      ASSERT_TRUE(index.Erase(static_cast<SetId>(victim)).ok());
      ASSERT_TRUE(store.Delete(static_cast<SetId>(victim)).ok());
      alive[victim] = false;
    } else {
      // Query: answers must be live and exactly correct (verified), and
      // recall against the exact answer reasonable.
      std::size_t qsid;
      do {
        qsid = rng.Uniform(live_sets.size());
      } while (!alive[qsid]);
      const double s1 = rng.NextDouble() * 0.7;
      const double s2 = s1 + 0.15 + rng.NextDouble() * (1.0 - s1 - 0.15);
      auto result = index.Query(live_sets[qsid], s1, s2);
      ASSERT_TRUE(result.ok());
      for (SetId sid : result->sids) {
        EXPECT_TRUE(alive[sid]) << "deleted sid " << sid << " returned";
        const double sim = Jaccard(live_sets[sid], live_sets[qsid]);
        EXPECT_GE(sim, s1 - 1e-9);
        EXPECT_LE(sim, s2 + 1e-9);
      }
    }
  }
  // Self-queries on live sids must find themselves.
  int found_self = 0, tried = 0;
  for (std::size_t sid = 0; sid < live_sets.size() && tried < 30; ++sid) {
    if (!alive[sid]) continue;
    ++tried;
    auto result = index.Query(live_sets[sid], 0.95, 1.0);
    ASSERT_TRUE(result.ok());
    if (std::binary_search(result->sids.begin(), result->sids.end(),
                           static_cast<SetId>(sid))) {
      ++found_self;
    }
  }
  EXPECT_GE(found_self, tried * 9 / 10);
}

TEST(DynamicIndexTest, RebuildEquivalence) {
  // An index that saw inserts/deletes answers like one built from scratch
  // on the final collection (same seeds -> same hash tables).
  Rng rng(606);
  SetStore store_a, store_b;
  IndexLayout layout;
  layout.delta = 0.5;
  layout.points = {{0.5, FilterKind::kDissimilarity, 6, 0},
                   {0.5, FilterKind::kSimilarity, 6, 0}};
  IndexOptions options;
  options.embedding.minhash.num_hashes = 40;
  options.embedding.minhash.seed = 707;
  options.seed = 808;

  std::vector<ElementSet> sets;
  for (int i = 0; i < 80; ++i) sets.push_back(RandomSet(rng));

  // A: build on the first 50, then insert the remaining 30.
  for (int i = 0; i < 50; ++i) ASSERT_TRUE(store_a.Add(sets[i]).ok());
  auto a = SetSimilarityIndex::Build(store_a, layout, options);
  ASSERT_TRUE(a.ok());
  for (int i = 50; i < 80; ++i) {
    auto sid = store_a.Add(sets[i]);
    ASSERT_TRUE(sid.ok());
    ASSERT_TRUE(a->Insert(sid.value(), sets[i]).ok());
  }
  // B: build on all 80 at once.
  for (int i = 0; i < 80; ++i) ASSERT_TRUE(store_b.Add(sets[i]).ok());
  auto b = SetSimilarityIndex::Build(store_b, layout, options);
  ASSERT_TRUE(b.ok());

  for (int t = 0; t < 10; ++t) {
    const ElementSet& q = sets[rng.Uniform(sets.size())];
    const double s1 = rng.NextDouble() * 0.5;
    const double s2 = s1 + 0.2;
    auto ra = a->Query(q, s1, s2);
    auto rb = b->Query(q, s1, s2);
    ASSERT_TRUE(ra.ok() && rb.ok());
    EXPECT_EQ(ra->sids, rb->sids);
  }
}

}  // namespace
}  // namespace ssr
