// Integration of the obs/ subsystem with the query pipeline: the QueryStats
// a query returns must be exact before/after deltas of the registry
// instruments, and an enabled tracer must capture the phase spans the
// design documents (query -> embed/plan/verify, probe_fi under plan).

#include <gtest/gtest.h>

#include <algorithm>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "core/index_layout.h"
#include "core/set_similarity_index.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "storage/set_store.h"
#include "util/random.h"
#include "util/set_ops.h"

namespace ssr {
namespace {

ElementSet RandomSet(Rng& rng, std::size_t size, std::uint64_t universe) {
  ElementSet s;
  s.reserve(size);
  for (std::size_t i = 0; i < size; ++i) s.push_back(rng.Uniform(universe));
  NormalizeSet(s);
  return s;
}

struct Env {
  std::unique_ptr<SetStore> store;
  std::unique_ptr<SetSimilarityIndex> index;
  std::vector<ElementSet> sets;
};

Env MakeEnv(std::size_t num_sets = 400) {
  Env env;
  SetStoreOptions store_options;
  store_options.buffer_pool_pages = 16;  // small: force misses and evictions
  env.store = std::make_unique<SetStore>(store_options);
  Rng rng(0x0b5e7e57ULL);
  for (std::size_t i = 0; i < num_sets; ++i) {
    env.sets.push_back(RandomSet(rng, 30, 1 << 14));
    EXPECT_TRUE(env.store->Add(env.sets.back()).ok());
  }
  IndexLayout layout;
  layout.delta = 0.3;
  layout.points.push_back({0.2, FilterKind::kDissimilarity, 4, 0});
  layout.points.push_back({0.5, FilterKind::kSimilarity, 4, 0});
  layout.points.push_back({0.8, FilterKind::kSimilarity, 4, 0});
  IndexOptions options;
  options.embedding.minhash.num_hashes = 60;
  options.embedding.minhash.value_bits = 8;
  auto index = SetSimilarityIndex::Build(*env.store, layout, options);
  EXPECT_TRUE(index.ok());
  env.index = std::make_unique<SetSimilarityIndex>(std::move(index).value());
  return env;
}

std::uint64_t CounterValue(const std::string& name, const std::string& scope) {
  return obs::MetricsRegistry::Default().GetCounter(name, scope)->value();
}

TEST(ObservabilityIntegrationTest, IndexAndStoreGetDistinctScopes) {
  Env a = MakeEnv(50);
  Env b = MakeEnv(50);
  EXPECT_FALSE(a.index->metrics_scope().empty());
  EXPECT_FALSE(a.store->metrics_scope().empty());
  EXPECT_NE(a.index->metrics_scope(), b.index->metrics_scope());
  EXPECT_NE(a.store->metrics_scope(), b.store->metrics_scope());
  EXPECT_EQ(a.index->metrics_scope().rfind("index/", 0), 0u);
  EXPECT_EQ(a.store->metrics_scope().rfind("store/", 0), 0u);
}

TEST(ObservabilityIntegrationTest, QueryStatsAreRegistryDeltas) {
  Env env = MakeEnv();
  const std::string& scope = env.index->metrics_scope();
  const std::string& store_scope = env.store->metrics_scope();

  struct Snapshot {
    std::uint64_t queries, bucket_accesses, bucket_pages, sids_scanned;
    std::uint64_t sets_fetched, results, random_reads;
  };
  const auto snapshot = [&] {
    return Snapshot{
        CounterValue("ssr_index_queries_total", scope),
        CounterValue("ssr_index_bucket_accesses_total", scope),
        CounterValue("ssr_index_bucket_pages_total", scope),
        CounterValue("ssr_index_sids_scanned_total", scope),
        CounterValue("ssr_index_sets_fetched_total", scope),
        CounterValue("ssr_index_results_total", scope),
        CounterValue("ssr_io_random_reads_total", store_scope),
    };
  };

  for (const auto& [lo, up] : std::vector<std::pair<double, double>>{
           {0.55, 0.95}, {0.05, 0.25}, {0.1, 0.9}, {0.0, 1.0}}) {
    const Snapshot before = snapshot();
    auto result = env.index->Query(env.sets[7], lo, up);
    ASSERT_TRUE(result.ok());
    const Snapshot after = snapshot();
    const QueryStats& stats = result->stats;
    EXPECT_EQ(after.queries - before.queries, 1u);
    EXPECT_EQ(after.bucket_accesses - before.bucket_accesses,
              stats.bucket_accesses);
    EXPECT_EQ(after.bucket_pages - before.bucket_pages, stats.bucket_pages);
    EXPECT_EQ(after.sids_scanned - before.sids_scanned, stats.sids_scanned);
    EXPECT_EQ(after.sets_fetched - before.sets_fetched, stats.sets_fetched);
    EXPECT_EQ(after.results - before.results, stats.results);
    EXPECT_EQ(after.random_reads - before.random_reads,
              stats.io.random_reads);
    if (stats.plan == QueryPlanKind::kFullCollection && lo <= 0.0 &&
        up >= 1.0) {
      // [0, 1] needs no verification, hence no fetches.
      EXPECT_EQ(stats.sets_fetched, 0u);
    } else {
      EXPECT_EQ(stats.sets_fetched, stats.candidates);
    }
  }
}

TEST(ObservabilityIntegrationTest, StatsViewsAgreeWithInstruments) {
  Env env = MakeEnv();
  (void)env.index->Query(env.sets[3], 0.5, 1.0);
  const std::string& store_scope = env.store->metrics_scope();
  const BufferPoolStats pool = env.store->buffer_pool().stats();
  EXPECT_EQ(pool.hits,
            CounterValue("ssr_buffer_pool_hits_total", store_scope));
  EXPECT_EQ(pool.misses,
            CounterValue("ssr_buffer_pool_misses_total", store_scope));
  EXPECT_EQ(pool.evictions,
            CounterValue("ssr_buffer_pool_evictions_total", store_scope));
  const IoStats io = env.store->io().stats();
  EXPECT_EQ(io.sequential_reads,
            CounterValue("ssr_io_sequential_reads_total", store_scope));
  EXPECT_EQ(io.random_reads,
            CounterValue("ssr_io_random_reads_total", store_scope));
  EXPECT_EQ(io.page_writes,
            CounterValue("ssr_io_page_writes_total", store_scope));
  EXPECT_GT(io.random_reads, 0u);  // candidate fetches are random reads
}

TEST(ObservabilityIntegrationTest, LiveSetsGaugeTracksInsertAndErase) {
  Env env = MakeEnv(100);
  obs::Gauge* gauge = obs::MetricsRegistry::Default().GetGauge(
      "ssr_index_live_sets", env.index->metrics_scope());
  ASSERT_NE(gauge, nullptr);
  EXPECT_DOUBLE_EQ(gauge->value(), 100.0);
  ASSERT_TRUE(env.index->Erase(5).ok());
  EXPECT_DOUBLE_EQ(gauge->value(), 99.0);
  auto sid = env.store->Add(env.sets[5]);
  ASSERT_TRUE(sid.ok());
  ASSERT_TRUE(env.index->Insert(sid.value(), env.sets[5]).ok());
  EXPECT_DOUBLE_EQ(gauge->value(), 100.0);
}

TEST(ObservabilityIntegrationTest, TracerCapturesQueryPhaseSpans) {
  Env env = MakeEnv();
  obs::Tracer& tracer = obs::Tracer::Default();
  tracer.Clear();
  tracer.set_enabled(true);
  auto result = env.index->Query(env.sets[11], 0.5, 0.95);
  tracer.set_enabled(false);
  ASSERT_TRUE(result.ok());

  const auto spans = tracer.Snapshot();
  tracer.Clear();
  const auto find = [&](const std::string& name) {
    return std::find_if(spans.begin(), spans.end(),
                        [&](const obs::SpanRecord& s) {
                          return s.name == name;
                        });
  };
  const auto root = find("query");
  ASSERT_NE(root, spans.end());
  EXPECT_EQ(root->depth, 0u);
  for (const char* phase : {"embed", "plan", "verify"}) {
    const auto child = find(phase);
    ASSERT_NE(child, spans.end()) << "missing span " << phase;
    EXPECT_EQ(child->parent_id, root->id);
    EXPECT_EQ(child->depth, 1u);
  }
  const auto probe = find("probe_fi");
  ASSERT_NE(probe, spans.end());
  EXPECT_EQ(probe->depth, 2u);

  // The root span carries the plan tags the JSON artifact relies on.
  bool saw_plan = false, saw_candidates = false;
  for (const auto& [key, value] : root->tags) {
    if (key == "plan") {
      saw_plan = true;
      EXPECT_EQ(value, QueryPlanKindName(result->stats.plan));
    }
    if (key == "candidates") {
      saw_candidates = true;
      EXPECT_EQ(value, std::to_string(result->stats.candidates));
    }
  }
  EXPECT_TRUE(saw_plan);
  EXPECT_TRUE(saw_candidates);
}

TEST(ObservabilityIntegrationTest, DisabledTracerRecordsNothingDuringQuery) {
  Env env = MakeEnv(100);
  obs::Tracer& tracer = obs::Tracer::Default();
  tracer.Clear();
  ASSERT_FALSE(tracer.enabled());
  ASSERT_TRUE(env.index->Query(env.sets[1], 0.5, 0.95).ok());
  EXPECT_TRUE(tracer.Snapshot().empty());
}

}  // namespace
}  // namespace ssr
