// Direct checks of the paper's formal claims at test scale:
//   * Theorem 1 (ECC embedding preserves similarity affinely),
//   * Theorem 2 (complement trick reverses the similarity order),
//   * Equation 4 (the p_{r,l} collision probability, measured vs analytic),
//   * Section 6's crossover estimate (~23% of the collection for the
//     paper's parameters).

#include <cmath>

#include <gtest/gtest.h>

#include "baseline/sequential_scan.h"
#include "core/filter_function.h"
#include "core/sfi.h"
#include "hamming/embedding.h"
#include "storage/set_store.h"
#include "util/random.h"
#include "util/set_ops.h"

namespace ssr {
namespace {

Embedding MakeEmbedding(std::size_t k, unsigned bits, std::uint64_t seed) {
  EmbeddingParams p;
  p.minhash.num_hashes = k;
  p.minhash.value_bits = bits;
  p.minhash.seed = seed;
  auto e = Embedding::Create(p);
  EXPECT_TRUE(e.ok());
  return std::move(e).value();
}

TEST(PaperClaimsTest, Theorem1DistanceFormula) {
  // d_H(h(V1), h(V2)) = (1 - s)/2 * D for signature agreement s.
  Embedding e = MakeEmbedding(20, 8, 1);
  const std::size_t dim = e.dimension();
  for (std::size_t agree : {0u, 5u, 10u, 15u, 20u}) {
    Signature v1(20), v2(20);
    for (std::size_t i = 0; i < 20; ++i) {
      v1[i] = static_cast<std::uint16_t>(i + 1);
      v2[i] = i < agree ? v1[i] : static_cast<std::uint16_t>(100 + i);
    }
    const double s = static_cast<double>(agree) / 20.0;
    const std::size_t expected =
        static_cast<std::size_t>((1.0 - s) / 2.0 * static_cast<double>(dim));
    EXPECT_EQ(HammingDistance(e.EmbedSignature(v1), e.EmbedSignature(v2)),
              expected);
  }
}

TEST(PaperClaimsTest, Theorem2ComplementEquivalence) {
  // s_H(h, ~q) >= 1 - s  <=>  s_H(h, q) <= s, via the exact identity
  // s_H(h, ~q) = 1 - s_H(h, q).
  Rng rng(2);
  for (int t = 0; t < 100; ++t) {
    BitVector h(256), q(256);
    for (std::size_t i = 0; i < 256; ++i) {
      h.Set(i, rng.Bernoulli(0.5));
      q.Set(i, rng.Bernoulli(0.5));
    }
    const double s = HammingSimilarity(h, q);
    EXPECT_NEAR(HammingSimilarity(h, q.Complement()), 1.0 - s, 1e-12);
  }
}

TEST(PaperClaimsTest, Equation4CollisionProbabilityMeasured) {
  // Build an SFI and measure the collision rate of vector pairs at a known
  // Hamming similarity against p_{r,l}(s) = 1 - (1 - s^r)^l.
  Embedding e = MakeEmbedding(100, 8, 3);
  SfiParams params;
  params.s_star = 0.80;
  params.l = 10;
  auto sfi = SimilarityFilterIndex::Create(e, params, 2000);
  ASSERT_TRUE(sfi.ok());

  // Query of 100 elements; population at controlled overlap.
  ElementSet query;
  for (ElementId x = 0; x < 100; ++x) query.push_back(x);
  const FilterFunction& f = sfi->filter();

  struct Level {
    std::size_t inter;
  };
  for (std::size_t inter : {95u, 80u, 60u, 30u}) {
    // sim = inter / (200 - inter); Hamming sim = (1 + sim)/2.
    const double sim = static_cast<double>(inter) /
                       static_cast<double>(200 - inter);
    const double s_h = e.SetToHammingSimilarity(sim);
    const double predicted = f.Collision(s_h);
    // Fresh SFI per level to avoid cross-contamination.
    auto level_sfi = SimilarityFilterIndex::Create(e, params, 500);
    ASSERT_TRUE(level_sfi.ok());
    const int kTrials = 300;
    for (int c = 0; c < kTrials; ++c) {
      ElementSet s(query.begin(), query.begin() + inter);
      for (std::size_t i = 0; i < 100 - inter; ++i) {
        s.push_back(1000000 + static_cast<ElementId>(c) * 1000 + i);
      }
      NormalizeSet(s);
      level_sfi->Insert(static_cast<SetId>(c), e.Sign(s));
    }
    const auto found = level_sfi->SimVector(e.Sign(query));
    const double measured =
        static_cast<double>(found.size()) / static_cast<double>(kTrials);
    // Minhash noise makes the effective s_H itself a random variable, so
    // allow a wide but informative band.
    EXPECT_NEAR(measured, predicted, 0.22)
        << "inter=" << inter << " sim=" << sim << " s_H=" << s_h;
  }
}

TEST(PaperClaimsTest, Equation4MonotoneInSimilarity) {
  // Higher-similarity populations are retrieved at higher rates.
  Embedding e = MakeEmbedding(100, 8, 4);
  SfiParams params;
  params.s_star = 0.8;
  params.l = 12;
  auto sfi = SimilarityFilterIndex::Create(e, params, 2000);
  ASSERT_TRUE(sfi.ok());
  ElementSet query;
  for (ElementId x = 0; x < 100; ++x) query.push_back(x);
  std::vector<double> rates;
  SetId next = 0;
  std::vector<std::vector<SetId>> level_sids;
  for (std::size_t inter : {30u, 60u, 80u, 95u}) {
    level_sids.emplace_back();
    for (int c = 0; c < 200; ++c) {
      ElementSet s(query.begin(), query.begin() + inter);
      for (std::size_t i = 0; i < 100 - inter; ++i) {
        s.push_back(2000000 + static_cast<ElementId>(next) * 1000 + i);
      }
      NormalizeSet(s);
      sfi->Insert(next, e.Sign(s));
      level_sids.back().push_back(next);
      ++next;
    }
  }
  const auto found = sfi->SimVector(e.Sign(query));
  for (const auto& sids : level_sids) {
    int hits = 0;
    for (SetId sid : sids) {
      if (std::binary_search(found.begin(), found.end(), sid)) ++hits;
    }
    rates.push_back(static_cast<double>(hits) / 200.0);
  }
  for (std::size_t i = 1; i < rates.size(); ++i) {
    EXPECT_GE(rates[i] + 0.05, rates[i - 1])
        << "retrieval rate not monotone at level " << i;
  }
  EXPECT_GT(rates.back(), 0.8);   // 95/105 sim, far above s*
  EXPECT_LT(rates.front(), 0.4);  // 30/170 sim, far below s*
}

TEST(PaperClaimsTest, CrossoverNearQuarterOfCollectionForPaperShape) {
  // Section 6: with rtn = 8 and the paper's set sizes (~2KB/set, i.e. about
  // half a 4K page), the bound |S|·a/rtn lands around 23% of |S|... check
  // our formula reproduces the ~1/4 ballpark when a ≈ 2.
  // a (pages/set) = 2KB/4KB = 0.5 gives 6.25%; the paper's 23% corresponds
  // to a ≈ 1.86 effective pages per random fetch (record + slack). We
  // verify the formula itself: fraction = a / rtn.
  SetStore store;
  for (int i = 0; i < 50; ++i) {
    ElementSet s;
    for (ElementId e = 0; e < 1000; ++e) {
      s.push_back(static_cast<ElementId>(i) * 10000 + e);
    }
    ASSERT_TRUE(store.Add(s).ok());  // 8008 bytes ≈ 1.955 pages
  }
  const double fraction =
      ScanCrossoverResultSize(store) / static_cast<double>(store.size());
  EXPECT_NEAR(fraction, 1.955 / 8.0, 0.01);
  EXPECT_GT(fraction, 0.2);
  EXPECT_LT(fraction, 0.3);
}

}  // namespace
}  // namespace ssr
