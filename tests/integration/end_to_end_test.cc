// Whole-pipeline integration: dataset generation -> store -> Lemma 1
// distribution -> Figure 4 optimizer -> composite index -> bucketed query
// sweep, checking the paper's qualitative outcomes at test scale.

#include <gtest/gtest.h>

#include "baseline/sequential_scan.h"
#include "eval/harness.h"

namespace ssr {
namespace {

ExperimentConfig SmallConfig() {
  ExperimentConfig config;
  config.dataset = "set1";
  config.scale = 0.004;  // 800 sets
  config.table_budget = 100;
  config.recall_threshold = 0.8;
  config.num_minhashes = 60;
  config.queries_per_bucket = 8;
  config.max_attempts_factor = 10;
  config.distribution_sample_pairs = 20000;
  config.run_scan = true;
  return config;
}

TEST(EndToEndTest, HarnessBuildsAndMeetsRecallObjective) {
  auto harness = ExperimentHarness::Create(SmallConfig());
  ASSERT_TRUE(harness.ok()) << harness.status().ToString();
  const BuiltLayout& layout = (*harness)->layout();
  EXPECT_TRUE(layout.layout.Validate().ok());
  EXPECT_GE(layout.predicted_recall, 0.8);
  EXPECT_LE(layout.layout.total_tables(), 100u);
  EXPECT_EQ((*harness)->index().num_live_sets(), 800u);
}

TEST(EndToEndTest, BucketedSweepProducesSaneAggregates) {
  auto harness = ExperimentHarness::Create(SmallConfig());
  ASSERT_TRUE(harness.ok()) << harness.status().ToString();
  auto result = (*harness)->RunBucketedQueries();
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_EQ(result->buckets.size(), 5u);
  EXPECT_GT(result->total_queries_run, 0u);
  std::size_t populated = 0;
  double recall_weighted = 0.0;
  std::size_t recall_count = 0;
  for (const auto& bucket : result->buckets) {
    if (bucket.query_count == 0) continue;
    ++populated;
    EXPECT_GE(bucket.avg_recall, 0.0);
    EXPECT_LE(bucket.avg_recall, 1.0);
    EXPECT_GE(bucket.avg_precision, 0.0);
    EXPECT_LE(bucket.avg_precision, 1.0);
    EXPECT_GE(bucket.avg_candidates, bucket.avg_results);
    recall_weighted += bucket.avg_recall * bucket.query_count;
    recall_count += bucket.query_count;
  }
  ASSERT_GE(populated, 2u) << "sweep failed to populate buckets";
  (void)recall_weighted;
  (void)recall_count;
  // The optimizer was asked for 80% expected recall in the paper's
  // Definition 8 (ratio-of-expectations) sense; the measured unconditioned
  // average should be in that neighbourhood (slack for small samples).
  // Per-bucket averages are adversely selected (buckets over-sample
  // empty-answer queries) and are not the objective.
  EXPECT_GT(result->overall_weighted_recall, 0.65);
}

TEST(EndToEndTest, SingleQueryOutcomeConsistency) {
  auto harness = ExperimentHarness::Create(SmallConfig());
  ASSERT_TRUE(harness.ok());
  RangeQuery query;
  query.query_sid = 5;
  query.sigma1 = 0.6;
  query.sigma2 = 0.95;
  auto outcome = (*harness)->RunOne(query, /*with_scan=*/true);
  ASSERT_TRUE(outcome.ok());
  EXPECT_LE(outcome->index.sids.size(), outcome->index.stats.candidates);
  EXPECT_GE(outcome->recall, 0.0);
  EXPECT_LE(outcome->recall, 1.0);
  EXPECT_GT(outcome->scan_io_seconds, 0.0);
  EXPECT_GT(outcome->index.stats.io.random_reads, 0u);
  EXPECT_EQ(outcome->index.stats.io.sequential_reads, 0u);
}

TEST(EndToEndTest, CrossoverGovernsIndexVsScan) {
  // Section 6: the index wins while the candidate fetch volume stays below
  // the |S|*a/rtn bound; beyond it the scan's sequential advantage takes
  // over. Drive each side of the bound deterministically. The collection
  // must be large relative to the table budget: probing l buckets costs l
  // random reads, so a tiny collection is always cheaper to scan (the
  // paper runs 1000 tables against ~100,000 pages).
  ExperimentConfig config = SmallConfig();
  config.scale = 0.01;        // ~2000 sets, ~700 pages
  config.table_budget = 50;   // probes stay well under pages/rtn
  config.recall_threshold = 0.75;
  auto harness = ExperimentHarness::Create(config);
  ASSERT_TRUE(harness.ok());
  ExperimentHarness& h = **harness;
  const double crossover = ScanCrossoverResultSize(h.store());
  ASSERT_GT(crossover, 0.0);

  // Below the crossover: a freshly inserted globally-unique set has no
  // similar companions, so a high-similarity query fetches almost nothing.
  ElementSet unique_set;
  for (ElementId e = 0; e < 200; ++e) unique_set.push_back(900000000 + e);
  auto sid = h.store().Add(unique_set);
  ASSERT_TRUE(sid.ok());
  ASSERT_TRUE(h.index().Insert(sid.value(), unique_set).ok());
  h.store().buffer_pool().Clear();
  auto cheap = h.index().Query(unique_set, 0.9, 1.0);
  ASSERT_TRUE(cheap.ok());
  EXPECT_LT(static_cast<double>(cheap->stats.sets_fetched),
            0.5 * crossover);
  h.store().buffer_pool().Clear();
  auto scan = SequentialScanQuery(h.store(), unique_set, 0.9, 1.0);
  ASSERT_TRUE(scan.ok());
  EXPECT_LT(cheap->stats.io_seconds, scan->stats.io_seconds)
      << "index should win below the crossover (fetched "
      << cheap->stats.sets_fetched << ", crossover " << crossover << ")";

  // Above the crossover: a broad low-similarity range fetches a large
  // fraction of the collection; the sequential scan must win.
  const ElementSet& q = h.collection()[3];
  h.store().buffer_pool().Clear();
  auto expensive = h.index().Query(q, 0.02, 0.6);
  ASSERT_TRUE(expensive.ok());
  if (static_cast<double>(expensive->stats.sets_fetched) > 3.0 * crossover) {
    h.store().buffer_pool().Clear();
    auto scan2 = SequentialScanQuery(h.store(), q, 0.02, 0.6);
    ASSERT_TRUE(scan2.ok());
    EXPECT_GT(expensive->stats.io_seconds, scan2->stats.io_seconds)
        << "scan should win above the crossover (fetched "
        << expensive->stats.sets_fetched << ")";
  }
}

TEST(EndToEndTest, CrossoverBoundReported) {
  auto harness = ExperimentHarness::Create(SmallConfig());
  ASSERT_TRUE(harness.ok());
  auto result = (*harness)->RunBucketedQueries();
  ASSERT_TRUE(result.ok());
  EXPECT_GT(result->crossover_result_size, 0.0);
  EXPECT_LT(result->crossover_result_size,
            static_cast<double>(result->collection_size));
  EXPECT_GT(result->avg_set_pages, 0.0);
  EXPECT_GT(result->heap_pages, 0u);
}

}  // namespace
}  // namespace ssr
