#include "obs/trace.h"

#include <gtest/gtest.h>

#include <string>

namespace ssr {
namespace obs {
namespace {

TEST(TracerTest, DisabledTracerRecordsNothing) {
  Tracer tracer(8);
  ASSERT_FALSE(tracer.enabled());
  {
    TraceSpan span(tracer, "query");
    EXPECT_FALSE(span.active());
    span.Tag("k", "v");  // no-op, must not crash
  }
  EXPECT_TRUE(tracer.Snapshot().empty());
  EXPECT_EQ(tracer.total_recorded(), 0u);
}

TEST(TracerTest, RecordsCompletedSpans) {
  Tracer tracer(8);
  tracer.set_enabled(true);
  {
    TraceSpan span(tracer, "query");
    EXPECT_TRUE(span.active());
    span.Tag("plan", "sfi_pair");
    span.Tag("candidates", std::uint64_t{42});
    span.Tag("lo", 0.25);
  }
  const auto spans = tracer.Snapshot();
  ASSERT_EQ(spans.size(), 1u);
  EXPECT_EQ(spans[0].name, "query");
  EXPECT_EQ(spans[0].depth, 0u);
  EXPECT_EQ(spans[0].parent_id, 0u);
  EXPECT_GE(spans[0].duration_micros, 0.0);
  ASSERT_EQ(spans[0].tags.size(), 3u);
  EXPECT_EQ(spans[0].tags[0].first, "plan");
  EXPECT_EQ(spans[0].tags[0].second, "sfi_pair");
  EXPECT_EQ(spans[0].tags[1].second, "42");
}

TEST(TracerTest, NestingRecordsParentAndDepth) {
  Tracer tracer(8);
  tracer.set_enabled(true);
  {
    TraceSpan root(tracer, "query");
    {
      TraceSpan child(tracer, "embed");
      { TraceSpan grandchild(tracer, "hash"); }
    }
    { TraceSpan sibling(tracer, "verify"); }
  }
  // Completion order: hash, embed, verify, query.
  const auto spans = tracer.Snapshot();
  ASSERT_EQ(spans.size(), 4u);
  EXPECT_EQ(spans[0].name, "hash");
  EXPECT_EQ(spans[1].name, "embed");
  EXPECT_EQ(spans[2].name, "verify");
  EXPECT_EQ(spans[3].name, "query");
  EXPECT_EQ(spans[3].depth, 0u);
  EXPECT_EQ(spans[1].depth, 1u);
  EXPECT_EQ(spans[0].depth, 2u);
  EXPECT_EQ(spans[0].parent_id, spans[1].id);
  EXPECT_EQ(spans[1].parent_id, spans[3].id);
  EXPECT_EQ(spans[2].parent_id, spans[3].id);
}

TEST(TracerTest, RingWrapsKeepingNewest) {
  Tracer tracer(4);
  tracer.set_enabled(true);
  for (int i = 0; i < 10; ++i) {
    TraceSpan span(tracer, "span" + std::to_string(i));
  }
  EXPECT_EQ(tracer.total_recorded(), 10u);
  const auto spans = tracer.Snapshot();
  ASSERT_EQ(spans.size(), 4u);
  EXPECT_EQ(spans[0].name, "span6");
  EXPECT_EQ(spans[1].name, "span7");
  EXPECT_EQ(spans[2].name, "span8");
  EXPECT_EQ(spans[3].name, "span9");
}

TEST(TracerTest, ClearDropsSpansButKeepsIds) {
  Tracer tracer(8);
  tracer.set_enabled(true);
  { TraceSpan span(tracer, "a"); }
  tracer.Clear();
  EXPECT_TRUE(tracer.Snapshot().empty());
  { TraceSpan span(tracer, "b"); }
  const auto spans = tracer.Snapshot();
  ASSERT_EQ(spans.size(), 1u);
  EXPECT_GT(spans[0].id, 1u);  // id sequence did not restart
}

TEST(TracerTest, SpansEnabledMidStackDoNotAdoptDisabledParent) {
  Tracer tracer(8);
  {
    TraceSpan outer(tracer, "outer");  // tracer off: not recorded
    tracer.set_enabled(true);
    { TraceSpan inner(tracer, "inner"); }
    tracer.set_enabled(false);
  }
  const auto spans = tracer.Snapshot();
  ASSERT_EQ(spans.size(), 1u);
  EXPECT_EQ(spans[0].name, "inner");
  EXPECT_EQ(spans[0].parent_id, 0u);
  EXPECT_EQ(spans[0].depth, 0u);
}

TEST(TracerTest, DefaultTracerIsASingleton) {
  EXPECT_EQ(&Tracer::Default(), &Tracer::Default());
}

}  // namespace
}  // namespace obs
}  // namespace ssr
