#include "obs/profile.h"

#include <gtest/gtest.h>

#include <cstdlib>
#include <string>
#include <vector>

#include "obs/json_writer.h"
#include "obs/perf_counters.h"
#include "obs/trace.h"

namespace ssr {
namespace obs {
namespace {

TEST(PerfSampleTest, SetMarksValidAndEmptyReflectsMask) {
  PerfSample sample;
  EXPECT_TRUE(sample.empty());
  EXPECT_FALSE(sample.valid(PerfCounter::kCycles));
  sample.Set(PerfCounter::kCycles, 42);
  EXPECT_FALSE(sample.empty());
  EXPECT_TRUE(sample.valid(PerfCounter::kCycles));
  EXPECT_EQ(sample.value(PerfCounter::kCycles), 42u);
  EXPECT_FALSE(sample.valid(PerfCounter::kInstructions));
}

TEST(PerfSampleTest, AccumulateSumsAndUnionsValidity) {
  PerfSample a;
  a.Set(PerfCounter::kCycles, 10);
  a.Set(PerfCounter::kTaskClockNs, 100);
  PerfSample b;
  b.Set(PerfCounter::kCycles, 5);
  b.Set(PerfCounter::kPageFaults, 3);
  a.Accumulate(b);
  EXPECT_EQ(a.value(PerfCounter::kCycles), 15u);
  EXPECT_EQ(a.value(PerfCounter::kTaskClockNs), 100u);
  EXPECT_EQ(a.value(PerfCounter::kPageFaults), 3u);
  EXPECT_TRUE(a.valid(PerfCounter::kPageFaults));
}

TEST(PerfSampleTest, DeltaIntersectsValidityAndClampsAtZero) {
  PerfSample begin;
  begin.Set(PerfCounter::kCycles, 100);
  begin.Set(PerfCounter::kTaskClockNs, 50);
  begin.Set(PerfCounter::kPageFaults, 9);
  PerfSample end;
  end.Set(PerfCounter::kCycles, 130);
  end.Set(PerfCounter::kTaskClockNs, 40);  // jitter: end < begin
  // kPageFaults missing from end: must not survive the delta.
  const PerfSample d = Delta(end, begin);
  EXPECT_EQ(d.value(PerfCounter::kCycles), 30u);
  EXPECT_EQ(d.value(PerfCounter::kTaskClockNs), 0u);  // clamped
  EXPECT_TRUE(d.valid(PerfCounter::kTaskClockNs));
  EXPECT_FALSE(d.valid(PerfCounter::kPageFaults));
}

TEST(PerfModeTest, EnvVarCapsTheLadder) {
  ASSERT_EQ(setenv("SSR_PERF_COUNTERS", "off", 1), 0);
  EXPECT_EQ(PerfModeFromEnv(), PerfMode::kDisabled);
  ASSERT_EQ(setenv("SSR_PERF_COUNTERS", "rusage", 1), 0);
  EXPECT_EQ(PerfModeFromEnv(), PerfMode::kRusage);
  ASSERT_EQ(setenv("SSR_PERF_COUNTERS", "software", 1), 0);
  EXPECT_EQ(PerfModeFromEnv(), PerfMode::kSoftware);
  ASSERT_EQ(unsetenv("SSR_PERF_COUNTERS"), 0);
  EXPECT_EQ(PerfModeFromEnv(), PerfMode::kAuto);
}

TEST(PerfCounterGroupTest, DisabledModeReadsEmpty) {
  PerfCounterGroup group(PerfMode::kDisabled);
  EXPECT_EQ(group.source(), PerfSource::kDisabled);
  EXPECT_TRUE(group.Read().empty());
}

// The rusage rung needs no kernel perf support at all, so it must be
// available on any Linux (and is the rung CI containers land on).
TEST(PerfCounterGroupTest, RusageRungAlwaysMeasuresTaskClock) {
#ifdef __linux__
  PerfCounterGroup group(PerfMode::kRusage);
  ASSERT_EQ(group.source(), PerfSource::kRusage);
  const PerfSample before = group.Read();
  EXPECT_TRUE(before.valid(PerfCounter::kTaskClockNs));
  EXPECT_TRUE(before.valid(PerfCounter::kPageFaults));
  // Burn a little CPU; the thread clock must advance.
  volatile double x = 1.0;
  for (int i = 0; i < 2000000; ++i) x = x * 1.0000001;
  const PerfSample after = group.Read();
  EXPECT_GE(after.value(PerfCounter::kTaskClockNs),
            before.value(PerfCounter::kTaskClockNs));
#endif
}

TEST(ProfilerTest, DisabledProfilerIsANoOp) {
  Profiler profiler;
  EXPECT_FALSE(profiler.enabled());
  EXPECT_EQ(profiler.source(), PerfSource::kDisabled);
  EXPECT_TRUE(profiler.ReadNow().empty());
  { ProfileScope scope(profiler, "idle"); }
  EXPECT_TRUE(profiler.Snapshot().empty());
}

TEST(ProfilerTest, RecordAggregatesByNameSorted) {
  Profiler profiler;
  PerfSample d1;
  d1.Set(PerfCounter::kTaskClockNs, 10);
  PerfSample d2;
  d2.Set(PerfCounter::kTaskClockNs, 32);
  profiler.Record("verify", d1);
  profiler.Record("embed", d1);
  profiler.Record("verify", d2);
  const std::vector<PhaseProfile> phases = profiler.Snapshot();
  ASSERT_EQ(phases.size(), 2u);
  EXPECT_EQ(phases[0].name, "embed");
  EXPECT_EQ(phases[0].count, 1u);
  EXPECT_EQ(phases[1].name, "verify");
  EXPECT_EQ(phases[1].count, 2u);
  EXPECT_EQ(phases[1].totals.value(PerfCounter::kTaskClockNs), 42u);
  profiler.Clear();
  EXPECT_TRUE(profiler.Snapshot().empty());
}

TEST(ProfilerTest, EnabledScopeRecordsAPhase) {
#ifdef __linux__
  Profiler profiler;
  profiler.Enable(PerfMode::kRusage);
  ASSERT_TRUE(profiler.enabled());
  ASSERT_EQ(profiler.source(), PerfSource::kRusage);
  {
    ProfileScope scope(profiler, "micro_loop");
    volatile double x = 1.0;
    for (int i = 0; i < 100000; ++i) x = x * 1.0000001;
  }
  const std::vector<PhaseProfile> phases = profiler.Snapshot();
  ASSERT_EQ(phases.size(), 1u);
  EXPECT_EQ(phases[0].name, "micro_loop");
  EXPECT_EQ(phases[0].count, 1u);
  EXPECT_TRUE(phases[0].totals.valid(PerfCounter::kTaskClockNs));
#endif
}

// The tracer hook: with the default profiler enabled, every TraceSpan
// attaches a counter delta to its record and accumulates it per phase name.
TEST(ProfilerTest, TraceSpanIntegrationAttachesCounters) {
#ifdef __linux__
  Profiler& profiler = Profiler::Default();
  profiler.Clear();
  profiler.Enable(PerfMode::kRusage);
  Tracer tracer(8);
  tracer.set_enabled(true);
  {
    TraceSpan span(tracer, "hooked_phase");
    volatile double x = 1.0;
    for (int i = 0; i < 100000; ++i) x = x * 1.0000001;
  }
  profiler.Disable();

  const std::vector<SpanRecord> spans = tracer.Snapshot();
  ASSERT_EQ(spans.size(), 1u);
  EXPECT_TRUE(spans[0].counters.valid(PerfCounter::kTaskClockNs));

  bool found = false;
  for (const PhaseProfile& phase : profiler.Snapshot()) {
    if (phase.name == "hooked_phase") {
      found = true;
      EXPECT_GE(phase.count, 1u);
    }
  }
  EXPECT_TRUE(found);
  profiler.Clear();
#endif
}

TEST(ProfileJsonTest, GoldenShape) {
  Profiler profiler;
  PerfSample d;
  d.Set(PerfCounter::kTaskClockNs, 7);
  d.Set(PerfCounter::kCacheMisses, 3);
  profiler.Record("embed", d);
  JsonWriter writer;
  WriteProfileJson(writer, profiler);
  EXPECT_EQ(writer.str(),
            "{\"source\":\"disabled\",\"phases\":["
            "{\"name\":\"embed\",\"count\":1,\"counters\":{"
            "\"cache_misses\":3,\"task_clock_ns\":7}}]}");
}

}  // namespace
}  // namespace obs
}  // namespace ssr
