// Query-log format contract: save → load round-trips exactly and
// re-serializes bit-identically; the recorder's 1-in-N decimation is
// deterministic; and the checksummed framing turns every truncation and
// every corrupted byte into a typed failure (DataLoss / Corruption /
// NotSupported), never a wrong log and never a crash.

#include "obs/query_log.h"

#include <gtest/gtest.h>

#include <sstream>
#include <string>
#include <vector>

#include "fault/fault_injector.h"
#include "util/random.h"
#include "util/set_ops.h"

namespace ssr {
namespace obs {
namespace {

#ifdef SSR_NO_FAULT_INJECTION
#define SKIP_WITHOUT_INJECTION() \
  GTEST_SKIP() << "built with SSR_NO_FAULT_INJECTION"
#else
#define SKIP_WITHOUT_INJECTION() (void)0
#endif

class QueryLogTest : public ::testing::Test {
 protected:
  void SetUp() override { fault::FaultInjector::Default().Reset(); }
  void TearDown() override { fault::FaultInjector::Default().Reset(); }
};

QueryLog MakeLog() {
  QueryLog log;
  log.sample_every = 2;
  log.offered = 6;
  Rng rng(42);
  for (int i = 0; i < 3; ++i) {
    RecordedQuery q;
    for (int j = 0; j < 5 + i; ++j) q.query.push_back(rng.Uniform(1000));
    NormalizeSet(q.query);
    q.sigma1 = 0.1 * (i + 1);
    q.sigma2 = q.sigma1 + 0.5;
    std::vector<SetId> answer;
    for (SetId sid = 0; sid < static_cast<SetId>(i * 2); ++sid) {
      answer.push_back(sid * 3);
    }
    q.result_count = answer.size();
    q.result_digest = QueryAnswerDigest(answer);
    log.queries.push_back(std::move(q));
  }
  return log;
}

std::string Serialize(const QueryLog& log) {
  std::stringstream buffer;
  EXPECT_TRUE(log.SaveTo(buffer).ok());
  return buffer.str();
}

TEST_F(QueryLogTest, DigestIsContentAndOrderSensitive) {
  EXPECT_EQ(QueryAnswerDigest({1, 2, 3}), QueryAnswerDigest({1, 2, 3}));
  EXPECT_NE(QueryAnswerDigest({1, 2, 3}), QueryAnswerDigest({1, 3, 2}));
  EXPECT_NE(QueryAnswerDigest({1, 2, 3}), QueryAnswerDigest({1, 2}));
  EXPECT_NE(QueryAnswerDigest({}), QueryAnswerDigest({0}));
}

TEST_F(QueryLogTest, RoundTripIsExactAndBitStable) {
  const QueryLog log = MakeLog();
  const std::string bytes = Serialize(log);

  std::istringstream in(bytes);
  auto loaded = QueryLog::Load(in);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  EXPECT_EQ(loaded->sample_every, log.sample_every);
  EXPECT_EQ(loaded->offered, log.offered);
  ASSERT_EQ(loaded->queries.size(), log.queries.size());
  for (std::size_t i = 0; i < log.queries.size(); ++i) {
    EXPECT_TRUE(loaded->queries[i] == log.queries[i]) << i;
  }
  // Serializing the loaded log reproduces the original bytes exactly.
  EXPECT_EQ(Serialize(*loaded), bytes);
}

TEST_F(QueryLogTest, EmptyLogRoundTrips) {
  QueryLog log;
  const std::string bytes = Serialize(log);
  std::istringstream in(bytes);
  auto loaded = QueryLog::Load(in);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  EXPECT_TRUE(loaded->queries.empty());
}

TEST_F(QueryLogTest, RecorderSamplesDeterministicallyOneInN) {
  QueryLogRecorder recorder(/*sample_every=*/3);
  ElementSet query{1, 2, 3};
  std::vector<SetId> answer{4, 5};
  int recorded = 0;
  for (int i = 0; i < 10; ++i) {
    if (recorder.Offer(query, 0.2, 0.8, answer)) ++recorded;
  }
  // Offers 0, 3, 6, 9 are recorded (the first is always included).
  EXPECT_EQ(recorded, 4);
  EXPECT_EQ(recorder.offered(), 10u);
  EXPECT_EQ(recorder.recorded(), 4u);
  const QueryLog log = recorder.Snapshot();
  EXPECT_EQ(log.sample_every, 3u);
  EXPECT_EQ(log.offered, 10u);
  ASSERT_EQ(log.queries.size(), 4u);
  EXPECT_EQ(log.queries[0].result_digest, QueryAnswerDigest(answer));
  EXPECT_EQ(log.queries[0].result_count, 2u);
}

TEST_F(QueryLogTest, TakeLogResetsTheRecorder) {
  QueryLogRecorder recorder(1);
  recorder.Offer({1}, 0.0, 1.0, {});
  const QueryLog first = recorder.TakeLog();
  EXPECT_EQ(first.queries.size(), 1u);
  EXPECT_EQ(recorder.offered(), 0u);
  EXPECT_EQ(recorder.recorded(), 0u);
  EXPECT_TRUE(recorder.Snapshot().queries.empty());
}

// Every proper prefix of the serialized log must fail to load with a typed
// error — truncation can never yield a shorter-but-plausible log.
TEST_F(QueryLogTest, EveryTruncationFailsTyped) {
  const std::string bytes = Serialize(MakeLog());
  for (std::size_t len = 0; len < bytes.size(); ++len) {
    std::istringstream in(bytes.substr(0, len));
    auto loaded = QueryLog::Load(in);
    ASSERT_FALSE(loaded.ok()) << "prefix " << len << " of " << bytes.size();
    const Status& s = loaded.status();
    EXPECT_TRUE(s.IsDataLoss() || s.IsCorruption() || s.IsNotSupported())
        << "prefix " << len << ": " << s.ToString();
  }
}

// Flipping any single bit anywhere in the file must be detected: the CRC
// sections cover the payload, and the magic/version/footer checks cover
// the framing.
TEST_F(QueryLogTest, EveryByteCorruptionFailsTyped) {
  const std::string bytes = Serialize(MakeLog());
  for (std::size_t i = 0; i < bytes.size(); ++i) {
    std::string corrupt = bytes;
    corrupt[i] = static_cast<char>(corrupt[i] ^ 0x20);
    std::istringstream in(corrupt);
    auto loaded = QueryLog::Load(in);
    ASSERT_FALSE(loaded.ok()) << "byte " << i << " of " << bytes.size();
    const Status& s = loaded.status();
    EXPECT_TRUE(s.IsDataLoss() || s.IsCorruption() || s.IsNotSupported())
        << "byte " << i << ": " << s.ToString();
  }
}

TEST_F(QueryLogTest, TornWriteMidSaveIsDetectedOnLoad) {
  SKIP_WITHOUT_INJECTION();
  const QueryLog log = MakeLog();
  auto& fi = fault::FaultInjector::Default();
  for (std::uint64_t after = 0; after < 6; ++after) {
    fi.Reset();
    fi.Enable(1234);
    fi.Arm("snapshot/write", fault::FaultKind::kTornWrite,
           fault::FaultSchedule::Once(after));
    std::stringstream buffer;
    EXPECT_FALSE(log.SaveTo(buffer).ok()) << "torn after " << after;
    fi.Reset();
    std::istringstream in(buffer.str());
    auto loaded = QueryLog::Load(in);
    ASSERT_FALSE(loaded.ok()) << "torn after " << after;
    const Status& s = loaded.status();
    EXPECT_TRUE(s.IsDataLoss() || s.IsCorruption())
        << "torn after " << after << ": " << s.ToString();
  }
}

}  // namespace
}  // namespace obs
}  // namespace ssr
