#include "obs/metrics.h"

#include <gtest/gtest.h>

#include <thread>
#include <vector>

namespace ssr {
namespace obs {
namespace {

TEST(MetricsRegistryTest, CreateThenLookupReturnsSameInstrument) {
  MetricsRegistry registry;
  Counter* a = registry.GetCounter("requests_total");
  Counter* b = registry.GetCounter("requests_total");
  ASSERT_NE(a, nullptr);
  EXPECT_EQ(a, b);
  a->Increment();
  EXPECT_EQ(b->value(), 1u);
}

TEST(MetricsRegistryTest, ScopesIsolateInstruments) {
  MetricsRegistry registry;
  Counter* process = registry.GetCounter("hits_total");
  Counter* scoped = registry.GetCounter("hits_total", "store/0");
  Counter* other = registry.GetCounter("hits_total", "store/1");
  EXPECT_NE(process, scoped);
  EXPECT_NE(scoped, other);
  scoped->Add(5);
  EXPECT_EQ(process->value(), 0u);
  EXPECT_EQ(scoped->value(), 5u);
  EXPECT_EQ(other->value(), 0u);
}

TEST(MetricsRegistryTest, KindMismatchReturnsNull) {
  MetricsRegistry registry;
  ASSERT_NE(registry.GetCounter("x"), nullptr);
  EXPECT_EQ(registry.GetGauge("x"), nullptr);
  EXPECT_EQ(registry.GetHistogram("x", "", {1.0}), nullptr);
}

TEST(MetricsRegistryTest, NewScopeIsProcessUnique) {
  MetricsRegistry registry;
  const std::string a = registry.NewScope("pool");
  const std::string b = registry.NewScope("pool");
  const std::string c = registry.NewScope("store");
  EXPECT_NE(a, b);
  EXPECT_NE(b, c);
  EXPECT_EQ(a.rfind("pool/", 0), 0u);
  EXPECT_EQ(c.rfind("store/", 0), 0u);
}

TEST(MetricsRegistryTest, ConcurrentIncrementsAreLossless) {
  MetricsRegistry registry;
  Counter* counter = registry.GetCounter("contended_total");
  constexpr int kThreads = 8;
  constexpr int kPerThread = 20000;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&] {
      for (int i = 0; i < kPerThread; ++i) counter->Increment();
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(counter->value(),
            static_cast<std::uint64_t>(kThreads) * kPerThread);
}

TEST(MetricsRegistryTest, ConcurrentGaugeAddsAreLossless) {
  MetricsRegistry registry;
  Gauge* gauge = registry.GetGauge("level");
  constexpr int kThreads = 4;
  constexpr int kPerThread = 10000;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&] {
      for (int i = 0; i < kPerThread; ++i) gauge->Add(1.0);
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_DOUBLE_EQ(gauge->value(), kThreads * kPerThread);
}

TEST(MetricsRegistryTest, ResetAllZeroesEverything) {
  MetricsRegistry registry;
  registry.GetCounter("c")->Add(3);
  registry.GetGauge("g")->Set(7.0);
  Histogram* h = registry.GetHistogram("h", "", {1.0, 2.0});
  h->Observe(1.5);
  registry.ResetAll();
  EXPECT_EQ(registry.GetCounter("c")->value(), 0u);
  EXPECT_DOUBLE_EQ(registry.GetGauge("g")->value(), 0.0);
  EXPECT_EQ(h->count(), 0u);
  EXPECT_DOUBLE_EQ(h->sum(), 0.0);
  EXPECT_EQ(h->bucket_count(1), 0u);
}

TEST(MetricsRegistryTest, EntriesSortedByNameThenScope) {
  MetricsRegistry registry;
  registry.GetCounter("b", "s2");
  registry.GetCounter("b", "s1");
  registry.GetGauge("a");
  const auto entries = registry.Entries();
  ASSERT_EQ(entries.size(), 3u);
  EXPECT_EQ(entries[0].name, "a");
  EXPECT_EQ(entries[1].name, "b");
  EXPECT_EQ(entries[1].scope, "s1");
  EXPECT_EQ(entries[2].scope, "s2");
  EXPECT_NE(entries[0].gauge, nullptr);
  EXPECT_EQ(entries[0].counter, nullptr);
}

TEST(HistogramTest, BucketBoundariesAreInclusiveUpperBounds) {
  MetricsRegistry registry;
  // Buckets: (-inf, 1], (1, 10], (10, 100], (100, +inf).
  Histogram* h = registry.GetHistogram("latency", "", {1.0, 10.0, 100.0});
  h->Observe(0.5);    // bucket 0
  h->Observe(1.0);    // bucket 0: v <= bound is inclusive
  h->Observe(1.0001);  // bucket 1
  h->Observe(10.0);   // bucket 1
  h->Observe(99.0);   // bucket 2
  h->Observe(100.0);  // bucket 2
  h->Observe(101.0);  // overflow
  EXPECT_EQ(h->bucket_count(0), 2u);
  EXPECT_EQ(h->bucket_count(1), 2u);
  EXPECT_EQ(h->bucket_count(2), 2u);
  EXPECT_EQ(h->bucket_count(3), 1u);
  EXPECT_EQ(h->count(), 7u);
  EXPECT_DOUBLE_EQ(h->sum(), 0.5 + 1.0 + 1.0001 + 10.0 + 99.0 + 100.0 + 101.0);
}

TEST(HistogramTest, FirstCreationBoundsWin) {
  MetricsRegistry registry;
  Histogram* first = registry.GetHistogram("h", "", {1.0, 2.0});
  Histogram* again = registry.GetHistogram("h", "", {99.0});
  EXPECT_EQ(first, again);
  EXPECT_EQ(again->bounds().size(), 2u);
}

TEST(HistogramTest, ExponentialBoundsShape) {
  const auto bounds = ExponentialBounds(1.0, 4.0, 4);
  ASSERT_EQ(bounds.size(), 4u);
  EXPECT_DOUBLE_EQ(bounds[0], 1.0);
  EXPECT_DOUBLE_EQ(bounds[1], 4.0);
  EXPECT_DOUBLE_EQ(bounds[2], 16.0);
  EXPECT_DOUBLE_EQ(bounds[3], 64.0);
}

TEST(HistogramTest, ExponentialBoundsCoveringSpansTheRange) {
  const auto bounds = ExponentialBoundsCovering(1.0, 100.0, 10.0);
  ASSERT_EQ(bounds.size(), 3u);
  EXPECT_DOUBLE_EQ(bounds[0], 1.0);
  EXPECT_DOUBLE_EQ(bounds[1], 10.0);
  EXPECT_DOUBLE_EQ(bounds[2], 100.0);
  // The last bound always reaches hi, overshooting when factor misses it.
  const auto overshoot = ExponentialBoundsCovering(1.0, 50.0, 10.0);
  ASSERT_EQ(overshoot.size(), 3u);
  EXPECT_GE(overshoot.back(), 50.0);
}

TEST(HistogramTest, ExponentialBoundsCoveringRejectsDegenerateInputs) {
  EXPECT_TRUE(ExponentialBoundsCovering(0.0, 100.0, 10.0).empty());
  EXPECT_TRUE(ExponentialBoundsCovering(-1.0, 100.0, 10.0).empty());
  EXPECT_TRUE(ExponentialBoundsCovering(1.0, 100.0, 1.0).empty());
  // hi <= lo still yields the single lo bound.
  const auto single = ExponentialBoundsCovering(5.0, 5.0, 2.0);
  ASSERT_EQ(single.size(), 1u);
  EXPECT_DOUBLE_EQ(single[0], 5.0);
}

TEST(HistogramTest, LatencyBoundsMicrosCoverMicrosecondToTenSeconds) {
  const auto bounds = LatencyBoundsMicros();
  ASSERT_FALSE(bounds.empty());
  EXPECT_DOUBLE_EQ(bounds.front(), 1.0);
  EXPECT_GE(bounds.back(), 1e7);
  for (std::size_t i = 1; i < bounds.size(); ++i) {
    EXPECT_GT(bounds[i], bounds[i - 1]);
  }
}

TEST(MetricsRegistryTest, DefaultIsASingleton) {
  EXPECT_EQ(&MetricsRegistry::Default(), &MetricsRegistry::Default());
}

}  // namespace
}  // namespace obs
}  // namespace ssr
