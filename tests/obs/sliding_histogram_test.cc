// SlidingHistogram / SlidingCounter contract tests: ring rotation under a
// manual clock, horizon merging and decay, quantile interpolation, and the
// delta-capture cursor over cumulative registry instruments (first capture
// credits nothing; a source Reset re-syncs instead of going negative).

#include "obs/sliding_histogram.h"

#include <vector>

#include <gtest/gtest.h>

#include "obs/metrics.h"

namespace ssr {
namespace obs {
namespace {

std::vector<double> Bounds() { return {10.0, 100.0, 1000.0}; }

TEST(SlidingHistogramTest, ObserveAndQuantileWithinOneWindow) {
  SlidingHistogram h(Bounds(), /*interval_seconds=*/5.0, /*num_windows=*/12);
  // 50 observations <= 10, 40 in (10, 100], 10 in (100, 1000].
  for (int i = 0; i < 50; ++i) h.Observe(5.0, 0.0);
  for (int i = 0; i < 40; ++i) h.Observe(50.0, 0.0);
  for (int i = 0; i < 10; ++i) h.Observe(500.0, 0.0);

  const auto snap = h.Over(60.0, 0.0);
  EXPECT_EQ(snap.count, 100u);
  ASSERT_EQ(snap.counts.size(), 4u);  // 3 bounds + overflow
  EXPECT_EQ(snap.counts[0], 50u);
  EXPECT_EQ(snap.counts[1], 40u);
  EXPECT_EQ(snap.counts[2], 10u);
  EXPECT_EQ(snap.counts[3], 0u);

  // p50 lands exactly on the first bucket's upper bound (rank 50 of 50 in
  // bucket [0, 10], interpolated to the top).
  EXPECT_DOUBLE_EQ(h.Quantile(0.5, 60.0, 0.0), 10.0);
  // p99 -> rank 99 inside the third bucket (counts 90..100 span it).
  const double p99 = h.Quantile(0.99, 60.0, 0.0);
  EXPECT_GT(p99, 100.0);
  EXPECT_LE(p99, 1000.0);
  EXPECT_DOUBLE_EQ(h.Quantile(0.5, 60.0, 100.0), 0.0) << "decayed to empty";
}

TEST(SlidingHistogramTest, HorizonSelectsOnlyRecentWindows) {
  SlidingHistogram h(Bounds(), 5.0, 12);
  h.Observe(5.0, 0.0);    // window [0, 5)
  h.Observe(50.0, 7.0);   // window [5, 10)
  h.Observe(500.0, 12.0); // window [10, 15)

  // A 5-second horizon at t=12 merges just the current window.
  auto snap = h.Over(5.0, 12.0);
  EXPECT_EQ(snap.count, 1u);
  EXPECT_EQ(snap.counts[2], 1u);
  // A 10-second horizon adds the previous one.
  snap = h.Over(10.0, 12.0);
  EXPECT_EQ(snap.count, 2u);
  // The full ring still sees all three.
  snap = h.Over(3600.0, 12.0);
  EXPECT_EQ(snap.count, 3u);
}

TEST(SlidingHistogramTest, OldWindowsDecayAsTheClockAdvances) {
  SlidingHistogram h(Bounds(), 1.0, 4);  // 4-second ring
  h.Observe(5.0, 0.0);
  EXPECT_EQ(h.Over(10.0, 0.0).count, 1u);
  EXPECT_EQ(h.Over(10.0, 3.5).count, 1u);  // still inside the ring
  EXPECT_EQ(h.Over(10.0, 4.5).count, 0u);  // rotated out
}

TEST(SlidingHistogramTest, LargeClockSkipZeroesTheRing) {
  SlidingHistogram h(Bounds(), 1.0, 4);
  h.Observe(5.0, 0.0);
  // Jump far past the ring span: everything must clear, and the structure
  // must keep accepting observations at the new time base.
  h.Observe(50.0, 1000.0);
  const auto snap = h.Over(10.0, 1000.0);
  EXPECT_EQ(snap.count, 1u);
  EXPECT_EQ(snap.counts[1], 1u);
}

TEST(SlidingHistogramTest, CoveredSecondsReportsPartialHorizons) {
  SlidingHistogram h(Bounds(), 5.0, 720);
  h.Observe(5.0, 0.0);
  // 2 seconds into the first window, a 1h horizon has only 2s of data.
  const auto snap = h.Over(3600.0, 2.0);
  EXPECT_DOUBLE_EQ(snap.covered_seconds, 2.0);
  // After 3 full windows + 1s, coverage is 16s.
  const auto later = h.Over(3600.0, 16.0);
  EXPECT_DOUBLE_EQ(later.covered_seconds, 16.0);
}

TEST(SlidingHistogramTest, AddBucketFeedsTheOverflowBucket) {
  SlidingHistogram h(Bounds(), 5.0, 12);
  h.AddBucket(3, 7, 0.0);  // the overflow bucket
  const auto snap = h.Over(60.0, 0.0);
  EXPECT_EQ(snap.counts[3], 7u);
  // Overflow observations quote the last finite bound, not infinity.
  EXPECT_DOUBLE_EQ(h.Quantile(0.99, 60.0, 0.0), 1000.0);
}

TEST(SlidingHistogramTest, CaptureDeltaCreditsOnlyGrowth) {
  MetricsRegistry registry;
  Histogram* source = registry.GetHistogram("test_latency", "", Bounds());
  for (int i = 0; i < 20; ++i) source->Observe(5.0);

  SlidingHistogram h(Bounds(), 5.0, 12);
  // First capture establishes the cursor: the 20 pre-existing
  // observations are history, not "this window".
  h.CaptureDelta(*source, 0.0);
  EXPECT_EQ(h.Over(60.0, 0.0).count, 0u);

  for (int i = 0; i < 3; ++i) source->Observe(50.0);
  h.CaptureDelta(*source, 1.0);
  const auto snap = h.Over(60.0, 1.0);
  EXPECT_EQ(snap.count, 3u);
  EXPECT_EQ(snap.counts[1], 3u);
}

TEST(SlidingHistogramTest, CaptureDeltaResyncsAfterSourceReset) {
  MetricsRegistry registry;
  Histogram* source = registry.GetHistogram("test_latency", "", Bounds());
  SlidingHistogram h(Bounds(), 5.0, 12);
  h.CaptureDelta(*source, 0.0);
  source->Observe(5.0);
  h.CaptureDelta(*source, 1.0);
  EXPECT_EQ(h.Over(60.0, 1.0).count, 1u);

  // Between-phases idiom: the source resets. The capture that sees the
  // wrapped-around value must credit nothing (no bogus negative delta),
  // and growth after the re-sync is credited normally again.
  registry.ResetAll();
  h.CaptureDelta(*source, 2.0);
  EXPECT_EQ(h.Over(60.0, 2.0).count, 1u) << "reset credited a wrap";
  source->Observe(50.0);
  h.CaptureDelta(*source, 3.0);
  EXPECT_EQ(h.Over(60.0, 3.0).count, 2u);
}

TEST(SlidingHistogramTest, CaptureDeltaIgnoresMismatchedBounds) {
  MetricsRegistry registry;
  Histogram* other =
      registry.GetHistogram("test_other", "", {1.0, 2.0});
  SlidingHistogram h(Bounds(), 5.0, 12);
  other->Observe(1.5);
  h.CaptureDelta(*other, 0.0);
  other->Observe(1.5);
  h.CaptureDelta(*other, 1.0);
  EXPECT_EQ(h.Over(60.0, 1.0).count, 0u);
}

TEST(SlidingCounterTest, AddOverAndDecay) {
  SlidingCounter c(5.0, 12);
  c.Add(10, 0.0);
  c.Add(5, 7.0);
  EXPECT_EQ(c.Over(5.0, 7.0), 5u);
  EXPECT_EQ(c.Over(60.0, 7.0), 15u);
  EXPECT_EQ(c.Over(60.0, 7.0 + 12 * 5.0), 0u);
}

TEST(SlidingCounterTest, CaptureDeltaAndReset) {
  MetricsRegistry registry;
  Counter* source = registry.GetCounter("test_total");
  source->Add(100);

  SlidingCounter c(5.0, 12);
  c.CaptureDelta(*source, 0.0);
  EXPECT_EQ(c.Over(60.0, 0.0), 0u) << "first capture is the baseline";
  source->Add(7);
  c.CaptureDelta(*source, 1.0);
  EXPECT_EQ(c.Over(60.0, 1.0), 7u);

  registry.ResetAll();
  c.CaptureDelta(*source, 2.0);  // wrap: re-sync, credit nothing
  EXPECT_EQ(c.Over(60.0, 2.0), 7u);
  source->Add(2);
  c.CaptureDelta(*source, 3.0);
  EXPECT_EQ(c.Over(60.0, 3.0), 7u + 2u);
}

}  // namespace
}  // namespace obs
}  // namespace ssr
