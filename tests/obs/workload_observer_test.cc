// WorkloadObserver contract: bins follow the SimilarityHistogram
// convention, MergeFrom is exact (merged workers == one observer fed
// serially), scoped observers mirror into the default registry, and the
// same seeded workload produces the same query-level capture whether it
// runs serially, through the batch executor's per-worker observers, or
// through the sharded query router.

#include "obs/workload_observer.h"

#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <vector>

#include "core/set_similarity_index.h"
#include "exec/batch_executor.h"
#include "obs/export.h"
#include "obs/metrics.h"
#include "shard/query_router.h"
#include "shard/sharded_index.h"
#include "util/random.h"
#include "util/set_ops.h"

namespace ssr {
namespace obs {
namespace {

TEST(WorkloadObserverTest, ThresholdBinsFollowHistogramConvention) {
  WorkloadObserverOptions options;
  options.threshold_bins = 4;
  WorkloadObserver observer(options);
  observer.CountQuery(0.0, 0.24, 3);    // σ1 bin 0, σ2 bin 0
  observer.CountQuery(0.25, 0.5, 3);    // σ1 bin 1, σ2 bin 2
  observer.CountQuery(0.74, 1.0, 3);    // σ1 bin 2, σ2 bin 3 (last closed)
  const WorkloadSnapshot snap = observer.Snapshot();
  ASSERT_EQ(snap.sigma1_bins.size(), 4u);
  EXPECT_EQ(snap.queries, 3u);
  EXPECT_EQ(snap.sigma1_bins[0], 1u);
  EXPECT_EQ(snap.sigma1_bins[1], 1u);
  EXPECT_EQ(snap.sigma1_bins[2], 1u);
  EXPECT_EQ(snap.sigma1_bins[3], 0u);
  EXPECT_EQ(snap.sigma2_bins[0], 1u);
  EXPECT_EQ(snap.sigma2_bins[2], 1u);
  EXPECT_EQ(snap.sigma2_bins[3], 1u);
}

TEST(WorkloadObserverTest, RangeCoverageIsFractionalOverlapPerBin) {
  WorkloadObserverOptions options;
  options.threshold_bins = 4;
  WorkloadObserver observer(options);
  // [0.25, 0.75] fully covers bins 1 and 2, misses bins 0 and 3.
  observer.CountQuery(0.25, 0.75, 1);
  // [0.0, 0.125] covers half of bin 0.
  observer.CountQuery(0.0, 0.125, 1);
  const WorkloadSnapshot snap = observer.Snapshot();
  ASSERT_EQ(snap.range_coverage.size(), 4u);
  EXPECT_NEAR(snap.range_coverage[0], 0.5, 1e-4);
  EXPECT_NEAR(snap.range_coverage[1], 1.0, 1e-4);
  EXPECT_NEAR(snap.range_coverage[2], 1.0, 1e-4);
  EXPECT_NEAR(snap.range_coverage[3], 0.0, 1e-4);
}

TEST(WorkloadObserverTest, ProbesBeyondMaxFisAreDroppedAndCounted) {
  WorkloadObserverOptions options;
  options.max_fis = 2;
  WorkloadObserver observer(options);
  observer.CountFiProbe(0, 5, 10, false);
  observer.CountFiProbe(1, 3, 4, true);
  observer.CountFiProbe(7, 9, 9, false);  // out of range
  const WorkloadSnapshot snap = observer.Snapshot();
  ASSERT_EQ(snap.fis.size(), 2u);
  EXPECT_EQ(snap.fis[0].probes, 1u);
  EXPECT_EQ(snap.fis[0].bucket_accesses, 5u);
  EXPECT_EQ(snap.fis[0].sids, 10u);
  EXPECT_EQ(snap.fis[1].failed_probes, 1u);
  EXPECT_EQ(observer.dropped_fi_probes(), 1u);
  EXPECT_DOUBLE_EQ(snap.fis[0].selectivity(), 10.0);
}

TEST(WorkloadObserverTest, ShardSkewIsMaxShareTimesShards) {
  WorkloadObserverOptions options;
  options.num_shards = 2;
  WorkloadObserver observer(options);
  EXPECT_DOUBLE_EQ(observer.Snapshot().ShardSkew(), 0.0);
  observer.CountShardAnswer(0, 4);
  observer.CountShardAnswer(0, 0);
  observer.CountShardAnswer(0, 1);
  observer.CountShardAnswer(1, 2);
  const WorkloadSnapshot snap = observer.Snapshot();
  EXPECT_EQ(snap.shards[0].queries, 3u);
  EXPECT_EQ(snap.shards[0].results, 5u);
  EXPECT_EQ(snap.shards[1].queries, 1u);
  // Max share 3/4 over 2 shards -> skew 1.5.
  EXPECT_NEAR(snap.ShardSkew(), 1.5, 1e-9);
}

void ExpectQueryLevelEqual(const WorkloadSnapshot& a,
                           const WorkloadSnapshot& b, const char* label) {
  EXPECT_EQ(a.queries, b.queries) << label;
  EXPECT_EQ(a.sigma1_bins, b.sigma1_bins) << label;
  EXPECT_EQ(a.sigma2_bins, b.sigma2_bins) << label;
  ASSERT_EQ(a.range_coverage.size(), b.range_coverage.size()) << label;
  for (std::size_t i = 0; i < a.range_coverage.size(); ++i) {
    EXPECT_NEAR(a.range_coverage[i], b.range_coverage[i], 1e-4)
        << label << " bin " << i;
  }
  EXPECT_EQ(a.set_size_bins, b.set_size_bins) << label;
}

TEST(WorkloadObserverTest, MergedWorkerObserversEqualSerialObserver) {
  Rng rng(321);
  WorkloadObserverOptions options;
  options.max_fis = 4;
  options.num_shards = 3;
  WorkloadObserver serial(options);
  WorkloadObserver merged(options);
  std::vector<std::unique_ptr<WorkloadObserver>> workers;
  for (int w = 0; w < 3; ++w) {
    workers.push_back(std::make_unique<WorkloadObserver>(options));
  }
  for (int i = 0; i < 200; ++i) {
    const double s1 = rng.NextDouble();
    const double s2 = s1 + rng.NextDouble() * (1.0 - s1);
    const std::size_t size = 1 + rng.Uniform(500);
    WorkloadObserver& worker = *workers[rng.Uniform(3)];
    serial.CountQuery(s1, s2, size);
    worker.CountQuery(s1, s2, size);
    const std::size_t fi = rng.Uniform(4);
    const std::uint64_t accesses = rng.Uniform(10);
    const std::uint64_t sids = rng.Uniform(50);
    serial.CountFiProbe(fi, accesses, sids, (i % 7) == 0);
    worker.CountFiProbe(fi, accesses, sids, (i % 7) == 0);
    const std::uint32_t shard = static_cast<std::uint32_t>(rng.Uniform(3));
    serial.CountShardAnswer(shard, sids);
    worker.CountShardAnswer(shard, sids);
  }
  for (const auto& worker : workers) merged.MergeFrom(*worker);

  const WorkloadSnapshot a = serial.Snapshot();
  const WorkloadSnapshot b = merged.Snapshot();
  ExpectQueryLevelEqual(a, b, "merged");
  ASSERT_EQ(a.fis.size(), b.fis.size());
  for (std::size_t i = 0; i < a.fis.size(); ++i) {
    EXPECT_EQ(a.fis[i].probes, b.fis[i].probes) << i;
    EXPECT_EQ(a.fis[i].failed_probes, b.fis[i].failed_probes) << i;
    EXPECT_EQ(a.fis[i].bucket_accesses, b.fis[i].bucket_accesses) << i;
    EXPECT_EQ(a.fis[i].sids, b.fis[i].sids) << i;
  }
  ASSERT_EQ(a.shards.size(), b.shards.size());
  for (std::size_t s = 0; s < a.shards.size(); ++s) {
    EXPECT_EQ(a.shards[s].queries, b.shards[s].queries) << s;
    EXPECT_EQ(a.shards[s].results, b.shards[s].results) << s;
  }
}

TEST(WorkloadObserverTest, ScopedObserverRendersInPrometheusExport) {
  auto& registry = MetricsRegistry::Default();
  WorkloadObserverOptions options;
  options.max_fis = 2;
  options.num_shards = 2;
  options.metrics_scope = registry.NewScope("wobs_test");
  WorkloadObserver observer(options);
  observer.CountQuery(0.3, 0.9, 40);
  observer.CountFiProbe(0, 2, 7, false);
  observer.CountShardAnswer(0, 3);
  observer.CountShardAnswer(1, 1);
  observer.UpdateGauges();
  const std::string text = PrometheusText(registry);
  EXPECT_NE(text.find("ssr_workload_queries_total"), std::string::npos);
  EXPECT_NE(text.find("ssr_workload_sigma1"), std::string::npos);
  EXPECT_NE(text.find("ssr_workload_fi_selectivity"), std::string::npos);
  EXPECT_NE(text.find("ssr_workload_shard_skew"), std::string::npos);
  EXPECT_NE(text.find(options.metrics_scope), std::string::npos);
}

// The same seeded workload captured three ways — serial index queries,
// the batch executor's per-worker merge, and the sharded router — must
// agree exactly on the query-level capture (thresholds, coverage, sizes).
// FI-level counts must also agree between serial and batch (same index);
// the router's FI totals sum across shards, so only their presence is
// checked there.
TEST(WorkloadObserverTest, SerialBatchAndShardedCapturesAgree) {
  Rng rng(7777);
  SetCollection sets;
  SetStore store;
  for (int i = 0; i < 200; ++i) {
    ElementSet s;
    const std::size_t size = 10 + rng.Uniform(40);
    for (std::size_t j = 0; j < size; ++j) s.push_back(rng.Uniform(4000));
    NormalizeSet(s);
    if (s.empty()) s.push_back(1);
    sets.push_back(s);
    ASSERT_TRUE(store.Add(s).ok());
  }
  IndexLayout layout;
  layout.delta = 0.4;
  layout.points = {{0.2, FilterKind::kDissimilarity, 8, 0},
                   {0.5, FilterKind::kSimilarity, 8, 0},
                   {0.8, FilterKind::kSimilarity, 8, 0}};
  IndexOptions options;
  options.embedding.minhash.num_hashes = 60;
  options.embedding.minhash.seed = 99;
  options.seed = 1234;
  auto index = SetSimilarityIndex::Build(store, layout, options);
  ASSERT_TRUE(index.ok()) << index.status().ToString();

  std::vector<exec::BatchQuery> batch;
  for (int t = 0; t < 80; ++t) {
    exec::BatchQuery q;
    q.query = sets[rng.Uniform(sets.size())];
    q.sigma1 = rng.NextDouble() * 0.8;
    q.sigma2 = q.sigma1 + rng.NextDouble() * (1.0 - q.sigma1);
    batch.push_back(std::move(q));
  }

  WorkloadObserverOptions obs_options;
  obs_options.max_fis = 4;

  WorkloadObserver serial_obs(obs_options);
  index->AttachWorkloadObserver(&serial_obs);
  for (const auto& q : batch) {
    ASSERT_TRUE(index->Query(q.query, q.sigma1, q.sigma2).ok());
  }
  index->AttachWorkloadObserver(nullptr);

  WorkloadObserver batch_obs(obs_options);
  exec::BatchExecutorOptions exec_options;
  exec_options.num_threads = 4;
  exec_options.workload_observer = &batch_obs;
  exec::BatchExecutor executor(*index, exec_options);
  const exec::BatchResult batch_result = executor.Run(batch);
  ASSERT_EQ(batch_result.failed, 0u);

  WorkloadObserverOptions shard_obs_options = obs_options;
  shard_obs_options.num_shards = 2;
  WorkloadObserver shard_obs(shard_obs_options);
  shard::ShardedIndexOptions shard_options;
  shard_options.num_shards = 2;
  shard_options.index = options;
  auto sharded = shard::ShardedSetSimilarityIndex::Build(sets, layout,
                                                         shard_options);
  ASSERT_TRUE(sharded.ok()) << sharded.status().ToString();
  shard::QueryRouterOptions router_options;
  router_options.num_threads = 4;
  router_options.workload_observer = &shard_obs;
  shard::QueryRouter router(*sharded, router_options);
  const shard::RoutedBatchResult routed = router.RunBatch(batch);
  ASSERT_EQ(routed.failed, 0u);

  const WorkloadSnapshot serial_snap = serial_obs.Snapshot();
  const WorkloadSnapshot batch_snap = batch_obs.Snapshot();
  const WorkloadSnapshot shard_snap = shard_obs.Snapshot();
  ExpectQueryLevelEqual(serial_snap, batch_snap, "batch");
  ExpectQueryLevelEqual(serial_snap, shard_snap, "sharded");

  // Same index, same queries: FI-level agreement between serial and batch.
  ASSERT_EQ(serial_snap.fis.size(), batch_snap.fis.size());
  for (std::size_t i = 0; i < serial_snap.fis.size(); ++i) {
    EXPECT_EQ(serial_snap.fis[i].probes, batch_snap.fis[i].probes) << i;
    EXPECT_EQ(serial_snap.fis[i].bucket_accesses,
              batch_snap.fis[i].bucket_accesses)
        << i;
    EXPECT_EQ(serial_snap.fis[i].sids, batch_snap.fis[i].sids) << i;
  }

  // The router observed both shards and every query landed somewhere.
  ASSERT_EQ(shard_snap.shards.size(), 2u);
  EXPECT_EQ(shard_snap.shards[0].queries + shard_snap.shards[1].queries,
            2 * batch.size());  // every query probes both shards
  EXPECT_GT(shard_snap.fis[0].probes + shard_snap.fis[1].probes +
                shard_snap.fis[2].probes + shard_snap.fis[3].probes,
            0u);
}

}  // namespace
}  // namespace obs
}  // namespace ssr
