#include "obs/export.h"

#include <gtest/gtest.h>

#include <limits>
#include <string>

#include "obs/json_writer.h"
#include "obs/metrics.h"
#include "obs/trace.h"

namespace ssr {
namespace obs {
namespace {

// A small registry covering every instrument kind, scoped and unscoped.
MetricsRegistry& GoldenRegistry(MetricsRegistry& registry) {
  registry.GetCounter("ssr_queries_total")->Add(42);
  registry.GetCounter("ssr_hits_total", "pool/0")->Add(7);
  registry.GetGauge("ssr_live_sets", "index/0")->Set(123.0);
  Histogram* h =
      registry.GetHistogram("ssr_candidates", "index/0", {1.0, 10.0, 100.0});
  h->Observe(0.5);
  h->Observe(5.0);
  h->Observe(5.0);
  h->Observe(50.0);
  h->Observe(500.0);
  return registry;
}

TEST(PrometheusTextTest, GoldenOutput) {
  MetricsRegistry registry;
  GoldenRegistry(registry);
  const std::string expected =
      "# TYPE ssr_candidates histogram\n"
      "ssr_candidates_bucket{scope=\"index/0\",le=\"1\"} 1\n"
      "ssr_candidates_bucket{scope=\"index/0\",le=\"10\"} 3\n"
      "ssr_candidates_bucket{scope=\"index/0\",le=\"100\"} 4\n"
      "ssr_candidates_bucket{scope=\"index/0\",le=\"+Inf\"} 5\n"
      "ssr_candidates_sum{scope=\"index/0\"} 560.5\n"
      "ssr_candidates_count{scope=\"index/0\"} 5\n"
      "# TYPE ssr_hits_total counter\n"
      "ssr_hits_total{scope=\"pool/0\"} 7\n"
      "# TYPE ssr_live_sets gauge\n"
      "ssr_live_sets{scope=\"index/0\"} 123\n"
      "# TYPE ssr_queries_total counter\n"
      "ssr_queries_total 42\n";
  EXPECT_EQ(PrometheusText(registry), expected);
}

TEST(PrometheusTextTest, ProcessScopeHasNoLabelSet) {
  MetricsRegistry registry;
  registry.GetCounter("bare_total")->Increment();
  EXPECT_EQ(PrometheusText(registry),
            "# TYPE bare_total counter\nbare_total 1\n");
}

TEST(PrometheusTextTest, ScopeValueIsEscaped) {
  MetricsRegistry registry;
  registry.GetCounter("c_total", "we\"ird\\scope")->Increment();
  const std::string text = PrometheusText(registry);
  EXPECT_NE(text.find("c_total{scope=\"we\\\"ird\\\\scope\"} 1"),
            std::string::npos);
}

TEST(PrometheusTextTest, SameNameAcrossScopesEmitsOneTypeLine) {
  MetricsRegistry registry;
  registry.GetCounter("dup_total", "a");
  registry.GetCounter("dup_total", "b");
  const std::string text = PrometheusText(registry);
  std::size_t type_lines = 0;
  for (std::size_t pos = text.find("# TYPE"); pos != std::string::npos;
       pos = text.find("# TYPE", pos + 1)) {
    ++type_lines;
  }
  EXPECT_EQ(type_lines, 1u);
}

TEST(MetricsJsonTest, GoldenOutput) {
  MetricsRegistry registry;
  GoldenRegistry(registry);
  const std::string expected =
      "{\"counters\":["
      "{\"name\":\"ssr_hits_total\",\"scope\":\"pool/0\",\"value\":7},"
      "{\"name\":\"ssr_queries_total\",\"scope\":\"\",\"value\":42}"
      "],\"gauges\":["
      "{\"name\":\"ssr_live_sets\",\"scope\":\"index/0\",\"value\":123}"
      "],\"histograms\":["
      "{\"name\":\"ssr_candidates\",\"scope\":\"index/0\","
      "\"count\":5,\"sum\":560.5,\"buckets\":["
      "{\"le\":1,\"count\":1},"
      "{\"le\":10,\"count\":2},"
      "{\"le\":100,\"count\":1},"
      "{\"le\":\"+Inf\",\"count\":1}"
      "]}]}";
  EXPECT_EQ(MetricsJson(registry), expected);
}

TEST(MetricsJsonTest, EmptyRegistryIsValidShape) {
  MetricsRegistry registry;
  EXPECT_EQ(MetricsJson(registry),
            "{\"counters\":[],\"gauges\":[],\"histograms\":[]}");
}

TEST(TraceJsonTest, EmitsSpansOldestFirstWithTags) {
  Tracer tracer(8);
  tracer.set_enabled(true);
  {
    TraceSpan root(tracer, "query");
    root.Tag("plan", "sfi_pair");
    { TraceSpan child(tracer, "embed"); }
  }
  const std::string json = TraceJson(tracer);
  // Completion order: embed then query.
  const std::size_t embed_pos = json.find("\"name\":\"embed\"");
  const std::size_t query_pos = json.find("\"name\":\"query\"");
  ASSERT_NE(embed_pos, std::string::npos);
  ASSERT_NE(query_pos, std::string::npos);
  EXPECT_LT(embed_pos, query_pos);
  EXPECT_NE(json.find("\"tags\":{\"plan\":\"sfi_pair\"}"), std::string::npos);
  EXPECT_NE(json.find("\"depth\":1"), std::string::npos);
  EXPECT_EQ(json.front(), '[');
  EXPECT_EQ(json.back(), ']');
}

TEST(TraceJsonTest, EmptyTracerIsEmptyArray) {
  Tracer tracer(4);
  EXPECT_EQ(TraceJson(tracer), "[]");
}

TEST(JsonWriterTest, EscapesControlAndQuoteCharacters) {
  EXPECT_EQ(JsonWriter::Escape("a\"b\\c\nd\te"), "a\\\"b\\\\c\\nd\\te");
  EXPECT_EQ(JsonWriter::Escape(std::string_view("\x01", 1)), "\\u0001");
}

TEST(JsonWriterTest, EscapesEveryBareControlCharacterAsUnicode) {
  // The named escapes (\b \f \n \r \t) are handled above; every other
  // C0 control character must render as a four-digit \u escape.
  EXPECT_EQ(JsonWriter::Escape(std::string_view("\x00", 1)), "\\u0000");
  EXPECT_EQ(JsonWriter::Escape("\x0b"), "\\u000b");  // vertical tab
  EXPECT_EQ(JsonWriter::Escape("\x1b"), "\\u001b");  // ESC
  EXPECT_EQ(JsonWriter::Escape("\x1f"), "\\u001f");
  // 0x20 (space) and 0x7f (DEL) are not C0 controls: pass through.
  EXPECT_EQ(JsonWriter::Escape(" \x7f"), " \x7f");
}

TEST(JsonWriterTest, MultiByteUtf8PassesThroughUntouched) {
  // High bytes are never control characters; UTF-8 sequences must survive
  // byte-for-byte (JSON strings are UTF-8 by default).
  EXPECT_EQ(JsonWriter::Escape("caf\xc3\xa9"), "caf\xc3\xa9");       // é
  EXPECT_EQ(JsonWriter::Escape("\xe2\x82\xac"), "\xe2\x82\xac");    // €
  EXPECT_EQ(JsonWriter::Escape("\xf0\x9f\x94\xa5"), "\xf0\x9f\x94\xa5");
  // Mixed: escapes apply to the ASCII part only.
  EXPECT_EQ(JsonWriter::Escape("\xc3\xa9\n\""), "\xc3\xa9\\n\\\"");
}

TEST(JsonWriterTest, NonFiniteDoublesRenderAsNull) {
  JsonWriter writer;
  writer.BeginArray();
  writer.Double(std::numeric_limits<double>::infinity());
  writer.Double(std::numeric_limits<double>::quiet_NaN());
  writer.Double(1.5);
  writer.EndArray();
  EXPECT_EQ(writer.str(), "[null,null,1.5]");
}

TEST(JsonWriterTest, CommaPlacementInNestedContainers) {
  JsonWriter writer;
  writer.BeginObject();
  writer.Key("a").Int(1);
  writer.Key("b").BeginArray().Int(2).Int(3).EndArray();
  writer.Key("c").BeginObject().Key("d").Bool(true).EndObject();
  writer.EndObject();
  EXPECT_EQ(writer.str(), "{\"a\":1,\"b\":[2,3],\"c\":{\"d\":true}}");
}

}  // namespace
}  // namespace obs
}  // namespace ssr
