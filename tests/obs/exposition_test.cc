// Exposition-conformance tests: the metric-name grammar, the # HELP table
// (sorted, valid, covering every real instrument name), the validator's
// per-line and per-family checks — including the torn-histogram detector —
// and the end-to-end guarantee that PrometheusText renders conformant text
// for a populated registry.

#include "obs/exposition.h"

#include <string>

#include <gtest/gtest.h>

#include "obs/export.h"
#include "obs/metrics.h"

namespace ssr {
namespace obs {
namespace {

TEST(ExpositionTest, MetricNameGrammar) {
  EXPECT_TRUE(IsValidMetricName("ssr_index_queries_total"));
  EXPECT_TRUE(IsValidMetricName("_leading_underscore"));
  EXPECT_TRUE(IsValidMetricName("colon:name"));
  EXPECT_TRUE(IsValidMetricName("x9"));
  EXPECT_FALSE(IsValidMetricName(""));
  EXPECT_FALSE(IsValidMetricName("9leading_digit"));
  EXPECT_FALSE(IsValidMetricName("dash-name"));
  EXPECT_FALSE(IsValidMetricName("space name"));
  EXPECT_FALSE(IsValidMetricName("utf8_\xc3\xa9"));
}

TEST(ExpositionTest, HelpTableIsSortedValidAndConsistent) {
  const auto& table = MetricHelpTable();
  ASSERT_FALSE(table.empty());
  for (std::size_t i = 0; i < table.size(); ++i) {
    EXPECT_TRUE(IsValidMetricName(table[i].name)) << table[i].name;
    EXPECT_FALSE(table[i].help.empty()) << table[i].name;
    if (i > 0) {
      EXPECT_LT(table[i - 1].name, table[i].name)
          << "table must stay strictly name-sorted (lookup is binary "
             "search)";
    }
    // The lookup function and the table must agree on every entry.
    const char* help = MetricHelp(table[i].name);
    ASSERT_NE(help, nullptr) << table[i].name;
    EXPECT_EQ(std::string(help), std::string(table[i].help));
  }
  EXPECT_EQ(MetricHelp("no_such_metric_name"), nullptr);
}

TEST(ExpositionTest, HelpTableCoversTheIntrospectionPlane) {
  for (const char* name :
       {"ssr_index_queries_total", "ssr_index_query_latency_micros",
        "ssr_router_query_latency_micros", "ssr_server_requests_total",
        "ssr_server_connections_rejected_total", "ssr_slo_p50_micros",
        "ssr_slo_p99_micros", "ssr_slo_availability", "ssr_slo_burn_rate",
        "ssr_health_verdict"}) {
    EXPECT_NE(MetricHelp(name), nullptr) << name;
  }
}

TEST(ExpositionTest, EveryRegisteredMetricHasHelpAndAValidName) {
  // The conformance contract: an instrument that reaches the process-wide
  // registry without a help-table entry fails here (and would render a
  // HELP-less family on /metrics). Test-local registries are exempt; this
  // walks whatever real components registered in this process.
  for (const auto& entry : MetricsRegistry::Default().Entries()) {
    EXPECT_TRUE(IsValidMetricName(entry.name)) << entry.name;
    EXPECT_NE(MetricHelp(entry.name), nullptr)
        << entry.name << " is registered but has no # HELP entry "
        << "(add it to kHelpTable in obs/exposition.cc)";
  }
}

TEST(ExpositionTest, RenderedRegistryValidatesCleanly) {
  MetricsRegistry registry;
  registry.GetCounter("ssr_index_queries_total", "index/0")->Add(42);
  registry.GetGauge("ssr_index_live_sets")->Set(17.0);
  Histogram* h = registry.GetHistogram("ssr_index_query_latency_micros",
                                       "index/0", LatencyBoundsMicros());
  h->Observe(12.0);
  h->Observe(480.0);
  h->Observe(1e9);  // overflow bucket

  const std::string text = PrometheusText(registry);
  const auto issues = ValidateExposition(text);
  EXPECT_TRUE(issues.empty()) << FormatIssues(issues);
  EXPECT_NE(text.find("# HELP ssr_index_queries_total"), std::string::npos);
  EXPECT_NE(text.find("# TYPE ssr_index_query_latency_micros histogram"),
            std::string::npos);
  EXPECT_NE(text.find("le=\"+Inf\""), std::string::npos);
}

TEST(ExpositionTest, HandWrittenConformantDocumentPasses) {
  const std::string text =
      "# HELP x_total A counter.\n"
      "# TYPE x_total counter\n"
      "x_total{scope=\"a/0\"} 3\n"
      "# TYPE y_micros histogram\n"
      "y_micros_bucket{le=\"1\"} 2\n"
      "y_micros_bucket{le=\"+Inf\"} 5\n"
      "y_micros_sum 9.5\n"
      "y_micros_count 5\n";
  const auto issues = ValidateExposition(text);
  EXPECT_TRUE(issues.empty()) << FormatIssues(issues);
}

TEST(ExpositionTest, DetectsATornHistogramFamily) {
  const std::string text =
      "# TYPE y_micros histogram\n"
      "y_micros_bucket{le=\"1\"} 2\n"
      "y_micros_bucket{le=\"+Inf\"} 5\n"
      "y_micros_sum 9.5\n"
      "y_micros_count 4\n";  // != the +Inf bucket: torn mid-mutation
  const auto issues = ValidateExposition(text);
  ASSERT_FALSE(issues.empty());
  EXPECT_NE(FormatIssues(issues).find("torn"), std::string::npos);
}

TEST(ExpositionTest, DetectsHistogramShapeViolations) {
  // Missing +Inf bucket.
  EXPECT_FALSE(ValidateExposition("# TYPE h histogram\n"
                                  "h_bucket{le=\"1\"} 1\n"
                                  "h_sum 1\nh_count 1\n")
                   .empty());
  // Non-cumulative buckets.
  EXPECT_FALSE(ValidateExposition("# TYPE h histogram\n"
                                  "h_bucket{le=\"1\"} 5\n"
                                  "h_bucket{le=\"+Inf\"} 3\n"
                                  "h_sum 1\nh_count 3\n")
                   .empty());
  // Missing _sum.
  EXPECT_FALSE(ValidateExposition("# TYPE h histogram\n"
                                  "h_bucket{le=\"+Inf\"} 3\n"
                                  "h_count 3\n")
                   .empty());
}

TEST(ExpositionTest, DetectsLineLevelViolations) {
  // A sample before its TYPE.
  EXPECT_FALSE(ValidateExposition("x_total 1\n").empty());
  // Bad metric name.
  EXPECT_FALSE(ValidateExposition("# TYPE 9bad counter\n").empty());
  // Unparseable value.
  EXPECT_FALSE(
      ValidateExposition("# TYPE x gauge\nx four\n").empty());
  // Duplicate series.
  EXPECT_FALSE(
      ValidateExposition("# TYPE x gauge\nx 1\nx 2\n").empty());
  // Duplicate label name.
  EXPECT_FALSE(ValidateExposition(
                   "# TYPE x gauge\nx{a=\"1\",a=\"2\"} 3\n")
                   .empty());
  // Missing trailing newline is a document-level issue.
  const auto issues = ValidateExposition("# TYPE x gauge\nx 1");
  ASSERT_FALSE(issues.empty());
  EXPECT_EQ(issues.back().line, 0u);
}

TEST(ExpositionTest, AcceptsEscapedLabelValuesAndInfNan) {
  const std::string text =
      "# TYPE x gauge\n"
      "x{scope=\"we\\\"ird\\\\scope\\n\"} 1\n"
      "# TYPE y gauge\n"
      "y +Inf\n"
      "# TYPE z gauge\n"
      "z NaN\n";
  const auto issues = ValidateExposition(text);
  EXPECT_TRUE(issues.empty()) << FormatIssues(issues);
}

TEST(ExpositionTest, FormatIssuesIsOnePerLine) {
  const auto issues = ValidateExposition("# TYPE 9bad counter\nx_total 1");
  const std::string formatted = FormatIssues(issues);
  EXPECT_NE(formatted.find("line 1"), std::string::npos);
  EXPECT_GE(issues.size(), 2u);
}

}  // namespace
}  // namespace obs
}  // namespace ssr
