// SloTracker contract tests: windowed quantiles vs latency targets,
// availability and error-budget burn math, the no-traffic convention
// (availability 1.0, burn 0), delta-capture feeding from cumulative
// registry instruments, and config sanitization.

#include "obs/slo.h"

#include <vector>

#include <gtest/gtest.h>

#include "obs/metrics.h"

namespace ssr {
namespace obs {
namespace {

std::vector<double> Bounds() { return {100.0, 1000.0, 10000.0}; }

TEST(SloTrackerTest, LatencyObjectivesAgainstDirectFeeds) {
  SloConfig config;
  config.p50_target_micros = 500.0;
  config.p99_target_micros = 5000.0;
  SloTracker tracker(Bounds(), config);

  // 90 fast (<=100us) + 10 slow (<=10ms): p50 well under target, p99 over.
  for (int i = 0; i < 90; ++i) tracker.ObserveLatency(50.0, 1.0);
  for (int i = 0; i < 10; ++i) tracker.ObserveLatency(8000.0, 1.0);

  const SloWindowReport r = tracker.Report(kSloWindowMinute, 2.0);
  EXPECT_EQ(r.latency_count, 100u);
  EXPECT_LE(r.p50_micros, 100.0);
  EXPECT_TRUE(r.p50_ok);
  EXPECT_GT(r.p99_micros, 5000.0);
  EXPECT_FALSE(r.p99_ok);
}

TEST(SloTrackerTest, DisabledObjectivesAreAlwaysOk) {
  SloTracker tracker(Bounds(), SloConfig{});  // both targets 0 = disabled
  for (int i = 0; i < 10; ++i) tracker.ObserveLatency(9000.0, 0.0);
  const SloWindowReport r = tracker.Report(kSloWindowMinute, 0.0);
  EXPECT_TRUE(r.p50_ok);
  EXPECT_TRUE(r.p99_ok);
}

TEST(SloTrackerTest, AvailabilityAndBurnRate) {
  SloConfig config;
  config.availability_target = 0.999;  // budget = 0.001
  SloTracker tracker(Bounds(), config);

  // 1000 requests, 10 errors: 99.0% availability, 1% error ratio, burn 10x.
  tracker.RecordOutcomes(1000, 10, 1.0);
  const SloWindowReport r = tracker.Report(kSloWindowMinute, 1.0);
  EXPECT_EQ(r.total, 1000u);
  EXPECT_EQ(r.errors, 10u);
  EXPECT_DOUBLE_EQ(r.availability, 0.99);
  EXPECT_NEAR(r.burn_rate, 10.0, 1e-9);
  EXPECT_FALSE(r.availability_ok);
}

TEST(SloTrackerTest, BurnRateOneConsumesBudgetExactly) {
  SloConfig config;
  config.availability_target = 0.99;  // budget = 0.01
  SloTracker tracker(Bounds(), config);
  tracker.RecordOutcomes(1000, 10, 0.0);  // exactly the budgeted rate
  const SloWindowReport r = tracker.Report(kSloWindowMinute, 0.0);
  EXPECT_NEAR(r.burn_rate, 1.0, 1e-9);
  EXPECT_TRUE(r.availability_ok);  // at the target, not below it
}

TEST(SloTrackerTest, NoTrafficIsNotAnOutage) {
  SloTracker tracker(Bounds(), SloConfig{});
  const SloWindowReport r = tracker.Report(kSloWindowMinute, 0.0);
  EXPECT_EQ(r.total, 0u);
  EXPECT_DOUBLE_EQ(r.availability, 1.0);
  EXPECT_DOUBLE_EQ(r.burn_rate, 0.0);
  EXPECT_TRUE(r.availability_ok);
  EXPECT_DOUBLE_EQ(r.p50_micros, 0.0);
}

TEST(SloTrackerTest, ErrorsClampToTotal) {
  SloTracker tracker(Bounds(), SloConfig{});
  tracker.RecordOutcomes(5, 50, 0.0);
  const SloWindowReport r = tracker.Report(kSloWindowMinute, 0.0);
  EXPECT_EQ(r.errors, 5u);
  EXPECT_DOUBLE_EQ(r.availability, 0.0);
}

TEST(SloTrackerTest, HorizonsDecayIndependently) {
  SloConfig config;
  config.interval_seconds = 5.0;
  config.num_windows = 720;
  SloTracker tracker(Bounds(), config);

  tracker.RecordOutcomes(100, 100, 0.0);  // a burst of pure errors
  tracker.RecordOutcomes(100, 0, 500.0);  // clean traffic 8 minutes later

  // The 1m window at t=500 sees only the clean traffic; the 1h window
  // still carries the burst.
  const SloWindowReport fast = tracker.Report(kSloWindowMinute, 500.0);
  EXPECT_EQ(fast.errors, 0u);
  EXPECT_DOUBLE_EQ(fast.availability, 1.0);
  const SloWindowReport slow = tracker.Report(kSloWindowHour, 500.0);
  EXPECT_EQ(slow.errors, 100u);
  EXPECT_EQ(slow.total, 200u);
}

TEST(SloTrackerTest, TickDeltaCapturesRegistryInstruments) {
  MetricsRegistry registry;
  Histogram* latency = registry.GetHistogram("lat", "", Bounds());
  Counter* total = registry.GetCounter("total");
  Counter* errors = registry.GetCounter("errors");

  // Pre-existing history the tracker must not claim.
  latency->Observe(50.0);
  total->Increment();

  SloTracker tracker(Bounds(), SloConfig{});
  tracker.Tick(latency, total, errors, 0.0);
  SloWindowReport r = tracker.Report(kSloWindowMinute, 0.0);
  EXPECT_EQ(r.latency_count, 0u);
  EXPECT_EQ(r.total, 0u);

  for (int i = 0; i < 8; ++i) {
    latency->Observe(200.0);
    total->Increment();
  }
  errors->Add(2);
  tracker.Tick(latency, total, errors, 1.0);
  r = tracker.Report(kSloWindowMinute, 1.0);
  EXPECT_EQ(r.latency_count, 8u);
  EXPECT_EQ(r.total, 8u);
  EXPECT_EQ(r.errors, 2u);
}

TEST(SloTrackerTest, NullTickSourcesAreSkipped) {
  SloTracker tracker(Bounds(), SloConfig{});
  tracker.Tick(nullptr, nullptr, nullptr, 0.0);  // must not crash
  EXPECT_EQ(tracker.Report(kSloWindowMinute, 0.0).total, 0u);
}

TEST(SloTrackerTest, CanonicalReportsCoverTheThreeHorizons) {
  SloTracker tracker(Bounds(), SloConfig{});
  const auto reports = tracker.CanonicalReports(0.0);
  ASSERT_EQ(reports.size(), 3u);
  EXPECT_DOUBLE_EQ(reports[0].horizon_seconds, kSloWindowMinute);
  EXPECT_DOUBLE_EQ(reports[1].horizon_seconds, kSloWindowFiveMinutes);
  EXPECT_DOUBLE_EQ(reports[2].horizon_seconds, kSloWindowHour);
}

TEST(SloTrackerTest, SanitizesDegenerateConfig) {
  SloConfig config;
  config.availability_target = 1.5;  // outside (0, 1)
  config.interval_seconds = -3.0;
  config.num_windows = 0;
  SloTracker tracker(Bounds(), config);
  EXPECT_DOUBLE_EQ(tracker.config().availability_target, 0.999);
  EXPECT_GT(tracker.config().interval_seconds, 0.0);
  EXPECT_GT(tracker.config().num_windows, 0u);
}

}  // namespace
}  // namespace obs
}  // namespace ssr
