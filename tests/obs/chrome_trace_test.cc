#include "obs/chrome_trace.h"

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "obs/trace.h"

namespace ssr {
namespace obs {
namespace {

SpanRecord MakeSpan(std::uint64_t id, std::uint64_t parent_id,
                    std::uint32_t depth, std::string name, double start,
                    double dur) {
  SpanRecord span;
  span.id = id;
  span.parent_id = parent_id;
  span.depth = depth;
  span.name = std::move(name);
  span.start_micros = start;
  span.duration_micros = dur;
  return span;
}

// Full golden for one span with a counter sample: the object wrapper,
// process/thread metadata ("M"), the complete-slice ("X") event with args,
// and the per-counter counter-track ("C") event.
TEST(ChromeTraceTest, GoldenSingleSpanWithCounter) {
  SpanRecord span = MakeSpan(7, 0, 0, "probe_fi", 5.0, 2.5);
  span.counters.Set(PerfCounter::kTaskClockNs, 1000);
  const std::string json = ChromeTraceJson(std::vector<SpanRecord>{span});
  EXPECT_EQ(
      json,
      "{\"displayTimeUnit\":\"ms\",\"otherData\":{\"generator\":\"ssr\"},"
      "\"traceEvents\":["
      "{\"name\":\"process_name\",\"ph\":\"M\",\"pid\":1,\"tid\":1,\"ts\":0,"
      "\"args\":{\"name\":\"ssr\"}},"
      "{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":1,\"tid\":1,\"ts\":0,"
      "\"args\":{\"name\":\"query\"}},"
      "{\"name\":\"probe_fi\",\"ph\":\"X\",\"pid\":1,\"tid\":1,\"ts\":5,"
      "\"dur\":2.5,\"cat\":\"span\",\"args\":{\"span_id\":7,"
      "\"task_clock_ns\":1000}},"
      "{\"name\":\"task_clock_ns\",\"ph\":\"C\",\"pid\":1,\"tid\":1,"
      "\"ts\":5,\"args\":{\"value\":1000}}"
      "]}");
}

TEST(ChromeTraceTest, EmptySpanListStillEmitsMetadata) {
  const std::string json = ChromeTraceJson(std::vector<SpanRecord>{});
  EXPECT_NE(json.find("\"process_name\""), std::string::npos);
  EXPECT_NE(json.find("\"thread_name\""), std::string::npos);
  EXPECT_EQ(json.find("\"ph\":\"X\""), std::string::npos);
  EXPECT_EQ(json.find("\"ph\":\"C\""), std::string::npos);
}

// Nesting in the Chrome trace format is conveyed by timestamp containment
// of "X" events on one track plus the parent_id arg; a child completes
// before its parent, so it precedes the parent in ring (completion) order.
TEST(ChromeTraceTest, NestedSpansKeepContainmentAndParentId) {
  std::vector<SpanRecord> spans;
  spans.push_back(MakeSpan(2, 1, 1, "embed", 20.0, 30.0));   // child first
  spans.push_back(MakeSpan(1, 0, 0, "query", 10.0, 100.0));  // then parent
  const std::string json = ChromeTraceJson(spans);

  const std::size_t child = json.find(
      "{\"name\":\"embed\",\"ph\":\"X\",\"pid\":1,\"tid\":1,\"ts\":20,"
      "\"dur\":30,\"cat\":\"span\",\"args\":{\"span_id\":2,"
      "\"parent_id\":1}}");
  const std::size_t parent = json.find(
      "{\"name\":\"query\",\"ph\":\"X\",\"pid\":1,\"tid\":1,\"ts\":10,"
      "\"dur\":100,\"cat\":\"span\",\"args\":{\"span_id\":1}}");
  ASSERT_NE(child, std::string::npos);
  ASSERT_NE(parent, std::string::npos);
  EXPECT_LT(child, parent);
  // Roots carry no parent_id key at all.
  EXPECT_EQ(json.find("\"parent_id\":0"), std::string::npos);
}

TEST(ChromeTraceTest, TagsBecomeSliceArgs) {
  SpanRecord span = MakeSpan(3, 0, 0, "plan", 1.0, 2.0);
  span.tags.emplace_back("plan", "sfi_pair");
  span.tags.emplace_back("candidates", "17");
  const std::string json = ChromeTraceJson(std::vector<SpanRecord>{span});
  EXPECT_NE(json.find("\"args\":{\"span_id\":3,\"plan\":\"sfi_pair\","
                      "\"candidates\":\"17\"}"),
            std::string::npos);
}

TEST(ChromeTraceTest, EachValidCounterGetsItsOwnCounterEvent) {
  SpanRecord span = MakeSpan(4, 0, 0, "verify", 2.0, 3.0);
  span.counters.Set(PerfCounter::kCycles, 111);
  span.counters.Set(PerfCounter::kPageFaults, 5);
  const std::string json = ChromeTraceJson(std::vector<SpanRecord>{span});
  EXPECT_NE(json.find("{\"name\":\"cycles\",\"ph\":\"C\",\"pid\":1,"
                      "\"tid\":1,\"ts\":2,\"args\":{\"value\":111}}"),
            std::string::npos);
  EXPECT_NE(json.find("{\"name\":\"page_faults\",\"ph\":\"C\",\"pid\":1,"
                      "\"tid\":1,\"ts\":2,\"args\":{\"value\":5}}"),
            std::string::npos);
  // Counters not measured stay out of both slice args and counter tracks.
  EXPECT_EQ(json.find("\"instructions\""), std::string::npos);
}

// Tags following the "counter.<track>" convention (used by the workload
// observability layer for sample rates and observed recall) also plot as
// "C" counter-track events; non-numeric or unprefixed tags stay slice args
// only.
TEST(ChromeTraceTest, CounterTagsRenderAsCounterTracks) {
  SpanRecord span = MakeSpan(9, 0, 0, "shadow_oracle", 4.0, 1.0);
  span.tags.emplace_back("counter.ssr_observed_recall", "0.92");
  span.tags.emplace_back("counter.ssr_workload_sample_rate", "0.015625");
  span.tags.emplace_back("counter.not_numeric", "sfi_pair");
  span.tags.emplace_back("bucket", "7");
  const std::string json = ChromeTraceJson(std::vector<SpanRecord>{span});
  EXPECT_NE(json.find("{\"name\":\"ssr_observed_recall\",\"ph\":\"C\","
                      "\"pid\":1,\"tid\":1,\"ts\":4,"
                      "\"args\":{\"value\":0.92}}"),
            std::string::npos);
  EXPECT_NE(json.find("{\"name\":\"ssr_workload_sample_rate\",\"ph\":\"C\""),
            std::string::npos);
  // The unparsable counter tag emits no track, and the plain tag stays a
  // slice arg without growing a counter event.
  EXPECT_EQ(json.find("{\"name\":\"not_numeric\""), std::string::npos);
  EXPECT_EQ(json.find("{\"name\":\"bucket\""), std::string::npos);
  EXPECT_NE(json.find("\"bucket\":\"7\""), std::string::npos);
}

TEST(ChromeTraceTest, LiveTracerSpansRoundTrip) {
  Tracer tracer(16);
  tracer.set_enabled(true);
  {
    TraceSpan root(tracer, "query");
    root.Tag("plan", "scan");
    TraceSpan child(tracer, "embed");
  }
  const std::string json = ChromeTraceJson(tracer);
  EXPECT_NE(json.find("\"name\":\"embed\""), std::string::npos);
  EXPECT_NE(json.find("\"name\":\"query\""), std::string::npos);
  EXPECT_NE(json.find("\"plan\":\"scan\""), std::string::npos);
}

TEST(ChromeTraceTest, WriteFileSucceedsAndFailsWithError) {
  Tracer tracer(4);
  const std::string path = ::testing::TempDir() + "chrome_trace_test.json";
  std::string error;
  ASSERT_TRUE(WriteChromeTraceFile(path, tracer, &error)) << error;
  std::ifstream in(path);
  std::stringstream buf;
  buf << in.rdbuf();
  EXPECT_NE(buf.str().find("\"traceEvents\""), std::string::npos);
  std::remove(path.c_str());

  EXPECT_FALSE(
      WriteChromeTraceFile("/nonexistent-dir/trace.json", tracer, &error));
  EXPECT_NE(error.find("cannot open trace file"), std::string::npos);
}

}  // namespace
}  // namespace obs
}  // namespace ssr
