// Health-model ladder tests: every rung pinned as a pure function over
// HealthInputs — shard quarantine (degraded, escalating past the fraction
// bound), fast/slow SLO burn, p99 violation, WAL sync lag, recall drift,
// and max-severity folding when several rules fire at once.

#include "obs/health.h"

#include <algorithm>
#include <string>

#include <gtest/gtest.h>

namespace ssr {
namespace obs {
namespace {

bool HasReason(const HealthReport& report, const std::string& code) {
  return std::any_of(report.reasons.begin(), report.reasons.end(),
                     [&code](const HealthReason& r) { return r.code == code; });
}

TEST(HealthModelTest, EmptyInputsAreHealthy) {
  const HealthReport report = EvaluateHealth(HealthInputs{},
                                             HealthThresholds{});
  EXPECT_EQ(report.verdict, HealthVerdict::kHealthy);
  EXPECT_TRUE(report.reasons.empty());
}

TEST(HealthModelTest, VerdictNames) {
  EXPECT_STREQ(HealthVerdictName(HealthVerdict::kHealthy), "healthy");
  EXPECT_STREQ(HealthVerdictName(HealthVerdict::kDegraded), "degraded");
  EXPECT_STREQ(HealthVerdictName(HealthVerdict::kUnhealthy), "unhealthy");
}

TEST(HealthModelTest, OneQuarantinedShardIsDegraded) {
  HealthInputs inputs;
  inputs.shards_total = 4;
  inputs.shards_degraded = 1;
  const HealthReport report = EvaluateHealth(inputs, HealthThresholds{});
  EXPECT_EQ(report.verdict, HealthVerdict::kDegraded);
  ASSERT_EQ(report.reasons.size(), 1u);
  EXPECT_EQ(report.reasons[0].code, "shard_quarantine");
  EXPECT_EQ(report.reasons[0].severity, HealthVerdict::kDegraded);
}

TEST(HealthModelTest, MajorityShardLossIsUnhealthy) {
  HealthInputs inputs;
  inputs.shards_total = 4;
  inputs.shards_degraded = 2;  // exactly half: still degraded (> 0.5 rule)
  EXPECT_EQ(EvaluateHealth(inputs, HealthThresholds{}).verdict,
            HealthVerdict::kDegraded);
  inputs.shards_degraded = 3;  // strict majority
  EXPECT_EQ(EvaluateHealth(inputs, HealthThresholds{}).verdict,
            HealthVerdict::kUnhealthy);
}

TEST(HealthModelTest, FastBurnAtPageLevelIsUnhealthy) {
  HealthInputs inputs;
  inputs.has_slo = true;
  inputs.slo_fast.burn_rate = 14.4;  // at the page threshold (>=)
  const HealthReport report = EvaluateHealth(inputs, HealthThresholds{});
  EXPECT_EQ(report.verdict, HealthVerdict::kUnhealthy);
  EXPECT_TRUE(HasReason(report, "slo_burn_fast"));
}

TEST(HealthModelTest, SlowBurnAboveOneIsDegraded) {
  HealthInputs inputs;
  inputs.has_slo = true;
  inputs.slo_slow.burn_rate = 2.0;
  const HealthReport report = EvaluateHealth(inputs, HealthThresholds{});
  EXPECT_EQ(report.verdict, HealthVerdict::kDegraded);
  EXPECT_TRUE(HasReason(report, "slo_burn_slow"));
  // Under 1.0: budget accrues faster than it burns — healthy.
  inputs.slo_slow.burn_rate = 0.5;
  EXPECT_EQ(EvaluateHealth(inputs, HealthThresholds{}).verdict,
            HealthVerdict::kHealthy);
}

TEST(HealthModelTest, P99ViolationIsDegraded) {
  HealthInputs inputs;
  inputs.has_slo = true;
  inputs.slo_fast.p99_ok = false;
  inputs.slo_fast.p99_micros = 9000.0;
  const HealthReport report = EvaluateHealth(inputs, HealthThresholds{});
  EXPECT_EQ(report.verdict, HealthVerdict::kDegraded);
  EXPECT_TRUE(HasReason(report, "slo_latency_p99"));
}

TEST(HealthModelTest, WalLagLadder) {
  HealthInputs inputs;
  inputs.has_wal = true;
  inputs.wal_last_lsn = 2000;
  inputs.wal_synced_lsn = 1990;  // lag 10: under the warning bound
  EXPECT_EQ(EvaluateHealth(inputs, HealthThresholds{}).verdict,
            HealthVerdict::kHealthy);

  inputs.wal_synced_lsn = 2000 - 1024;  // exactly the degraded bound
  HealthReport report = EvaluateHealth(inputs, HealthThresholds{});
  EXPECT_EQ(report.verdict, HealthVerdict::kDegraded);
  EXPECT_TRUE(HasReason(report, "wal_sync_lag"));

  inputs.wal_last_lsn = 70000;
  inputs.wal_synced_lsn = 0;  // past the critical bound
  report = EvaluateHealth(inputs, HealthThresholds{});
  EXPECT_EQ(report.verdict, HealthVerdict::kUnhealthy);
}

TEST(HealthModelTest, SyncedWalTriggersNothingEvenWithZeroLsns) {
  HealthInputs inputs;
  inputs.has_wal = true;  // attached but idle
  EXPECT_EQ(EvaluateHealth(inputs, HealthThresholds{}).verdict,
            HealthVerdict::kHealthy);
}

TEST(HealthModelTest, RecallDriftIsDegraded) {
  HealthInputs inputs;
  inputs.has_recall = true;
  inputs.observed_recall = 0.6;
  const HealthReport report = EvaluateHealth(inputs, HealthThresholds{});
  EXPECT_EQ(report.verdict, HealthVerdict::kDegraded);
  EXPECT_TRUE(HasReason(report, "recall_drift"));
  // Without the has_recall flag the same number is ignored (no samples yet).
  inputs.has_recall = false;
  EXPECT_EQ(EvaluateHealth(inputs, HealthThresholds{}).verdict,
            HealthVerdict::kHealthy);
}

TEST(HealthModelTest, VerdictIsMaxSeverityAndAllRulesReport) {
  HealthInputs inputs;
  inputs.shards_total = 4;
  inputs.shards_degraded = 1;  // degraded
  inputs.has_slo = true;
  inputs.slo_fast.burn_rate = 100.0;  // unhealthy
  inputs.has_recall = true;
  inputs.observed_recall = 0.1;  // degraded
  const HealthReport report = EvaluateHealth(inputs, HealthThresholds{});
  EXPECT_EQ(report.verdict, HealthVerdict::kUnhealthy);
  EXPECT_EQ(report.reasons.size(), 3u);
  EXPECT_TRUE(HasReason(report, "shard_quarantine"));
  EXPECT_TRUE(HasReason(report, "slo_burn_fast"));
  EXPECT_TRUE(HasReason(report, "recall_drift"));
}

TEST(HealthModelTest, CustomThresholdsApply) {
  HealthThresholds thresholds;
  thresholds.recall_floor = 0.95;
  HealthInputs inputs;
  inputs.has_recall = true;
  inputs.observed_recall = 0.9;  // fine by default, not by these
  EXPECT_EQ(EvaluateHealth(inputs, HealthThresholds{}).verdict,
            HealthVerdict::kHealthy);
  const HealthModel model(thresholds);
  EXPECT_EQ(model.Evaluate(inputs).verdict, HealthVerdict::kDegraded);
}

}  // namespace
}  // namespace obs
}  // namespace ssr
