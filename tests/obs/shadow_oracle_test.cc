// Shadow-oracle estimator contract: at sample_every = 1 the observed
// recall/precision equal a direct brute-force computation; decimation is
// deterministic by arrival order; and on a realistic decimated workload the
// per-bucket estimate stays within ±0.05 of the exhaustive ground truth —
// the acceptance band the estimator's header derives from its sampling
// math.

#include "obs/shadow_oracle.h"

#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "core/set_similarity_index.h"
#include "obs/workload_observer.h"
#include "storage/set_store.h"
#include "util/random.h"
#include "util/set_ops.h"

namespace ssr {
namespace obs {
namespace {

constexpr double kEps = 1e-12;  // matches the index's verification slack

std::vector<SetId> BruteForce(const SetCollection& sets, const ElementSet& q,
                              double s1, double s2) {
  std::vector<SetId> out;
  for (SetId sid = 0; sid < sets.size(); ++sid) {
    const double sim = Jaccard(sets[sid], q);
    if (sim >= s1 - kEps && sim <= s2 + kEps) out.push_back(sid);
  }
  return out;
}

TEST(ShadowOracleTest, ExactRecallAndPrecisionAgainstKnownTruth) {
  SetStore store;
  ASSERT_TRUE(store.Add({1, 2, 3, 4}).ok());      // sid 0
  ASSERT_TRUE(store.Add({1, 2, 3, 5}).ok());      // sid 1: J = 3/5 to sid 0
  ASSERT_TRUE(store.Add({10, 11, 12, 13}).ok());  // sid 2: J = 0 to sid 0
  ShadowOracleOptions options;
  options.sample_every = 1;
  ShadowOracleEstimator oracle(store, options);

  // Truth for query = sid 0's set in [0.5, 1.0] is {0, 1}. A lossy answer
  // {0} out of 3 candidates has recall 1/2 and precision 1/3.
  EXPECT_TRUE(oracle.Offer({1, 2, 3, 4}, 0.5, 1.0, {0}, 3));
  EXPECT_EQ(oracle.sampled(), 1u);
  EXPECT_NEAR(oracle.overall().MeanRecall(), 0.5, 1e-12);
  EXPECT_NEAR(oracle.overall().MeanPrecision(), 1.0 / 3.0, 1e-12);
  // σ1 = 0.5 lands in bucket 5 of the default 10.
  EXPECT_EQ(oracle.bucket(5).sampled, 1u);
  EXPECT_NEAR(oracle.bucket(5).recall_sum, 0.5, 1e-12);
  EXPECT_EQ(oracle.bucket(4).sampled, 0u);

  // An empty-truth query counts recall 1 (nothing to miss); precision with
  // zero candidates is also 1 by convention.
  EXPECT_TRUE(oracle.Offer({100, 200}, 0.9, 1.0, {}, 0));
  EXPECT_NEAR(oracle.overall().MeanRecall(), 0.75, 1e-12);
  EXPECT_NEAR(oracle.overall().MeanPrecision(), (1.0 / 3.0 + 1.0) / 2.0,
              1e-12);
}

TEST(ShadowOracleTest, DecimationIsDeterministicByArrivalOrder) {
  SetStore store;
  ASSERT_TRUE(store.Add({1, 2}).ok());
  ShadowOracleOptions options;
  options.sample_every = 2;
  ShadowOracleEstimator oracle(store, options);
  int sampled = 0;
  for (int i = 0; i < 5; ++i) {
    if (oracle.Offer({1, 2}, 0.5, 1.0, {0}, 1)) ++sampled;
  }
  // Offers 0, 2, 4 are verified (the first is always included).
  EXPECT_EQ(sampled, 3);
  EXPECT_EQ(oracle.offered(), 5u);
  EXPECT_EQ(oracle.sampled(), 3u);
  EXPECT_DOUBLE_EQ(oracle.sample_rate(), 0.5);
}

// End to end through the observer on a workload with real matches: the
// decimated estimate must sit within ±0.05 of the exhaustive per-bucket
// ground truth (and exactly on it at sample_every = 1).
TEST(ShadowOracleTest, DecimatedEstimateTracksExhaustiveGroundTruth) {
  Rng rng(20260807);
  SetCollection sets;
  SetStore store;
  for (int i = 0; i < 300; ++i) {
    ElementSet s;
    for (int j = 0; j < 40; ++j) s.push_back(rng.Uniform(1 << 14));
    NormalizeSet(s);
    if (s.empty()) s.push_back(1);
    sets.push_back(s);
    ASSERT_TRUE(store.Add(s).ok());
  }
  IndexLayout layout;
  layout.delta = 0.3;
  layout.points = {{0.2, FilterKind::kDissimilarity, 8, 0},
                   {0.5, FilterKind::kSimilarity, 8, 0},
                   {0.8, FilterKind::kSimilarity, 8, 0}};
  IndexOptions options;
  options.embedding.minhash.num_hashes = 80;
  options.embedding.minhash.seed = 7;
  options.seed = 11;
  auto index = SetSimilarityIndex::Build(store, layout, options);
  ASSERT_TRUE(index.ok()) << index.status().ToString();

  // Perturbed copies of stored sets, k replacements -> J ≈ (40−k)/(40+k),
  // with ranges bracketing that similarity so every query has real truth.
  constexpr std::size_t kReplacements[] = {4, 10, 18, 30};
  constexpr double kRanges[][2] = {
      {0.70, 1.00}, {0.45, 0.80}, {0.25, 0.55}, {0.05, 0.35}};
  struct Sample {
    ElementSet query;
    double s1, s2;
    double true_recall;
  };
  // 1200 queries at sample_every = 3 put ~100 sampled queries in each of
  // the four populated buckets — the n the estimator's header math needs
  // for a ±0.05 band.
  std::vector<Sample> workload;
  for (int i = 0; i < 1200; ++i) {
    const ElementSet& base = sets[i % sets.size()];
    const std::size_t k = kReplacements[i % 4];
    ElementSet query(base.begin() + k, base.end());
    for (std::size_t j = 0; j < k; ++j) {
      query.push_back(rng.Uniform(1 << 14));
    }
    NormalizeSet(query);
    workload.push_back(
        {std::move(query), kRanges[i % 4][0], kRanges[i % 4][1], 0.0});
  }

  // 3 is coprime with the workload's 4-cycle of range shapes, so the
  // decimation visits every σ1 bucket instead of aliasing onto one.
  ShadowOracleOptions oracle_options;
  oracle_options.sample_every = 3;
  ShadowOracleEstimator oracle(store, oracle_options);
  WorkloadObserver observer;
  observer.set_shadow_oracle(&oracle);
  index->AttachWorkloadObserver(&observer);

  // Ground truth per bucket over the *sampled* arrival positions — the
  // estimator's own target — and over all queries for the ±0.05 check.
  std::vector<double> bucket_truth_sum(oracle.num_buckets(), 0.0);
  std::vector<int> bucket_truth_n(oracle.num_buckets(), 0);
  for (std::size_t i = 0; i < workload.size(); ++i) {
    Sample& s = workload[i];
    auto r = index->Query(s.query, s.s1, s.s2);
    ASSERT_TRUE(r.ok()) << r.status().ToString();
    const std::vector<SetId> truth =
        BruteForce(sets, s.query, s.s1, s.s2);
    if (truth.empty()) {
      s.true_recall = 1.0;
    } else {
      std::size_t hits = 0;
      for (SetId sid : r->sids) {
        for (SetId t : truth) {
          if (t == sid) {
            ++hits;
            break;
          }
        }
      }
      s.true_recall =
          static_cast<double>(hits) / static_cast<double>(truth.size());
    }
    const std::size_t b =
        std::min(oracle.num_buckets() - 1,
                 static_cast<std::size_t>(
                     s.s1 * static_cast<double>(oracle.num_buckets())));
    bucket_truth_sum[b] += s.true_recall;
    ++bucket_truth_n[b];
  }
  index->AttachWorkloadObserver(nullptr);
  EXPECT_EQ(oracle.offered(), workload.size());
  EXPECT_EQ(oracle.sampled(), (workload.size() + 2) / 3);

  for (std::size_t b = 0; b < oracle.num_buckets(); ++b) {
    const ShadowBucketStats stats = oracle.bucket(b);
    if (stats.sampled == 0) {
      EXPECT_EQ(bucket_truth_n[b], 0) << "bucket " << b;
      continue;
    }
    ASSERT_GT(bucket_truth_n[b], 0) << "bucket " << b;
    const double truth_mean =
        bucket_truth_sum[b] / static_cast<double>(bucket_truth_n[b]);
    EXPECT_LE(std::fabs(stats.MeanRecall() - truth_mean), 0.05)
        << "bucket " << b << ": estimate " << stats.MeanRecall()
        << " vs truth " << truth_mean << " (n=" << stats.sampled << ")";
  }
}

}  // namespace
}  // namespace obs
}  // namespace ssr
