#include "workload/query_generator.h"

#include <gtest/gtest.h>

namespace ssr {
namespace {

SetCollection TinyCollection() {
  return {{1, 2}, {3, 4}, {5, 6}, {7, 8}};
}

TEST(QueryGeneratorTest, QueriesReferenceCollectionSets) {
  SetCollection sets = TinyCollection();
  QueryGenerator gen(sets, {});
  for (int i = 0; i < 100; ++i) {
    const RangeQuery q = gen.Next();
    EXPECT_LT(q.query_sid, sets.size());
  }
}

TEST(QueryGeneratorTest, RangesValidAndWidthBounded) {
  SetCollection sets = TinyCollection();
  QueryGeneratorParams params;
  params.min_width = 0.1;
  params.max_width = 0.3;
  QueryGenerator gen(sets, params);
  for (int i = 0; i < 200; ++i) {
    const RangeQuery q = gen.Next();
    EXPECT_GE(q.sigma1, 0.0);
    EXPECT_LE(q.sigma2, 1.0);
    EXPECT_LE(q.sigma1, q.sigma2);
    EXPECT_GE(q.sigma2 - q.sigma1, 0.1 - 1e-9);
    EXPECT_LE(q.sigma2 - q.sigma1, 0.3 + 1e-9);
  }
}

TEST(QueryGeneratorTest, DeterministicPerSeed) {
  SetCollection sets = TinyCollection();
  QueryGeneratorParams params;
  params.seed = 42;
  QueryGenerator a(sets, params), b(sets, params);
  for (int i = 0; i < 20; ++i) {
    const RangeQuery qa = a.Next();
    const RangeQuery qb = b.Next();
    EXPECT_EQ(qa.query_sid, qb.query_sid);
    EXPECT_DOUBLE_EQ(qa.sigma1, qb.sigma1);
    EXPECT_DOUBLE_EQ(qa.sigma2, qb.sigma2);
  }
}

TEST(QueryGeneratorTest, BatchSize) {
  SetCollection sets = TinyCollection();
  QueryGenerator gen(sets, {});
  EXPECT_EQ(gen.Batch(37).size(), 37u);
}

TEST(QueryGeneratorTest, RangeStartsCoverTheUnitInterval) {
  SetCollection sets = TinyCollection();
  QueryGeneratorParams params;
  params.min_width = 0.05;
  params.max_width = 0.05;
  QueryGenerator gen(sets, params);
  bool low = false, high = false;
  for (int i = 0; i < 500; ++i) {
    const RangeQuery q = gen.Next();
    if (q.sigma1 < 0.2) low = true;
    if (q.sigma1 > 0.7) high = true;
  }
  EXPECT_TRUE(low);
  EXPECT_TRUE(high);
}

TEST(QueryGeneratorTest, ParamClamping) {
  SetCollection sets = TinyCollection();
  QueryGeneratorParams params;
  params.min_width = 0.8;
  params.max_width = 0.2;  // inverted: clamped to min_width
  QueryGenerator gen(sets, params);
  for (int i = 0; i < 50; ++i) {
    const RangeQuery q = gen.Next();
    EXPECT_NEAR(q.sigma2 - q.sigma1, 0.8, 1e-9);
  }
}

}  // namespace
}  // namespace ssr
