#include "workload/buckets.h"

#include <gtest/gtest.h>

namespace ssr {
namespace {

TEST(BucketsTest, PaperBucketsShape) {
  const auto buckets = PaperResultSizeBuckets();
  ASSERT_EQ(buckets.size(), 5u);
  EXPECT_DOUBLE_EQ(buckets[0].lo_fraction, 0.0);
  EXPECT_DOUBLE_EQ(buckets[0].hi_fraction, 0.005);
  EXPECT_DOUBLE_EQ(buckets[4].lo_fraction, 0.25);
  EXPECT_DOUBLE_EQ(buckets[4].hi_fraction, 0.35);
  for (std::size_t i = 1; i < buckets.size(); ++i) {
    EXPECT_DOUBLE_EQ(buckets[i].lo_fraction, buckets[i - 1].hi_fraction);
  }
}

TEST(BucketsTest, ClassifyBoundaries) {
  const auto buckets = PaperResultSizeBuckets();
  const std::size_t n = 10000;
  EXPECT_EQ(ClassifyResultSize(0, n, buckets), 0u);       // 0%
  EXPECT_EQ(ClassifyResultSize(49, n, buckets), 0u);      // 0.49%
  EXPECT_EQ(ClassifyResultSize(50, n, buckets), 0u);      // exactly 0.5%
  EXPECT_EQ(ClassifyResultSize(51, n, buckets), 1u);      // 0.51%
  EXPECT_EQ(ClassifyResultSize(500, n, buckets), 1u);     // 5%
  EXPECT_EQ(ClassifyResultSize(750, n, buckets), 2u);     // 7.5%
  EXPECT_EQ(ClassifyResultSize(2000, n, buckets), 3u);    // 20%
  EXPECT_EQ(ClassifyResultSize(3000, n, buckets), 4u);    // 30%
  EXPECT_EQ(ClassifyResultSize(3500, n, buckets), 4u);    // 35%
  EXPECT_EQ(ClassifyResultSize(3600, n, buckets), 5u);    // out of range
  EXPECT_EQ(ClassifyResultSize(10000, n, buckets), 5u);   // 100%
}

TEST(BucketsTest, EmptyCollectionIsOutside) {
  const auto buckets = PaperResultSizeBuckets();
  EXPECT_EQ(ClassifyResultSize(5, 0, buckets), buckets.size());
}

TEST(BucketsTest, LabelsAreHuman) {
  for (const auto& b : PaperResultSizeBuckets()) {
    EXPECT_FALSE(b.label.empty());
    EXPECT_NE(b.label.find('%'), std::string::npos);
  }
}

}  // namespace
}  // namespace ssr
