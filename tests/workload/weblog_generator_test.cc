#include "workload/weblog_generator.h"

#include <gtest/gtest.h>

#include "optimizer/similarity_distribution.h"
#include "util/set_ops.h"
#include "workload/datasets.h"

namespace ssr {
namespace {

WeblogParams SmallParams(std::uint64_t seed = 1) {
  WeblogParams p;
  p.num_sets = 400;
  p.num_urls = 3000;
  p.num_profiles = 8;
  p.profile_urls = 150;
  p.min_set_size = 4;
  p.max_set_size = 60;
  p.seed = seed;
  return p;
}

TEST(WeblogGeneratorTest, GeneratesRequestedCount) {
  const SetCollection sets = GenerateWeblogCollection(SmallParams());
  EXPECT_EQ(sets.size(), 400u);
}

TEST(WeblogGeneratorTest, AllSetsNormalizedAndNonEmpty) {
  const SetCollection sets = GenerateWeblogCollection(SmallParams());
  for (const auto& s : sets) {
    EXPECT_FALSE(s.empty());
    EXPECT_TRUE(IsNormalizedSet(s));
  }
}

TEST(WeblogGeneratorTest, DeterministicPerSeed) {
  const SetCollection a = GenerateWeblogCollection(SmallParams(5));
  const SetCollection b = GenerateWeblogCollection(SmallParams(5));
  const SetCollection c = GenerateWeblogCollection(SmallParams(6));
  EXPECT_EQ(a, b);
  EXPECT_NE(a, c);
}

TEST(WeblogGeneratorTest, SizesWithinBounds) {
  WeblogParams p = SmallParams();
  p.min_set_size = 10;
  p.max_set_size = 20;
  p.duplicate_rate = 0.0;  // duplicates mutate sizes slightly
  const SetCollection sets = GenerateWeblogCollection(p);
  for (const auto& s : sets) {
    EXPECT_GE(s.size(), 5u);  // dedup can shrink below min a little
    EXPECT_LE(s.size(), 20u);
  }
}

TEST(WeblogGeneratorTest, ElementsWithinUniverse) {
  WeblogParams p = SmallParams();
  const SetCollection sets = GenerateWeblogCollection(p);
  for (const auto& s : sets) {
    for (ElementId e : s) EXPECT_LT(e, p.num_urls);
  }
}

TEST(WeblogGeneratorTest, DuplicatesCreateHighSimilarityPairs) {
  WeblogParams p = SmallParams();
  p.duplicate_rate = 0.3;
  p.duplicate_mutation = 0.05;
  const SetCollection sets = GenerateWeblogCollection(p);
  SimilarityHistogram hist = ComputeExactDistribution(sets, 20);
  // With 30% near-duplicates there must be visible mass above 0.7.
  EXPECT_GT(hist.MassInRange(0.7, 1.0), 10.0);
}

TEST(WeblogGeneratorTest, DistributionDropsWithSimilarity) {
  // The paper's key structural property: D_S decreases sharply in s.
  const SetCollection sets = GenerateWeblogCollection(SmallParams());
  SimilarityHistogram hist = ComputeExactDistribution(sets, 10);
  EXPECT_GT(hist.MassInRange(0.0, 0.2), hist.MassInRange(0.2, 0.4));
  EXPECT_GT(hist.MassInRange(0.2, 0.4), hist.MassInRange(0.6, 0.8));
}

TEST(WeblogGeneratorTest, ProfilesInduceMidSimilarityPairs) {
  // Profile locality must produce at least some pairs in the (0.1, 0.7)
  // band; without it everything is near-disjoint.
  WeblogParams p = SmallParams();
  p.duplicate_rate = 0.0;
  const SetCollection sets = GenerateWeblogCollection(p);
  SimilarityHistogram hist = ComputeExactDistribution(sets, 10);
  EXPECT_GT(hist.MassInRange(0.1, 0.7), 50.0);
}

TEST(WeblogGeneratorTest, CasualSessionsAreSmallAndHot) {
  WeblogParams p = SmallParams();
  p.casual_rate = 1.0;  // every set is a casual session
  p.casual_max_size = 5;
  const SetCollection sets = GenerateWeblogCollection(p);
  for (const auto& s : sets) {
    EXPECT_GE(s.size(), 1u);
    EXPECT_LE(s.size(), 5u);
  }
}

TEST(WeblogGeneratorTest, CasualSessionsCreateIdenticalPairs) {
  // Tiny sessions over a Zipf head collide: some pairs must be identical,
  // giving high-similarity queries non-trivial answers.
  WeblogParams p = SmallParams();
  p.casual_rate = 0.5;
  p.casual_max_size = 4;
  const SetCollection sets = GenerateWeblogCollection(p);
  SimilarityHistogram hist = ComputeExactDistribution(sets, 10);
  EXPECT_GT(hist.MassInRange(0.9, 1.0), 20.0);
}

TEST(WeblogGeneratorTest, CasualRateZeroMatchesLegacyBehaviour) {
  WeblogParams p = SmallParams(9);
  p.casual_rate = 0.0;
  const SetCollection a = GenerateWeblogCollection(p);
  const SetCollection b = GenerateWeblogCollection(p);
  EXPECT_EQ(a, b);
  for (const auto& s : a) EXPECT_GE(s.size(), p.min_set_size / 2);
}

TEST(DatasetsTest, Set1AndSet2Differ) {
  const SetCollection s1 = MakeDataset("set1", 0.002);
  const SetCollection s2 = MakeDataset("set2", 0.002);
  EXPECT_EQ(s1.size(), s2.size());  // same scaled count
  EXPECT_NE(s1, s2);
}

TEST(DatasetsTest, ScaleControlsSize) {
  EXPECT_EQ(MakeDataset("set1", 0.002).size(), 400u);
  EXPECT_EQ(MakeDataset("set1", 0.005).size(), 1000u);
}

TEST(DatasetsTest, Set2HasLargerSetsOnAverage) {
  const SetCollection s1 = MakeDataset("set1", 0.002);
  const SetCollection s2 = MakeDataset("set2", 0.002);
  double avg1 = 0.0, avg2 = 0.0;
  for (const auto& s : s1) avg1 += static_cast<double>(s.size());
  for (const auto& s : s2) avg2 += static_cast<double>(s.size());
  avg1 /= static_cast<double>(s1.size());
  avg2 /= static_cast<double>(s2.size());
  // The paper: Set2 is ~500MB vs ~400MB for the same 200k sets.
  EXPECT_GT(avg2, avg1);
}

TEST(DatasetsTest, UnknownNameFallsBackToSet1) {
  EXPECT_EQ(MakeDataset("bogus", 0.002), MakeDataset("set1", 0.002));
}

}  // namespace
}  // namespace ssr
