#include "storage/heap_file.h"

#include <gtest/gtest.h>

#include "util/random.h"

namespace ssr {
namespace {

ElementSet MakeSet(std::size_t n, ElementId base = 0) {
  ElementSet s;
  for (std::size_t i = 0; i < n; ++i) s.push_back(base + i);
  return s;
}

TEST(HeapFileTest, AppendAndReadInline) {
  HeapFile file;
  const ElementSet set = MakeSet(10, 100);
  auto loc = file.Append(7, set);
  ASSERT_TRUE(loc.ok());
  EXPECT_FALSE(loc->is_spanned());
  SetId sid = kInvalidSetId;
  auto read = file.Read(loc.value(), &sid, nullptr);
  ASSERT_TRUE(read.ok());
  EXPECT_EQ(sid, 7u);
  EXPECT_EQ(read.value(), set);
}

TEST(HeapFileTest, MultipleRecordsSharePages) {
  HeapFile file;
  std::vector<RecordLocator> locs;
  for (SetId sid = 0; sid < 50; ++sid) {
    auto loc = file.Append(sid, MakeSet(5, sid * 10));
    ASSERT_TRUE(loc.ok());
    locs.push_back(loc.value());
  }
  // 50 records of 48 bytes each fit in one 4K page comfortably.
  EXPECT_LE(file.num_pages(), 2u);
  for (SetId sid = 0; sid < 50; ++sid) {
    SetId got = kInvalidSetId;
    auto read = file.Read(locs[sid], &got, nullptr);
    ASSERT_TRUE(read.ok());
    EXPECT_EQ(got, sid);
    EXPECT_EQ(read.value(), MakeSet(5, sid * 10));
  }
}

TEST(HeapFileTest, SpannedRecordRoundTrip) {
  HeapFile file;
  // 2000 elements -> 16008 bytes -> 4 span pages.
  const ElementSet big = MakeSet(2000);
  auto loc = file.Append(1, big);
  ASSERT_TRUE(loc.ok());
  EXPECT_TRUE(loc->is_spanned());
  EXPECT_GE(file.num_pages(), 4u);
  SetId sid = kInvalidSetId;
  std::vector<PageId> touched;
  auto read = file.Read(loc.value(), &sid, &touched);
  ASSERT_TRUE(read.ok());
  EXPECT_EQ(sid, 1u);
  EXPECT_EQ(read.value(), big);
  EXPECT_EQ(touched.size(), (HeapFile::RecordBytes(2000) + kPageSize - 1) /
                                kPageSize);
}

TEST(HeapFileTest, MixedInlineAndSpanned) {
  HeapFile file;
  auto small1 = file.Append(0, MakeSet(3));
  auto big = file.Append(1, MakeSet(1500));
  auto small2 = file.Append(2, MakeSet(4, 77));
  ASSERT_TRUE(small1.ok() && big.ok() && small2.ok());
  EXPECT_EQ(file.Read(small1.value(), nullptr, nullptr).value(), MakeSet(3));
  EXPECT_EQ(file.Read(big.value(), nullptr, nullptr).value(), MakeSet(1500));
  EXPECT_EQ(file.Read(small2.value(), nullptr, nullptr).value(),
            MakeSet(4, 77));
}

TEST(HeapFileTest, ScanVisitsAllInOrder) {
  HeapFile file;
  for (SetId sid = 0; sid < 20; ++sid) {
    ASSERT_TRUE(file.Append(sid, MakeSet(sid % 7 + 1, sid)).ok());
  }
  std::vector<SetId> seen;
  file.Scan([&](SetId sid, const ElementSet& set, const RecordLocator&) {
    EXPECT_EQ(set.size(), sid % 7 + 1);
    seen.push_back(sid);
    return true;
  });
  ASSERT_EQ(seen.size(), 20u);
  for (SetId sid = 0; sid < 20; ++sid) EXPECT_EQ(seen[sid], sid);
}

TEST(HeapFileTest, ScanEarlyStop) {
  HeapFile file;
  for (SetId sid = 0; sid < 10; ++sid) {
    ASSERT_TRUE(file.Append(sid, MakeSet(2)).ok());
  }
  int visits = 0;
  file.Scan([&](SetId, const ElementSet&, const RecordLocator&) {
    return ++visits < 3;
  });
  EXPECT_EQ(visits, 3);
}

TEST(HeapFileTest, InvalidLocatorRejected) {
  HeapFile file;
  ASSERT_TRUE(file.Append(0, MakeSet(2)).ok());
  EXPECT_FALSE(file.Read(RecordLocator{}, nullptr, nullptr).ok());
  EXPECT_FALSE(
      file.Read(RecordLocator{99, 0}, nullptr, nullptr).ok());
  EXPECT_TRUE(file.Read(RecordLocator{0, 5}, nullptr, nullptr)
                  .status()
                  .IsNotFound());
}

TEST(HeapFileTest, PagesTouchedReportedForInline) {
  HeapFile file;
  auto loc = file.Append(0, MakeSet(3));
  std::vector<PageId> touched;
  ASSERT_TRUE(file.Read(loc.value(), nullptr, &touched).ok());
  EXPECT_EQ(touched.size(), 1u);
  EXPECT_EQ(touched[0], loc->page);
}

TEST(HeapFileTest, RecordBytesFormula) {
  EXPECT_EQ(HeapFile::RecordBytes(0), 8u);
  EXPECT_EQ(HeapFile::RecordBytes(10), 88u);
  EXPECT_GT(HeapFile::MaxInlineRecordBytes(), 4000u);
  EXPECT_LT(HeapFile::MaxInlineRecordBytes(), kPageSize);
}

TEST(HeapFileTest, StressRandomSizes) {
  HeapFile file;
  Rng rng(44);
  std::vector<std::pair<RecordLocator, ElementSet>> records;
  for (SetId sid = 0; sid < 300; ++sid) {
    const std::size_t n = 1 + rng.Uniform(900);  // some spanning, some not
    ElementSet set = MakeSet(n, sid * 1000);
    auto loc = file.Append(sid, set);
    ASSERT_TRUE(loc.ok());
    records.emplace_back(loc.value(), std::move(set));
  }
  EXPECT_EQ(file.num_records(), 300u);
  for (SetId sid = 0; sid < 300; ++sid) {
    SetId got = kInvalidSetId;
    auto read = file.Read(records[sid].first, &got, nullptr);
    ASSERT_TRUE(read.ok()) << read.status().ToString();
    EXPECT_EQ(got, sid);
    EXPECT_EQ(read.value(), records[sid].second);
  }
}

TEST(HeapFileTest, EmptySetRecord) {
  HeapFile file;
  auto loc = file.Append(5, {});
  ASSERT_TRUE(loc.ok());
  auto read = file.Read(loc.value(), nullptr, nullptr);
  ASSERT_TRUE(read.ok());
  EXPECT_TRUE(read.value().empty());
}

}  // namespace
}  // namespace ssr
