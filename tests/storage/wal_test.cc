// WAL framing matrix: round-trips, LSN discipline, sync policies, torn
// tails truncated cleanly at every byte, and mid-log damage surfacing as
// typed Corruption — never a clean read of a wrong log.

#include <cstring>
#include <sstream>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "fault/fault_injector.h"
#include "obs/metrics.h"
#include "storage/wal.h"
#include "util/crc32.h"
#include "util/random.h"
#include "util/serialize.h"
#include "util/set_ops.h"

namespace ssr {
namespace {

// Serialized sizes pinned by the format doc in storage/wal.h.
constexpr std::size_t kHeaderBytes = 6 + 4 + 8;          // magic+version+lsn
constexpr std::size_t kRecordFixedBytes = 17 + 4;        // header + its CRC
constexpr std::size_t kErasePayloadBytes = 4;            // u32 sid
std::size_t InsertPayloadBytes(const ElementSet& set) {
  return 4 + 8 + 8 * set.size();  // u32 sid + u64 count + elements
}

class WalTest : public ::testing::Test {
 protected:
  void SetUp() override { fault::FaultInjector::Default().Reset(); }
  void TearDown() override { fault::FaultInjector::Default().Reset(); }
};

#ifdef SSR_NO_FAULT_INJECTION
#define SKIP_WITHOUT_INJECTION() \
  GTEST_SKIP() << "built with SSR_NO_FAULT_INJECTION"
#else
#define SKIP_WITHOUT_INJECTION() (void)0
#endif

ElementSet SmallSet(Rng& rng, std::size_t max_size = 12) {
  ElementSet s;
  const std::size_t size = 1 + rng.Uniform(max_size);
  for (std::size_t i = 0; i < size; ++i) s.push_back(rng.Uniform(100000));
  NormalizeSet(s);
  if (s.empty()) s.push_back(1);
  return s;
}

// A log of alternating inserts and erases; returns the serialized bytes,
// the decoded-record ground truth, and each record's end offset in the
// byte stream (the acknowledged-prefix boundaries).
struct LogFixture {
  std::string bytes;
  std::vector<WalRecord> records;
  std::vector<std::size_t> end_offsets;  // by record, cumulative
};

LogFixture BuildLog(std::size_t num_records, std::uint64_t start_lsn,
                    WalOptions options = WalOptions()) {
  LogFixture f;
  std::ostringstream out;
  WalWriter writer(out, start_lsn, options);
  Rng rng(20260807);
  for (std::size_t i = 0; i < num_records; ++i) {
    WalRecord record;
    record.sid = static_cast<SetId>(i);
    if (i % 3 == 2) {
      record.type = WalRecordType::kErase;
      auto lsn = writer.AppendErase(record.sid);
      EXPECT_TRUE(lsn.ok());
      record.lsn = lsn.value();
    } else {
      record.type = WalRecordType::kInsert;
      record.set = SmallSet(rng);
      auto lsn = writer.AppendInsert(record.sid, record.set);
      EXPECT_TRUE(lsn.ok());
      record.lsn = lsn.value();
    }
    f.records.push_back(std::move(record));
    f.end_offsets.push_back(writer.bytes_written());
  }
  EXPECT_EQ(writer.bytes_written(), out.str().size());
  f.bytes = out.str();
  return f;
}

TEST_F(WalTest, RoundTripsInsertsAndErases) {
  const LogFixture f = BuildLog(9, kWalFirstLsn);
  std::istringstream in(f.bytes);
  std::vector<WalRecord> decoded;
  WalReadStats stats;
  ASSERT_TRUE(ReadWal(in, &decoded, &stats).ok());
  ASSERT_EQ(decoded.size(), f.records.size());
  for (std::size_t i = 0; i < decoded.size(); ++i) {
    EXPECT_EQ(decoded[i].lsn, f.records[i].lsn);
    EXPECT_EQ(decoded[i].type, f.records[i].type);
    EXPECT_EQ(decoded[i].sid, f.records[i].sid);
    EXPECT_EQ(decoded[i].set, f.records[i].set);
    // LSNs are dense and ascending from the header's start LSN.
    EXPECT_EQ(decoded[i].lsn, kWalFirstLsn + i);
  }
  EXPECT_EQ(stats.start_lsn, kWalFirstLsn);
  EXPECT_EQ(stats.last_lsn, kWalFirstLsn + f.records.size() - 1);
  EXPECT_EQ(stats.records_read, f.records.size());
  EXPECT_EQ(stats.bytes_truncated, 0u);
  EXPECT_FALSE(stats.tail_truncated);
}

TEST_F(WalTest, FrameSizesMatchTheFormatDoc) {
  std::ostringstream out;
  WalWriter writer(out, kWalFirstLsn);
  EXPECT_EQ(writer.bytes_written(), kHeaderBytes);
  ASSERT_TRUE(writer.AppendErase(7).ok());
  EXPECT_EQ(writer.bytes_written(),
            kHeaderBytes + kRecordFixedBytes + kErasePayloadBytes);
  const ElementSet set = {1, 2, 3};
  ASSERT_TRUE(writer.AppendInsert(8, set).ok());
  EXPECT_EQ(writer.bytes_written(), kHeaderBytes + 2 * kRecordFixedBytes +
                                        kErasePayloadBytes +
                                        InsertPayloadBytes(set));
}

TEST_F(WalTest, EmptyLogReadsCleanly) {
  std::ostringstream out;
  WalWriter writer(out, 42);
  EXPECT_EQ(writer.last_lsn(), 41u);
  EXPECT_EQ(writer.synced_lsn(), 41u);
  std::istringstream in(out.str());
  std::vector<WalRecord> decoded;
  WalReadStats stats;
  ASSERT_TRUE(ReadWal(in, &decoded, &stats).ok());
  EXPECT_TRUE(decoded.empty());
  EXPECT_EQ(stats.start_lsn, 42u);
  EXPECT_EQ(stats.records_read, 0u);
  EXPECT_FALSE(stats.tail_truncated);
}

TEST_F(WalTest, EveryRecordPolicySyncsEachAppend) {
  std::ostringstream out;
  WalWriter writer(out, kWalFirstLsn);  // default policy: kEveryRecord
  for (int i = 0; i < 5; ++i) {
    auto lsn = writer.AppendErase(static_cast<SetId>(i));
    ASSERT_TRUE(lsn.ok());
    EXPECT_EQ(writer.synced_lsn(), lsn.value());
    EXPECT_EQ(writer.synced_lsn(), writer.last_lsn());
  }
}

TEST_F(WalTest, EveryNPolicyGroupsCommits) {
  std::ostringstream out;
  WalOptions options;
  options.sync_policy = WalSyncPolicy::kEveryN;
  options.sync_every_n = 3;
  WalWriter writer(out, kWalFirstLsn, options);
  ASSERT_TRUE(writer.AppendErase(0).ok());
  ASSERT_TRUE(writer.AppendErase(1).ok());
  EXPECT_EQ(writer.synced_lsn(), kWalFirstLsn - 1);  // nothing durable yet
  ASSERT_TRUE(writer.AppendErase(2).ok());           // third append: group sync
  EXPECT_EQ(writer.synced_lsn(), kWalFirstLsn + 2);
  ASSERT_TRUE(writer.AppendErase(3).ok());
  EXPECT_EQ(writer.synced_lsn(), kWalFirstLsn + 2);
  ASSERT_TRUE(writer.Sync().ok());  // manual sync closes the open group
  EXPECT_EQ(writer.synced_lsn(), kWalFirstLsn + 3);
}

TEST_F(WalTest, OnCheckpointPolicyLeavesSyncToTheCheckpointer) {
  std::ostringstream out;
  WalOptions options;
  options.sync_policy = WalSyncPolicy::kOnCheckpoint;
  WalWriter writer(out, kWalFirstLsn, options);
  for (int i = 0; i < 4; ++i) {
    ASSERT_TRUE(writer.AppendErase(static_cast<SetId>(i)).ok());
  }
  EXPECT_EQ(writer.synced_lsn(), kWalFirstLsn - 1);
  ASSERT_TRUE(writer.Sync().ok());
  EXPECT_EQ(writer.synced_lsn(), writer.last_lsn());
}

// The crash harness's core framing guarantee: a crash can cut the log at
// *any* byte, and the reader must come back with exactly the fully-framed
// record prefix — never an error, never a partial record.
TEST_F(WalTest, TruncationAtEveryByteTruncatesTheTailCleanly) {
  const LogFixture f = BuildLog(6, kWalFirstLsn);
  for (std::size_t len = 0; len <= f.bytes.size(); ++len) {
    std::istringstream in(f.bytes.substr(0, len));
    std::vector<WalRecord> decoded;
    WalReadStats stats;
    const Status st = ReadWal(in, &decoded, &stats);
    ASSERT_TRUE(st.ok()) << "prefix " << len << ": " << st.ToString();
    std::size_t expected = 0;
    while (expected < f.end_offsets.size() &&
           f.end_offsets[expected] <= len) {
      ++expected;
    }
    ASSERT_EQ(decoded.size(), expected) << "prefix " << len;
    for (std::size_t i = 0; i < expected; ++i) {
      EXPECT_EQ(decoded[i].lsn, f.records[i].lsn);
      EXPECT_EQ(decoded[i].set, f.records[i].set);
    }
    const bool at_boundary =
        len == f.bytes.size() ||
        (len >= kHeaderBytes &&
         (expected == 0 ? len == kHeaderBytes
                        : len == f.end_offsets[expected - 1]));
    EXPECT_EQ(stats.tail_truncated, !at_boundary) << "prefix " << len;
    if (at_boundary) {
      EXPECT_EQ(stats.bytes_truncated, 0u) << "prefix " << len;
    }
  }
}

// Mid-log damage is the one case recovery must refuse: a complete frame
// with flipped bits means bit rot, and replaying past it could resurrect
// or lose acknowledged writes. Every single-byte flip anywhere in the log
// must surface as a typed error.
TEST_F(WalTest, BitFlipAtEveryByteIsTypedError) {
  const LogFixture f = BuildLog(5, kWalFirstLsn);
  for (std::size_t i = 0; i < f.bytes.size(); ++i) {
    std::string flipped = f.bytes;
    flipped[i] = static_cast<char>(flipped[i] ^ 0x10);
    std::istringstream in(flipped);
    std::vector<WalRecord> decoded;
    const Status st = ReadWal(in, &decoded);
    ASSERT_FALSE(st.ok()) << "flip at byte " << i;
    EXPECT_TRUE(st.IsCorruption() || st.IsNotSupported())
        << "flip at byte " << i << ": " << st.ToString();
  }
}

TEST_F(WalTest, ValidFrameWithWrongTypeIsCorruption) {
  const LogFixture f = BuildLog(2, kWalFirstLsn);
  // Rewrite the first record's type byte and re-seal the header CRC: the
  // frame is then fully intact but semantically unknown.
  std::string bytes = f.bytes;
  const std::size_t header_at = kHeaderBytes;
  bytes[header_at + 8] = static_cast<char>(99);  // type after the u64 lsn
  std::ostringstream crc_buf;
  BinaryWriter crc_writer(crc_buf);
  crc_writer.WriteU32(Crc32(bytes.data() + header_at, 17));
  bytes.replace(header_at + 17, 4, crc_buf.str());
  std::istringstream in(bytes);
  std::vector<WalRecord> decoded;
  EXPECT_TRUE(ReadWal(in, &decoded).IsCorruption());
}

TEST_F(WalTest, GarbageHeaderIsCorruption) {
  {
    std::istringstream in(std::string("XSRWALXXXXXXXXXXXXXXXXXX"));
    std::vector<WalRecord> decoded;
    EXPECT_TRUE(ReadWal(in, &decoded).IsCorruption());
  }
  // Short garbage is not a crash artifact either: a torn header must still
  // be a prefix of the real magic to read as an empty log.
  {
    std::istringstream in(std::string("XYZ"));
    std::vector<WalRecord> decoded;
    EXPECT_TRUE(ReadWal(in, &decoded).IsCorruption());
  }
  {
    std::istringstream in(std::string("SSR"));
    std::vector<WalRecord> decoded;
    WalReadStats stats;
    ASSERT_TRUE(ReadWal(in, &decoded, &stats).ok());
    EXPECT_TRUE(decoded.empty());
    EXPECT_TRUE(stats.tail_truncated);
    EXPECT_EQ(stats.bytes_truncated, 3u);
  }
}

TEST_F(WalTest, VersionSkewIsNotSupported) {
  LogFixture f = BuildLog(1, kWalFirstLsn);
  f.bytes[6] = static_cast<char>(9);  // version u32 follows the magic
  std::istringstream in(f.bytes);
  std::vector<WalRecord> decoded;
  EXPECT_TRUE(ReadWal(in, &decoded).IsNotSupported());
}

TEST_F(WalTest, ExpectedStartLsnPinsTheHeader) {
  const LogFixture f = BuildLog(3, /*start_lsn=*/11);
  std::istringstream ok_in(f.bytes);
  std::vector<WalRecord> decoded;
  EXPECT_TRUE(ReadWal(ok_in, &decoded, nullptr, 11).ok());
  std::istringstream bad_in(f.bytes);
  EXPECT_TRUE(ReadWal(bad_in, &decoded, nullptr, 12).IsCorruption());
}

TEST_F(WalTest, InjectedWriteErrorKillsTheWriter) {
  SKIP_WITHOUT_INJECTION();
  std::ostringstream out;
  WalWriter writer(out, kWalFirstLsn);
  ASSERT_TRUE(writer.AppendErase(0).ok());
  auto& fi = fault::FaultInjector::Default();
  fi.Enable(1);
  fi.Arm("wal/append", fault::FaultKind::kWriteError,
         fault::FaultSchedule::Once());
  EXPECT_TRUE(writer.AppendErase(1).status().IsUnavailable());
  EXPECT_TRUE(writer.crashed());
  fi.Reset();
  // The writer stays dead even after the fault clears...
  EXPECT_TRUE(writer.AppendErase(2).status().IsUnavailable());
  EXPECT_TRUE(writer.Sync().IsUnavailable());
  EXPECT_EQ(writer.records_appended(), 1u);
  // ...and whatever prefix landed reads back as record 1 plus a torn tail
  // at worst (stringstreams ignore failbit writes, so here it is exactly
  // the first record).
  std::istringstream in(out.str());
  std::vector<WalRecord> decoded;
  ASSERT_TRUE(ReadWal(in, &decoded).ok());
  EXPECT_EQ(decoded.size(), 1u);
}

TEST_F(WalTest, CrashPointStopsTheWriterAtARecordBoundary) {
  SKIP_WITHOUT_INJECTION();
  for (std::uint64_t after = 0; after < 4; ++after) {
    auto& fi = fault::FaultInjector::Default();
    fi.Reset();
    fi.Enable(7);
    fi.Arm("wal/crash", fault::FaultKind::kCrashPoint,
           fault::FaultSchedule::Once(after));
    std::ostringstream out;
    WalWriter writer(out, kWalFirstLsn);
    std::uint64_t appended = 0;
    for (std::uint64_t i = 0; i < 6; ++i) {
      auto lsn = writer.AppendInsert(static_cast<SetId>(i), {1, 2, 3});
      if (lsn.ok()) {
        ++appended;
      } else {
        EXPECT_TRUE(lsn.status().IsUnavailable());
        EXPECT_TRUE(writer.crashed());
      }
    }
    fi.Reset();
    EXPECT_EQ(appended, after);
    // The log holds exactly the records appended before the power cut —
    // whole frames, no torn bytes.
    std::istringstream in(out.str());
    std::vector<WalRecord> decoded;
    WalReadStats stats;
    ASSERT_TRUE(ReadWal(in, &decoded, &stats).ok());
    EXPECT_EQ(decoded.size(), appended);
    EXPECT_FALSE(stats.tail_truncated);
  }
}

TEST_F(WalTest, AppendAccountingReachesTheMetricsRegistry) {
  auto& registry = obs::MetricsRegistry::Default();
  obs::Counter* appends = registry.GetCounter("ssr_wal_appends_total");
  obs::Counter* syncs = registry.GetCounter("ssr_wal_syncs_total");
  obs::Counter* bytes = registry.GetCounter("ssr_wal_append_bytes_total");
  const std::uint64_t appends_before = appends->value();
  const std::uint64_t syncs_before = syncs->value();
  const std::uint64_t bytes_before = bytes->value();
  std::ostringstream out;
  WalWriter writer(out, kWalFirstLsn);
  ASSERT_TRUE(writer.AppendErase(1).ok());
  ASSERT_TRUE(writer.AppendInsert(2, {4, 5}).ok());
  EXPECT_EQ(appends->value() - appends_before, 2u);
  EXPECT_EQ(syncs->value() - syncs_before, 2u);  // kEveryRecord
  EXPECT_EQ(bytes->value() - bytes_before,
            writer.bytes_written() - kHeaderBytes);
}

}  // namespace
}  // namespace ssr
