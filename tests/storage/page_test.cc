#include "storage/page.h"

#include <gtest/gtest.h>

namespace ssr {
namespace {

TEST(PageTest, ZeroInitialized) {
  Page p;
  EXPECT_EQ(p.ReadU64(0), 0u);
  EXPECT_EQ(p.ReadU64(kPageSize - 8), 0u);
}

TEST(PageTest, ScalarRoundTrips) {
  Page p;
  p.WriteU16(0, 0xbeef);
  p.WriteU32(2, 0xdeadbeef);
  p.WriteU64(6, 0x0123456789abcdefULL);
  EXPECT_EQ(p.ReadU16(0), 0xbeef);
  EXPECT_EQ(p.ReadU32(2), 0xdeadbeefu);
  EXPECT_EQ(p.ReadU64(6), 0x0123456789abcdefULL);
}

TEST(PageTest, WritesDoNotBleed) {
  Page p;
  p.WriteU32(100, 0xffffffffu);
  EXPECT_EQ(p.ReadU32(96), 0u);
  EXPECT_EQ(p.ReadU32(104), 0u);
}

TEST(PageTest, BytesRoundTrip) {
  Page p;
  const char msg[] = "similar set retrieval";
  p.WriteBytes(500, msg, sizeof(msg));
  char out[sizeof(msg)];
  p.ReadBytes(500, out, sizeof(msg));
  EXPECT_STREQ(out, msg);
}

TEST(PageTest, EdgeOffsets) {
  Page p;
  p.WriteU16(kPageSize - 2, 0xaa55);
  EXPECT_EQ(p.ReadU16(kPageSize - 2), 0xaa55);
  p.WriteU64(kPageSize - 8, 42);
  EXPECT_EQ(p.ReadU64(kPageSize - 8), 42u);
}

#ifndef NDEBUG
// Out-of-bounds accessors assert in debug builds (they compile to raw
// array access in release, where the callers' invariants hold).
using PageDeathTest = ::testing::Test;

TEST(PageDeathTest, ReadPastEndAsserts) {
  Page p;
  EXPECT_DEATH(p.ReadU16(kPageSize - 1), "");
  EXPECT_DEATH(p.ReadU32(kPageSize - 3), "");
  EXPECT_DEATH(p.ReadU64(kPageSize - 7), "");
}

TEST(PageDeathTest, WritePastEndAsserts) {
  Page p;
  EXPECT_DEATH(p.WriteU16(kPageSize - 1, 1), "");
  EXPECT_DEATH(p.WriteU32(kPageSize - 3, 1), "");
  EXPECT_DEATH(p.WriteU64(kPageSize - 7, 1), "");
}

TEST(PageDeathTest, ByteSpanPastEndAsserts) {
  Page p;
  char buf[16] = {};
  EXPECT_DEATH(p.WriteBytes(kPageSize - 8, buf, 16), "");
  EXPECT_DEATH(p.ReadBytes(kPageSize - 8, buf, 16), "");
}
#endif  // NDEBUG

}  // namespace
}  // namespace ssr
