// The deterministic crash-point harness for the durability protocol
// (checkpoint + WAL + recovery, storage/recovery.h). The headline matrix
// kills the write path at every WAL record boundary and at every byte of a
// torn tail, recovers from (checkpoint, surviving log prefix), and asserts
// the recovered index is bit-identical (ContentDigest) to a reference that
// applied exactly the acknowledged mutation prefix. Mid-log damage must
// surface as a typed error — never a silently wrong index — and under
// sharding an unrecoverable log costs exactly its own shard.
//
// The churn workload is seeded via SSR_FAULT_SEED (fault::SeedFromEnv), so
// the CI crash-matrix job sweeps genuinely different op mixes and record
// geometries while every run stays reproducible.

#include <cstdio>
#include <memory>
#include <sstream>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "core/set_similarity_index.h"
#include "fault/fault_injector.h"
#include "obs/metrics.h"
#include "shard/sharded_index.h"
#include "storage/atomic_file.h"
#include "storage/recovery.h"
#include "storage/wal.h"
#include "util/random.h"
#include "util/set_ops.h"

namespace ssr {
namespace {

constexpr std::size_t kWalHeaderBytes = 6 + 4 + 8;
constexpr std::size_t kInitialSets = 36;
constexpr std::size_t kChurnOps = 10;

class CrashRecoveryTest : public ::testing::Test {
 protected:
  void SetUp() override { fault::FaultInjector::Default().Reset(); }
  void TearDown() override { fault::FaultInjector::Default().Reset(); }
};

#ifdef SSR_NO_FAULT_INJECTION
#define SKIP_WITHOUT_INJECTION() \
  GTEST_SKIP() << "built with SSR_NO_FAULT_INJECTION"
#else
#define SKIP_WITHOUT_INJECTION() (void)0
#endif

ElementSet RandomSet(Rng& rng) {
  ElementSet s;
  const std::size_t size = 8 + rng.Uniform(24);
  for (std::size_t i = 0; i < size; ++i) s.push_back(rng.Uniform(5000));
  NormalizeSet(s);
  if (s.empty()) s.push_back(1);
  return s;
}

IndexLayout TestLayout() {
  IndexLayout layout;
  layout.delta = 0.3;
  layout.points = {{0.3, FilterKind::kDissimilarity, 6, 0},
                   {0.3, FilterKind::kSimilarity, 6, 0},
                   {0.7, FilterKind::kSimilarity, 6, 3}};
  return layout;
}

IndexOptions TestIndexOptions() {
  IndexOptions options;
  options.embedding.minhash.num_hashes = 64;
  options.embedding.minhash.seed = 999;
  options.seed = 1234;
  return options;
}

// One acknowledged mutation of the churn phase, with the WAL byte offset
// at which its frame ends (the acknowledged-prefix boundary).
struct Op {
  bool insert = false;
  SetId sid = kInvalidSetId;
  ElementSet set;
  std::size_t end_offset = 0;
};

// A checkpoint, a captured post-checkpoint WAL, and — for every record
// boundary k — the ContentDigest of a reference index that applied exactly
// the first k acknowledged ops. digests[k] is what recovery from any
// truncation inside op k+1's frame must reproduce.
struct CrashFixture {
  std::string checkpoint;  // stable_lsn = 0
  std::string wal;         // start_lsn = 1, one record per op
  std::vector<Op> ops;
  std::vector<std::uint64_t> digests;  // size ops.size() + 1
  std::uint64_t checkpoint_digest = 0;
  std::uint64_t final_digest = 0;
};

std::unique_ptr<CrashFixture> BuildCrashFixture() {
  auto f = std::make_unique<CrashFixture>();
  Rng rng(fault::SeedFromEnv(0xc4a5481ULL));

  SetStore store;
  for (std::size_t i = 0; i < kInitialSets; ++i) {
    EXPECT_TRUE(store.Add(RandomSet(rng)).ok());
  }
  auto built = SetSimilarityIndex::Build(store, TestLayout(),
                                         TestIndexOptions());
  EXPECT_TRUE(built.ok());
  if (!built.ok()) return nullptr;
  SetSimilarityIndex index = std::move(built).value();

  std::ostringstream ckpt_out;
  EXPECT_TRUE(WriteIndexCheckpoint(index, /*stable_lsn=*/0, ckpt_out).ok());
  f->checkpoint = ckpt_out.str();
  f->checkpoint_digest = index.ContentDigest();

  std::ostringstream wal_out;
  WalWriter wal(wal_out, kWalFirstLsn);
  index.AttachWal(&wal);
  std::vector<SetId> live;
  for (SetId sid = 0; sid < kInitialSets; ++sid) live.push_back(sid);
  for (std::size_t i = 0; i < kChurnOps; ++i) {
    Op op;
    op.insert = live.empty() || rng.NextDouble() < 0.6;
    if (op.insert) {
      op.set = RandomSet(rng);
      auto sid = store.Add(op.set);
      EXPECT_TRUE(sid.ok());
      op.sid = sid.value();
      EXPECT_TRUE(index.Insert(op.sid, op.set).ok());
      live.push_back(op.sid);
    } else {
      const std::size_t pick = rng.Uniform(live.size());
      op.sid = live[pick];
      EXPECT_TRUE(index.Erase(op.sid).ok());
      EXPECT_TRUE(store.Delete(op.sid).ok());
      live.erase(live.begin() + pick);
    }
    op.end_offset = wal.bytes_written();
    f->ops.push_back(std::move(op));
  }
  index.AttachWal(nullptr);
  f->wal = wal_out.str();
  f->final_digest = index.ContentDigest();

  // Reference digests per acknowledged-prefix boundary, built by reviving
  // the checkpoint once and applying the ops one by one.
  std::istringstream ckpt_in(f->checkpoint);
  auto ref = RecoverIndex(ckpt_in, /*wal=*/nullptr);
  EXPECT_TRUE(ref.ok());
  if (!ref.ok()) return nullptr;
  f->digests.push_back(ref->index->ContentDigest());
  EXPECT_EQ(f->digests[0], f->checkpoint_digest);
  for (const Op& op : f->ops) {
    if (op.insert) {
      auto sid = ref->store->Add(op.set);
      EXPECT_TRUE(sid.ok());
      EXPECT_EQ(sid.value(), op.sid);
      EXPECT_TRUE(ref->index->Insert(op.sid, op.set).ok());
    } else {
      EXPECT_TRUE(ref->index->Erase(op.sid).ok());
      EXPECT_TRUE(ref->store->Delete(op.sid).ok());
    }
    f->digests.push_back(ref->index->ContentDigest());
  }
  EXPECT_EQ(f->digests.back(), f->final_digest);
  return f;
}

Result<RecoveredIndex> Recover(const CrashFixture& f,
                               const std::string& wal_bytes,
                               const RecoverOptions& options = {}) {
  std::istringstream ckpt_in(f.checkpoint);
  std::istringstream wal_in(wal_bytes);
  return RecoverIndex(ckpt_in, &wal_in, options);
}

TEST_F(CrashRecoveryTest, CheckpointRoundTripsBitIdentically) {
  auto f = BuildCrashFixture();
  ASSERT_NE(f, nullptr);
  std::istringstream ckpt_in(f->checkpoint);
  auto rec = RecoverIndex(ckpt_in, /*wal=*/nullptr);
  ASSERT_TRUE(rec.ok()) << rec.status().ToString();
  EXPECT_EQ(rec->checkpoint_lsn, 0u);
  EXPECT_EQ(rec->recovered_lsn, 0u);
  EXPECT_EQ(rec->index->ContentDigest(), f->checkpoint_digest);
  EXPECT_EQ(rec->index->num_live_sets(), kInitialSets);
}

// The tentpole matrix: a crash can freeze the log at *any* byte. For every
// prefix length the recovered index must be bit-identical to the reference
// that applied exactly the ops whose frames fully landed — torn tails
// truncate cleanly, and recovery is never wrong and never refuses a crash
// artifact.
TEST_F(CrashRecoveryTest, CrashAtEveryWalByteRecoversTheAcknowledgedPrefix) {
  auto f = BuildCrashFixture();
  ASSERT_NE(f, nullptr);
  for (std::size_t len = 0; len <= f->wal.size(); ++len) {
    auto rec = Recover(*f, f->wal.substr(0, len));
    ASSERT_TRUE(rec.ok()) << "prefix " << len << ": "
                          << rec.status().ToString();
    std::size_t acked = 0;
    while (acked < f->ops.size() && f->ops[acked].end_offset <= len) {
      ++acked;
    }
    ASSERT_EQ(rec->index->ContentDigest(), f->digests[acked])
        << "prefix " << len << " acked " << acked;
    EXPECT_EQ(rec->recovered_lsn, acked) << "prefix " << len;
    EXPECT_EQ(rec->report.wal_records_replayed, acked) << "prefix " << len;
    const bool at_boundary =
        len == f->wal.size() ||
        (len >= kWalHeaderBytes &&
         (acked == 0 ? len == kWalHeaderBytes
                     : len == f->ops[acked - 1].end_offset));
    EXPECT_EQ(rec->report.wal_tail_truncated, !at_boundary)
        << "prefix " << len;
  }
}

// The same matrix through the real write path: a kCrashPoint at the
// "wal/crash" site kills the writer before its k-th append, exactly like a
// power cut between two mutations. The mutation that hit the dead writer
// must fail with nothing applied (memory never runs ahead of the log), and
// recovery from the captured log must land on the same digest as the
// still-running-but-crashed live index.
TEST_F(CrashRecoveryTest, CrashPointAtEveryRecordBoundaryThroughWritePath) {
  SKIP_WITHOUT_INJECTION();
  auto f = BuildCrashFixture();
  ASSERT_NE(f, nullptr);
  auto& fi = fault::FaultInjector::Default();
  obs::Counter* crash_points =
      obs::MetricsRegistry::Default().GetCounter("ssr_wal_crash_points_total");
  const std::uint64_t crash_points_before = crash_points->value();

  for (std::size_t k = 0; k <= f->ops.size(); ++k) {
    std::istringstream ckpt_in(f->checkpoint);
    auto live = RecoverIndex(ckpt_in, /*wal=*/nullptr);
    ASSERT_TRUE(live.ok());
    std::ostringstream wal_out;
    WalWriter wal(wal_out, kWalFirstLsn);
    live->index->AttachWal(&wal);

    fi.Reset();
    fi.Enable(fault::SeedFromEnv(7));
    fi.Arm("wal/crash", fault::FaultKind::kCrashPoint,
           fault::FaultSchedule::Once(/*after_hits=*/k));
    for (std::size_t i = 0; i < f->ops.size(); ++i) {
      const Op& op = f->ops[i];
      Status st;
      if (op.insert) {
        auto sid = live->store->Add(op.set);
        ASSERT_TRUE(sid.ok());
        ASSERT_EQ(sid.value(), op.sid);
        st = live->index->Insert(op.sid, op.set);
      } else {
        st = live->index->Erase(op.sid);
        if (st.ok()) ASSERT_TRUE(live->store->Delete(op.sid).ok());
      }
      if (i < k) {
        ASSERT_TRUE(st.ok()) << "crash " << k << " op " << i << ": "
                             << st.ToString();
      } else {
        // The first op to hit the dead writer sees the crash itself;
        // later ops see the dead writer or a precondition that the lost
        // ops never established. Nothing may apply.
        ASSERT_FALSE(st.ok()) << "crash " << k << " op " << i;
      }
    }
    fi.Reset();
    live->index->AttachWal(nullptr);
    if (k < f->ops.size()) EXPECT_TRUE(wal.crashed());

    // A failed append applied nothing: the live index froze at boundary k.
    EXPECT_EQ(live->index->ContentDigest(), f->digests[k]) << "crash " << k;
    // And recovery from the captured log reproduces exactly that state.
    auto rec = Recover(*f, wal_out.str());
    ASSERT_TRUE(rec.ok()) << "crash " << k << ": " << rec.status().ToString();
    EXPECT_EQ(rec->index->ContentDigest(), f->digests[k]) << "crash " << k;
    EXPECT_EQ(rec->recovered_lsn, k) << "crash " << k;
    EXPECT_FALSE(rec->report.wal_tail_truncated) << "crash " << k;
  }
  EXPECT_EQ(crash_points->value() - crash_points_before, f->ops.size());
}

// Mid-log damage (a complete frame with flipped bits) is bit rot, not a
// crash: recovery must refuse with a typed error at every flipped byte —
// silently replaying past it could lose or resurrect acknowledged writes.
TEST_F(CrashRecoveryTest, BitFlipAnywhereInTheLogIsTypedErrorNeverWrong) {
  auto f = BuildCrashFixture();
  ASSERT_NE(f, nullptr);
  Rng rng(fault::SeedFromEnv(0xb17f11bULL));
  for (std::size_t i = 0; i < f->wal.size(); ++i) {
    std::string flipped = f->wal;
    flipped[i] = static_cast<char>(flipped[i] ^ 0x10);
    std::istringstream in(flipped);
    std::vector<WalRecord> records;
    const Status st = ReadWal(in, &records);
    ASSERT_FALSE(st.ok()) << "flip at byte " << i;
    EXPECT_TRUE(st.IsCorruption() || st.IsNotSupported())
        << "flip at byte " << i << ": " << st.ToString();
  }
  // End-to-end through RecoverIndex for a seeded sample of offsets, in
  // both strict and salvage modes: the error propagates, no index comes
  // back.
  for (int t = 0; t < 6; ++t) {
    const std::size_t i = rng.Uniform(f->wal.size());
    std::string flipped = f->wal;
    flipped[i] = static_cast<char>(flipped[i] ^ 0x10);
    auto strict = Recover(*f, flipped);
    EXPECT_FALSE(strict.ok()) << "flip at byte " << i;
    RecoverOptions salvage;
    salvage.snapshot.salvage = true;
    auto salvaged = Recover(*f, flipped, salvage);
    EXPECT_FALSE(salvaged.ok()) << "flip at byte " << i;
  }
}

// A crash between checkpoint publish and log truncation is benign: replay
// skips every record at or below the checkpoint LSN.
TEST_F(CrashRecoveryTest, UntruncatedLogAfterCheckpointReplaysIdempotently) {
  auto f = BuildCrashFixture();
  ASSERT_NE(f, nullptr);
  auto full = Recover(*f, f->wal);
  ASSERT_TRUE(full.ok());
  ASSERT_EQ(full->recovered_lsn, f->ops.size());

  std::ostringstream ckpt2_out;
  ASSERT_TRUE(
      WriteIndexCheckpoint(*full->index, full->recovered_lsn, ckpt2_out)
          .ok());
  std::istringstream ckpt2_in(ckpt2_out.str());
  std::istringstream wal_in(f->wal);  // the old, never-truncated log
  auto rec = RecoverIndex(ckpt2_in, &wal_in);
  ASSERT_TRUE(rec.ok()) << rec.status().ToString();
  EXPECT_EQ(rec->checkpoint_lsn, f->ops.size());
  EXPECT_EQ(rec->recovered_lsn, f->ops.size());
  EXPECT_EQ(rec->report.wal_records_skipped, f->ops.size());
  EXPECT_EQ(rec->report.wal_records_replayed, 0u);
  EXPECT_EQ(rec->index->ContentDigest(), f->final_digest);
}

// Idempotence past the LSN gate: an insert whose effect the checkpoint
// already contains (same sid live) is skipped, not double-applied.
TEST_F(CrashRecoveryTest, ReplayOfAlreadyPresentInsertIsSkipped) {
  auto f = BuildCrashFixture();
  ASSERT_NE(f, nullptr);
  std::istringstream probe_in(f->checkpoint);
  auto probe = RecoverIndex(probe_in, nullptr);
  ASSERT_TRUE(probe.ok());
  auto sid0 = probe->store->Get(0);
  ASSERT_TRUE(sid0.ok());

  std::ostringstream wal_out;
  WalWriter wal(wal_out, kWalFirstLsn);
  ASSERT_TRUE(wal.AppendInsert(0, sid0.value()).ok());
  auto rec = Recover(*f, wal_out.str());
  ASSERT_TRUE(rec.ok()) << rec.status().ToString();
  EXPECT_EQ(rec->report.wal_records_skipped, 1u);
  EXPECT_EQ(rec->report.wal_records_replayed, 0u);
  EXPECT_EQ(rec->index->ContentDigest(), f->checkpoint_digest);
}

// A log that starts past checkpoint_lsn + 1 lost acknowledged records;
// proceeding would be silent data loss, so recovery refuses, typed.
TEST_F(CrashRecoveryTest, WalStartingPastCheckpointIsDataLoss) {
  auto f = BuildCrashFixture();
  ASSERT_NE(f, nullptr);
  std::ostringstream wal_out;
  WalWriter wal(wal_out, /*start_lsn=*/5);
  ASSERT_TRUE(wal.AppendErase(0).ok());
  auto strict = Recover(*f, wal_out.str());
  EXPECT_TRUE(strict.status().IsDataLoss()) << strict.status().ToString();
  RecoverOptions salvage;
  salvage.snapshot.salvage = true;
  auto salvaged = Recover(*f, wal_out.str(), salvage);
  EXPECT_TRUE(salvaged.status().IsDataLoss());
}

TEST_F(CrashRecoveryTest, RecoveryFillsReportAndMirrorsMetrics) {
  auto f = BuildCrashFixture();
  ASSERT_NE(f, nullptr);
  // Tear inside the frame after the second boundary.
  const std::size_t boundary = f->ops[1].end_offset;
  const std::size_t len = boundary + 5;
  ASSERT_LT(len, f->ops[2].end_offset);

  auto& registry = obs::MetricsRegistry::Default();
  obs::Counter* recoveries = registry.GetCounter("ssr_wal_recoveries_total");
  obs::Counter* replayed =
      registry.GetCounter("ssr_wal_records_replayed_total");
  obs::Counter* truncated =
      registry.GetCounter("ssr_wal_bytes_truncated_total");
  const std::uint64_t recoveries_before = recoveries->value();
  const std::uint64_t replayed_before = replayed->value();
  const std::uint64_t truncated_before = truncated->value();

  RecoveryReport external;
  RecoverOptions options;
  options.snapshot.report = &external;
  auto rec = Recover(*f, f->wal.substr(0, len), options);
  ASSERT_TRUE(rec.ok()) << rec.status().ToString();
  EXPECT_TRUE(rec->report.wal_tail_truncated);
  EXPECT_EQ(rec->report.wal_bytes_truncated, 5u);
  EXPECT_EQ(rec->report.wal_records_replayed, 2u);
  EXPECT_GE(rec->report.wal_recovery_seconds, 0.0);
  // The external report the caller handed in sees the same accounting.
  EXPECT_TRUE(external.wal_tail_truncated);
  EXPECT_EQ(external.wal_records_replayed, 2u);
  // And the process-wide ssr_wal_* instruments record the recovery.
  EXPECT_EQ(recoveries->value() - recoveries_before, 1u);
  EXPECT_EQ(replayed->value() - replayed_before, 2u);
  EXPECT_EQ(truncated->value() - truncated_before, 5u);
  EXPECT_GE(registry.GetGauge("ssr_wal_last_recovery_seconds")->value(), 0.0);
}

// ---------------------------------------------------------------------------
// Atomic checkpoint saves: a kill at any save phase (tmp write, fsync,
// rename) leaves the previous checkpoint file intact and loadable.
// ---------------------------------------------------------------------------

TEST_F(CrashRecoveryTest, AtomicSaveKillAtAnyPhaseKeepsOldCheckpoint) {
  SKIP_WITHOUT_INJECTION();
  auto f = BuildCrashFixture();
  ASSERT_NE(f, nullptr);
  const std::string path =
      ::testing::TempDir() + "ssr_crash_recovery_ckpt.bin";
  std::remove(path.c_str());
  std::remove((path + ".tmp").c_str());

  std::istringstream old_in(f->checkpoint);
  auto old_state = RecoverIndex(old_in, nullptr);
  ASSERT_TRUE(old_state.ok());
  ASSERT_TRUE(WriteIndexCheckpointFile(*old_state->index, 0, path).ok());

  auto full = Recover(*f, f->wal);  // the state a newer checkpoint would save
  ASSERT_TRUE(full.ok());

  auto& fi = fault::FaultInjector::Default();
  for (std::uint64_t phase = 0; phase < 3; ++phase) {
    fi.Reset();
    fi.Enable(fault::SeedFromEnv(11));
    fi.Arm("file/atomic_save", fault::FaultKind::kCrashPoint,
           fault::FaultSchedule::Once(/*after_hits=*/phase));
    const Status st =
        WriteIndexCheckpointFile(*full->index, f->ops.size(), path);
    EXPECT_TRUE(st.IsUnavailable()) << "phase " << phase << ": "
                                    << st.ToString();
    fi.Reset();
    // The old checkpoint survives the mid-save kill bit-for-bit.
    auto rec = RecoverIndexFromFiles(path, path + ".wal");
    ASSERT_TRUE(rec.ok()) << "phase " << phase << ": "
                          << rec.status().ToString();
    EXPECT_EQ(rec->checkpoint_lsn, 0u);
    EXPECT_EQ(rec->index->ContentDigest(), f->checkpoint_digest);
  }

  // With the faults gone the save lands and recovery sees the new state.
  ASSERT_TRUE(
      WriteIndexCheckpointFile(*full->index, f->ops.size(), path).ok());
  auto rec = RecoverIndexFromFiles(path, path + ".wal");
  ASSERT_TRUE(rec.ok()) << rec.status().ToString();
  EXPECT_EQ(rec->checkpoint_lsn, f->ops.size());
  EXPECT_EQ(rec->index->ContentDigest(), f->final_digest);
  std::remove(path.c_str());
  std::remove((path + ".tmp").c_str());
}

TEST_F(CrashRecoveryTest, MissingCheckpointFileIsNotFound) {
  const std::string path =
      ::testing::TempDir() + "ssr_crash_recovery_missing.bin";
  std::remove(path.c_str());
  auto rec = RecoverIndexFromFiles(path, path + ".wal");
  EXPECT_TRUE(rec.status().IsNotFound()) << rec.status().ToString();
}

// ---------------------------------------------------------------------------
// Sharded recovery: per-shard WALs, and an unrecoverable log costs exactly
// its own shard while the rest keep serving.
// ---------------------------------------------------------------------------

struct ShardedFixture {
  static constexpr std::uint32_t kShards = 3;
  shard::ShardedIndexOptions options;
  std::unique_ptr<shard::ShardedSetSimilarityIndex> index;
  std::string checkpoint;                 // stable lsns all 0
  std::vector<std::string> wals;          // by shard
  std::vector<std::uint64_t> last_lsns;   // by shard
  std::uint64_t checkpoint_digest = 0;
  std::uint64_t final_digest = 0;
  std::vector<SetId> live;                // live global sids after churn

  ShardedFixture(const ShardedFixture&) = delete;
  ShardedFixture() = default;
};

std::unique_ptr<ShardedFixture> BuildShardedFixture() {
  auto f = std::make_unique<ShardedFixture>();
  Rng rng(fault::SeedFromEnv(0x54a6dedULL));
  SetCollection sets;
  for (std::size_t i = 0; i < kInitialSets; ++i) sets.push_back(RandomSet(rng));

  f->options.num_shards = ShardedFixture::kShards;
  f->options.index = TestIndexOptions();
  auto built = shard::ShardedSetSimilarityIndex::Build(sets, TestLayout(),
                                                       f->options);
  EXPECT_TRUE(built.ok());
  if (!built.ok()) return nullptr;
  f->index = std::make_unique<shard::ShardedSetSimilarityIndex>(
      std::move(built).value());
  f->checkpoint_digest = f->index->ContentDigest();

  std::ostringstream ckpt_out;
  EXPECT_TRUE(WriteShardedCheckpoint(
                  *f->index,
                  std::vector<std::uint64_t>(ShardedFixture::kShards, 0),
                  ckpt_out)
                  .ok());
  f->checkpoint = ckpt_out.str();

  std::vector<std::unique_ptr<std::ostringstream>> wal_streams;
  std::vector<std::unique_ptr<WalWriter>> writers;
  for (std::uint32_t s = 0; s < ShardedFixture::kShards; ++s) {
    wal_streams.push_back(std::make_unique<std::ostringstream>());
    writers.push_back(
        std::make_unique<WalWriter>(*wal_streams.back(), kWalFirstLsn));
    f->index->AttachShardWal(s, writers.back().get());
  }

  for (SetId sid = 0; sid < kInitialSets; ++sid) f->live.push_back(sid);
  SetId next_sid = static_cast<SetId>(kInitialSets);
  for (std::size_t i = 0; i < 14; ++i) {
    if (f->live.empty() || rng.NextDouble() < 0.6) {
      const ElementSet set = RandomSet(rng);
      EXPECT_TRUE(f->index->Insert(next_sid, set).ok());
      f->live.push_back(next_sid);
      ++next_sid;
    } else {
      const std::size_t pick = rng.Uniform(f->live.size());
      EXPECT_TRUE(f->index->Erase(f->live[pick]).ok());
      f->live.erase(f->live.begin() + pick);
    }
  }
  for (std::uint32_t s = 0; s < ShardedFixture::kShards; ++s) {
    f->index->AttachShardWal(s, nullptr);
    f->wals.push_back(wal_streams[s]->str());
    f->last_lsns.push_back(writers[s]->last_lsn());
  }
  f->final_digest = f->index->ContentDigest();
  return f;
}

Result<RecoveredShardedIndex> RecoverSharded(
    const ShardedFixture& f, const std::vector<std::string>& wals,
    const SnapshotLoadOptions& load_options = {}) {
  std::istringstream ckpt_in(f.checkpoint);
  std::vector<std::unique_ptr<std::istringstream>> wal_streams;
  std::vector<std::istream*> wal_ptrs;
  for (const std::string& bytes : wals) {
    wal_streams.push_back(std::make_unique<std::istringstream>(bytes));
    wal_ptrs.push_back(wal_streams.back().get());
  }
  return RecoverShardedIndex(ckpt_in, wal_ptrs, f.options, load_options);
}

TEST_F(CrashRecoveryTest, ShardedCheckpointAndWalsRecoverBitIdentically) {
  auto f = BuildShardedFixture();
  ASSERT_NE(f, nullptr);
  auto rec = RecoverSharded(*f, f->wals);
  ASSERT_TRUE(rec.ok()) << rec.status().ToString();
  EXPECT_EQ(rec->index->ContentDigest(), f->final_digest);
  EXPECT_EQ(rec->recovered_lsns, f->last_lsns);
  EXPECT_TRUE(rec->quarantined_shards.empty());
  EXPECT_EQ(rec->index->num_live_sets(), f->live.size());

  // The recovered sharded index answers exactly like the live one.
  auto live_answer = f->index->Query(ElementSet{1, 2, 3}, 0.0, 1.0);
  auto rec_answer = rec->index->Query(ElementSet{1, 2, 3}, 0.0, 1.0);
  ASSERT_TRUE(live_answer.ok() && rec_answer.ok());
  EXPECT_EQ(live_answer->sids, rec_answer->sids);
  EXPECT_FALSE(rec_answer->partial);
}

TEST_F(CrashRecoveryTest, NullShardWalsRecoverTheCheckpointState) {
  auto f = BuildShardedFixture();
  ASSERT_NE(f, nullptr);
  std::istringstream ckpt_in(f->checkpoint);
  std::vector<std::istream*> no_wals(ShardedFixture::kShards, nullptr);
  auto rec = RecoverShardedIndex(ckpt_in, no_wals, f->options);
  ASSERT_TRUE(rec.ok()) << rec.status().ToString();
  EXPECT_EQ(rec->index->ContentDigest(), f->checkpoint_digest);
  EXPECT_EQ(rec->recovered_lsns,
            std::vector<std::uint64_t>(ShardedFixture::kShards, 0));
}

TEST_F(CrashRecoveryTest, WalCountMismatchIsInvalidArgument) {
  auto f = BuildShardedFixture();
  ASSERT_NE(f, nullptr);
  std::istringstream ckpt_in(f->checkpoint);
  std::vector<std::istream*> too_few(ShardedFixture::kShards - 1, nullptr);
  auto rec = RecoverShardedIndex(ckpt_in, too_few, f->options);
  EXPECT_TRUE(rec.status().IsInvalidArgument()) << rec.status().ToString();
}

TEST_F(CrashRecoveryTest, TornShardWalTailTruncatesWithoutQuarantine) {
  auto f = BuildShardedFixture();
  ASSERT_NE(f, nullptr);
  // Tear the tail of the first shard that logged anything.
  std::uint32_t victim = ShardedFixture::kShards;
  for (std::uint32_t s = 0; s < ShardedFixture::kShards; ++s) {
    if (f->last_lsns[s] > 0) {
      victim = s;
      break;
    }
  }
  ASSERT_LT(victim, ShardedFixture::kShards);
  std::vector<std::string> wals = f->wals;
  wals[victim] = wals[victim].substr(0, wals[victim].size() - 3);

  auto rec = RecoverSharded(*f, wals);  // strict: a torn tail is clean
  ASSERT_TRUE(rec.ok()) << rec.status().ToString();
  EXPECT_TRUE(rec->quarantined_shards.empty());
  EXPECT_FALSE(rec->index->shard_degraded(victim));
  EXPECT_TRUE(rec->report.wal_tail_truncated);
  EXPECT_EQ(rec->recovered_lsns[victim], f->last_lsns[victim] - 1);
  for (std::uint32_t s = 0; s < ShardedFixture::kShards; ++s) {
    if (s != victim) EXPECT_EQ(rec->recovered_lsns[s], f->last_lsns[s]);
  }
}

TEST_F(CrashRecoveryTest, CorruptShardWalQuarantinesOnlyThatShard) {
  auto f = BuildShardedFixture();
  ASSERT_NE(f, nullptr);
  std::uint32_t victim = ShardedFixture::kShards;
  for (std::uint32_t s = 0; s < ShardedFixture::kShards; ++s) {
    if (f->last_lsns[s] > 0) {
      victim = s;
      break;
    }
  }
  ASSERT_LT(victim, ShardedFixture::kShards);
  std::vector<std::string> wals = f->wals;
  wals[victim][kWalHeaderBytes + 3] ^= 0x20;  // mid-log: first record frame

  // Strict recovery refuses the whole load...
  auto strict = RecoverSharded(*f, wals);
  ASSERT_FALSE(strict.ok());
  EXPECT_TRUE(strict.status().IsCorruption()) << strict.status().ToString();

  // ...salvage quarantines exactly the damaged shard.
  obs::Counter* quarantined = obs::MetricsRegistry::Default().GetCounter(
      "ssr_wal_shards_quarantined_total");
  const std::uint64_t quarantined_before = quarantined->value();
  SnapshotLoadOptions salvage;
  salvage.salvage = true;
  auto rec = RecoverSharded(*f, wals, salvage);
  ASSERT_TRUE(rec.ok()) << rec.status().ToString();
  ASSERT_EQ(rec->quarantined_shards,
            std::vector<std::uint32_t>{victim});
  EXPECT_EQ(rec->report.wal_shards_quarantined, 1u);
  EXPECT_EQ(quarantined->value() - quarantined_before, 1u);
  for (std::uint32_t s = 0; s < ShardedFixture::kShards; ++s) {
    EXPECT_EQ(rec->index->shard_degraded(s), s == victim) << "shard " << s;
    if (s != victim) EXPECT_EQ(rec->recovered_lsns[s], f->last_lsns[s]);
  }

  // The router keeps serving: answers are partial, tagged with the lost
  // shard, and every returned sid is a healthy shard's verified answer.
  auto live_answer = f->index->Query(ElementSet{1, 2, 3}, 0.0, 1.0);
  ASSERT_TRUE(live_answer.ok());
  auto rec_answer = rec->index->Query(ElementSet{1, 2, 3}, 0.0, 1.0);
  ASSERT_TRUE(rec_answer.ok()) << rec_answer.status().ToString();
  EXPECT_TRUE(rec_answer->partial);
  ASSERT_EQ(rec_answer->degraded_shards,
            std::vector<std::uint32_t>{victim});
  std::vector<SetId> expected;
  for (SetId sid : live_answer->sids) {
    if (rec->index->shard_map().ShardOf(sid) != victim) {
      expected.push_back(sid);
    }
  }
  EXPECT_EQ(rec_answer->sids, expected);
}

}  // namespace
}  // namespace ssr
