#include <sstream>

#include <gtest/gtest.h>

#include "storage/set_store.h"
#include "util/random.h"
#include "util/set_ops.h"

namespace ssr {
namespace {

ElementSet RandomSet(Rng& rng, std::size_t max_size) {
  ElementSet s;
  const std::size_t n = 1 + rng.Uniform(max_size);
  for (std::size_t i = 0; i < n; ++i) s.push_back(rng.Uniform(100000));
  NormalizeSet(s);
  if (s.empty()) s.push_back(1);
  return s;
}

TEST(HeapFilePersistenceTest, RoundTripsRecordsAndSpans) {
  HeapFile file;
  Rng rng(31337);
  std::vector<ElementSet> sets;
  for (SetId sid = 0; sid < 100; ++sid) {
    // Mix inline and spanned records.
    ElementSet s = RandomSet(rng, sid % 7 == 0 ? 2000 : 100);
    ASSERT_TRUE(file.Append(sid, s).ok());
    sets.push_back(std::move(s));
  }
  std::stringstream buffer;
  ASSERT_TRUE(file.SaveTo(buffer).ok());
  auto loaded = HeapFile::LoadFrom(buffer);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  EXPECT_EQ(loaded->num_pages(), file.num_pages());
  EXPECT_EQ(loaded->num_records(), file.num_records());
  // Every record readable and identical via a full scan.
  std::size_t visited = 0;
  loaded->Scan([&](SetId sid, const ElementSet& set, const RecordLocator&) {
    EXPECT_EQ(set, sets[sid]);
    ++visited;
    return true;
  });
  EXPECT_EQ(visited, 100u);
  // Appends continue to work after load.
  EXPECT_TRUE(loaded->Append(100, {1, 2, 3}).ok());
}

TEST(HeapFilePersistenceTest, RejectsGarbage) {
  std::stringstream buffer;
  buffer << "this is not a heap file";
  EXPECT_FALSE(HeapFile::LoadFrom(buffer).ok());
}

TEST(HeapFilePersistenceTest, RejectsTruncation) {
  HeapFile file;
  ASSERT_TRUE(file.Append(0, {1, 2, 3}).ok());
  std::stringstream buffer;
  ASSERT_TRUE(file.SaveTo(buffer).ok());
  const std::string full = buffer.str();
  std::stringstream truncated(full.substr(0, full.size() / 2));
  EXPECT_FALSE(HeapFile::LoadFrom(truncated).ok());
}

TEST(SetStorePersistenceTest, RoundTripsLiveAndDeleted) {
  SetStore store;
  Rng rng(4242);
  std::vector<ElementSet> sets;
  for (int i = 0; i < 200; ++i) {
    ElementSet s = RandomSet(rng, 150);
    ASSERT_TRUE(store.Add(s).ok());
    sets.push_back(std::move(s));
  }
  ASSERT_TRUE(store.Delete(13).ok());
  ASSERT_TRUE(store.Delete(77).ok());

  std::stringstream buffer;
  ASSERT_TRUE(store.SaveTo(buffer).ok());
  auto loaded = SetStore::Load(buffer);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();

  EXPECT_EQ(loaded->size(), 198u);
  EXPECT_FALSE(loaded->Contains(13));
  EXPECT_FALSE(loaded->Contains(77));
  for (SetId sid = 0; sid < 200; ++sid) {
    if (sid == 13 || sid == 77) {
      EXPECT_TRUE(loaded->Get(sid).status().IsNotFound());
    } else {
      EXPECT_EQ(loaded->Get(sid).value(), sets[sid]);
    }
  }
  EXPECT_NEAR(loaded->AvgSetPages(), store.AvgSetPages(), 1e-12);
  // New adds continue the sid sequence (no reuse of deleted sids).
  EXPECT_EQ(loaded->Add({5, 6, 7}).value(), 200u);
}

TEST(SetStorePersistenceTest, EmptyStoreRoundTrips) {
  SetStore store;
  std::stringstream buffer;
  ASSERT_TRUE(store.SaveTo(buffer).ok());
  auto loaded = SetStore::Load(buffer);
  ASSERT_TRUE(loaded.ok());
  EXPECT_EQ(loaded->size(), 0u);
  EXPECT_EQ(loaded->Add({1}).value(), 0u);
}

TEST(SetStorePersistenceTest, RejectsBadMagic) {
  std::stringstream buffer;
  buffer << "SSRWRONGMAGIC.................";
  EXPECT_FALSE(SetStore::Load(buffer).ok());
}

}  // namespace
}  // namespace ssr
