#include "storage/buffer_pool.h"

#include <gtest/gtest.h>

namespace ssr {
namespace {

TEST(BufferPoolTest, MissThenHit) {
  BufferPool pool(4);
  IoCostModel io;
  EXPECT_FALSE(pool.Access(1, false, io));
  EXPECT_TRUE(pool.Access(1, false, io));
  EXPECT_EQ(pool.stats().misses, 1u);
  EXPECT_EQ(pool.stats().hits, 1u);
  EXPECT_EQ(io.stats().random_reads, 1u);
}

TEST(BufferPoolTest, SequentialFlagRoutesCharge) {
  BufferPool pool(4);
  IoCostModel io;
  pool.Access(1, true, io);
  pool.Access(2, false, io);
  EXPECT_EQ(io.stats().sequential_reads, 1u);
  EXPECT_EQ(io.stats().random_reads, 1u);
}

TEST(BufferPoolTest, LruEviction) {
  BufferPool pool(2);
  IoCostModel io;
  pool.Access(1, false, io);
  pool.Access(2, false, io);
  pool.Access(3, false, io);  // evicts 1
  EXPECT_EQ(pool.stats().evictions, 1u);
  EXPECT_FALSE(pool.Access(1, false, io));  // 1 is gone -> miss, evicts 2
  EXPECT_TRUE(pool.Access(3, false, io));   // 3 still resident
}

TEST(BufferPoolTest, AccessRefreshesRecency) {
  BufferPool pool(2);
  IoCostModel io;
  pool.Access(1, false, io);
  pool.Access(2, false, io);
  pool.Access(1, false, io);  // 1 becomes MRU
  pool.Access(3, false, io);  // evicts 2, not 1
  EXPECT_TRUE(pool.Access(1, false, io));
  EXPECT_FALSE(pool.Access(2, false, io));
}

TEST(BufferPoolTest, ClearDropsResidency) {
  BufferPool pool(4);
  IoCostModel io;
  pool.Access(1, false, io);
  pool.Clear();
  EXPECT_EQ(pool.resident(), 0u);
  EXPECT_FALSE(pool.Access(1, false, io));
}

TEST(BufferPoolTest, HitRate) {
  BufferPool pool(4);
  IoCostModel io;
  pool.Access(1, false, io);
  pool.Access(1, false, io);
  pool.Access(1, false, io);
  pool.Access(1, false, io);
  EXPECT_DOUBLE_EQ(pool.stats().hit_rate(), 0.75);
  pool.ResetStats();
  EXPECT_DOUBLE_EQ(pool.stats().hit_rate(), 0.0);
}

TEST(BufferPoolTest, CapacityFloorOne) {
  BufferPool pool(0);
  EXPECT_EQ(pool.capacity(), 1u);
  IoCostModel io;
  pool.Access(1, false, io);
  pool.Access(2, false, io);
  EXPECT_EQ(pool.resident(), 1u);
}

}  // namespace
}  // namespace ssr
