#include "storage/io_cost_model.h"

#include <gtest/gtest.h>

namespace ssr {
namespace {

TEST(IoCostModelTest, DefaultsUsePaperRatio) {
  IoCostParams params;
  EXPECT_DOUBLE_EQ(params.random_multiplier, 8.0);
  EXPECT_DOUBLE_EQ(params.random_page_micros(),
                   8.0 * params.seq_page_micros);
}

TEST(IoCostModelTest, CountsAccumulate) {
  IoCostModel io;
  io.ChargeSequentialRead(3);
  io.ChargeRandomRead();
  io.ChargeRandomRead(2);
  io.ChargeWrite(5);
  EXPECT_EQ(io.stats().sequential_reads, 3u);
  EXPECT_EQ(io.stats().random_reads, 3u);
  EXPECT_EQ(io.stats().page_writes, 5u);
}

TEST(IoCostModelTest, SimulatedTimeFormula) {
  IoCostParams params;
  params.seq_page_micros = 100.0;
  params.random_multiplier = 8.0;
  IoCostModel io(params);
  io.ChargeSequentialRead(10);  // 1000 us
  io.ChargeRandomRead(2);       // 1600 us
  io.ChargeWrite(1);            // 100 us
  EXPECT_DOUBLE_EQ(io.SimulatedMicros(), 2700.0);
}

TEST(IoCostModelTest, StatsDeltaArithmetic) {
  IoCostModel io;
  io.ChargeRandomRead(5);
  const IoStats snapshot = io.stats();
  io.ChargeRandomRead(3);
  io.ChargeSequentialRead(2);
  const IoStats delta = io.stats() - snapshot;
  EXPECT_EQ(delta.random_reads, 3u);
  EXPECT_EQ(delta.sequential_reads, 2u);
}

TEST(IoCostModelTest, StatsPlusEquals) {
  IoStats a{1, 2, 3}, b{10, 20, 30};
  a += b;
  EXPECT_EQ(a.sequential_reads, 11u);
  EXPECT_EQ(a.random_reads, 22u);
  EXPECT_EQ(a.page_writes, 33u);
}

TEST(IoCostModelTest, ResetZeroes) {
  IoCostModel io;
  io.ChargeRandomRead(5);
  io.Reset();
  EXPECT_EQ(io.stats().random_reads, 0u);
  EXPECT_DOUBLE_EQ(io.SimulatedMicros(), 0.0);
}

TEST(IoCostModelTest, RandomEightTimesSequentialShape) {
  // The crossover analysis hinges on random/sequential = rtn; charging the
  // same page count must differ by exactly that factor.
  IoCostModel io;
  io.ChargeSequentialRead(100);
  const double seq = io.SimulatedMicros();
  io.Reset();
  io.ChargeRandomRead(100);
  EXPECT_DOUBLE_EQ(io.SimulatedMicros(), 8.0 * seq);
}

}  // namespace
}  // namespace ssr
