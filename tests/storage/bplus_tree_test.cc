#include "storage/bplus_tree.h"

#include <algorithm>
#include <set>
#include <vector>

#include <gtest/gtest.h>

#include "util/random.h"

namespace ssr {
namespace {

RecordLocator Loc(PageId p, std::uint16_t slot = 0) {
  return RecordLocator{p, slot};
}

TEST(BPlusTreeTest, EmptyTree) {
  BPlusTree tree(4);
  EXPECT_TRUE(tree.empty());
  EXPECT_EQ(tree.size(), 0u);
  EXPECT_EQ(tree.height(), 1u);
  EXPECT_TRUE(tree.Find(1).status().IsNotFound());
  EXPECT_TRUE(tree.Validate().ok());
}

TEST(BPlusTreeTest, InsertAndFind) {
  BPlusTree tree(4);
  ASSERT_TRUE(tree.Insert(5, Loc(50)).ok());
  ASSERT_TRUE(tree.Insert(3, Loc(30)).ok());
  ASSERT_TRUE(tree.Insert(8, Loc(80)).ok());
  EXPECT_EQ(tree.size(), 3u);
  EXPECT_EQ(tree.Find(5).value().page, 50u);
  EXPECT_EQ(tree.Find(3).value().page, 30u);
  EXPECT_EQ(tree.Find(8).value().page, 80u);
  EXPECT_TRUE(tree.Find(4).status().IsNotFound());
  EXPECT_TRUE(tree.Validate().ok());
}

TEST(BPlusTreeTest, DuplicateInsertRejected) {
  BPlusTree tree(4);
  ASSERT_TRUE(tree.Insert(1, Loc(10)).ok());
  EXPECT_TRUE(tree.Insert(1, Loc(11)).IsAlreadyExists());
  EXPECT_EQ(tree.Find(1).value().page, 10u);
}

TEST(BPlusTreeTest, UpsertOverwrites) {
  BPlusTree tree(4);
  tree.Upsert(1, Loc(10));
  tree.Upsert(1, Loc(20));
  EXPECT_EQ(tree.size(), 1u);
  EXPECT_EQ(tree.Find(1).value().page, 20u);
}

TEST(BPlusTreeTest, SplitsGrowHeight) {
  BPlusTree tree(3);  // tiny fanout forces splits quickly
  for (SetId k = 0; k < 50; ++k) {
    ASSERT_TRUE(tree.Insert(k, Loc(k)).ok()) << k;
    ASSERT_TRUE(tree.Validate().ok()) << "after insert " << k << ": "
                                      << tree.Validate().ToString();
  }
  EXPECT_GT(tree.height(), 2u);
  for (SetId k = 0; k < 50; ++k) {
    EXPECT_EQ(tree.Find(k).value().page, k);
  }
}

TEST(BPlusTreeTest, ReverseInsertionOrder) {
  BPlusTree tree(3);
  for (SetId k = 100; k-- > 0;) {
    ASSERT_TRUE(tree.Insert(k, Loc(k)).ok());
  }
  ASSERT_TRUE(tree.Validate().ok());
  for (SetId k = 0; k < 100; ++k) EXPECT_TRUE(tree.Find(k).ok());
}

TEST(BPlusTreeTest, EraseFromLeafNoUnderflow) {
  BPlusTree tree(6);
  for (SetId k = 0; k < 6; ++k) ASSERT_TRUE(tree.Insert(k, Loc(k)).ok());
  ASSERT_TRUE(tree.Erase(3).ok());
  EXPECT_TRUE(tree.Find(3).status().IsNotFound());
  EXPECT_EQ(tree.size(), 5u);
  EXPECT_TRUE(tree.Validate().ok());
}

TEST(BPlusTreeTest, EraseMissingKey) {
  BPlusTree tree(4);
  ASSERT_TRUE(tree.Insert(1, Loc(1)).ok());
  EXPECT_TRUE(tree.Erase(2).IsNotFound());
}

TEST(BPlusTreeTest, EraseEverythingForwards) {
  BPlusTree tree(3);
  for (SetId k = 0; k < 80; ++k) ASSERT_TRUE(tree.Insert(k, Loc(k)).ok());
  for (SetId k = 0; k < 80; ++k) {
    ASSERT_TRUE(tree.Erase(k).ok()) << k;
    ASSERT_TRUE(tree.Validate().ok())
        << "after erase " << k << ": " << tree.Validate().ToString();
  }
  EXPECT_TRUE(tree.empty());
  EXPECT_EQ(tree.height(), 1u);
}

TEST(BPlusTreeTest, EraseEverythingBackwards) {
  BPlusTree tree(3);
  for (SetId k = 0; k < 80; ++k) ASSERT_TRUE(tree.Insert(k, Loc(k)).ok());
  for (SetId k = 80; k-- > 0;) {
    ASSERT_TRUE(tree.Erase(k).ok()) << k;
    ASSERT_TRUE(tree.Validate().ok()) << "after erase " << k;
  }
  EXPECT_TRUE(tree.empty());
}

TEST(BPlusTreeTest, ScanRangeInclusive) {
  BPlusTree tree(4);
  for (SetId k = 0; k < 30; k += 3) ASSERT_TRUE(tree.Insert(k, Loc(k)).ok());
  std::vector<SetId> seen;
  tree.ScanRange(6, 18, [&](SetId k, const RecordLocator& v) {
    EXPECT_EQ(v.page, k);
    seen.push_back(k);
    return true;
  });
  EXPECT_EQ(seen, (std::vector<SetId>{6, 9, 12, 15, 18}));
}

TEST(BPlusTreeTest, ScanRangeEarlyStop) {
  BPlusTree tree(4);
  for (SetId k = 0; k < 20; ++k) ASSERT_TRUE(tree.Insert(k, Loc(k)).ok());
  int count = 0;
  tree.ScanRange(0, 19, [&](SetId, const RecordLocator&) {
    return ++count < 5;
  });
  EXPECT_EQ(count, 5);
}

TEST(BPlusTreeTest, ScanFullRange) {
  BPlusTree tree(3);
  std::set<SetId> keys;
  Rng rng(55);
  while (keys.size() < 60) keys.insert(static_cast<SetId>(rng.Uniform(1000)));
  for (SetId k : keys) ASSERT_TRUE(tree.Insert(k, Loc(k)).ok());
  std::vector<SetId> seen;
  tree.ScanRange(0, 1000, [&](SetId k, const RecordLocator&) {
    seen.push_back(k);
    return true;
  });
  EXPECT_TRUE(std::is_sorted(seen.begin(), seen.end()));
  EXPECT_EQ(seen.size(), keys.size());
}

TEST(BPlusTreeTest, FindCountsNodesVisited) {
  BPlusTree tree(3);
  for (SetId k = 0; k < 200; ++k) ASSERT_TRUE(tree.Insert(k, Loc(k)).ok());
  std::size_t nodes = 0;
  ASSERT_TRUE(tree.Find(137, &nodes).ok());
  EXPECT_EQ(nodes, tree.height());
}

TEST(BPlusTreeTest, MoveSemantics) {
  BPlusTree a(4);
  ASSERT_TRUE(a.Insert(1, Loc(10)).ok());
  BPlusTree b = std::move(a);
  EXPECT_EQ(b.Find(1).value().page, 10u);
  EXPECT_TRUE(a.empty());  // NOLINT(bugprone-use-after-move): spec'd reset
  a = std::move(b);
  EXPECT_EQ(a.Find(1).value().page, 10u);
}

// Randomized torture with a reference std::set, validating invariants after
// every mutation — parameterized over fanout so every split/borrow/merge
// path is exercised at several node widths.
class BPlusTreeFuzz : public ::testing::TestWithParam<std::size_t> {};

TEST_P(BPlusTreeFuzz, RandomInsertEraseMatchesReference) {
  const std::size_t max_keys = GetParam();
  BPlusTree tree(max_keys);
  std::set<SetId> reference;
  Rng rng(1000 + max_keys);
  for (int op = 0; op < 3000; ++op) {
    const SetId key = static_cast<SetId>(rng.Uniform(500));
    if (rng.Bernoulli(0.6)) {
      const bool inserted = reference.insert(key).second;
      const Status s = tree.Insert(key, Loc(key));
      EXPECT_EQ(s.ok(), inserted) << "key " << key;
    } else {
      const bool erased = reference.erase(key) > 0;
      const Status s = tree.Erase(key);
      EXPECT_EQ(s.ok(), erased) << "key " << key;
    }
    if (op % 50 == 0) {
      ASSERT_TRUE(tree.Validate().ok())
          << "op " << op << ": " << tree.Validate().ToString();
      ASSERT_EQ(tree.size(), reference.size());
    }
  }
  ASSERT_TRUE(tree.Validate().ok()) << tree.Validate().ToString();
  // Final state must match the reference exactly.
  EXPECT_EQ(tree.size(), reference.size());
  for (SetId k : reference) {
    EXPECT_TRUE(tree.Find(k).ok()) << k;
  }
  std::vector<SetId> scanned;
  tree.ScanRange(0, 500, [&](SetId k, const RecordLocator&) {
    scanned.push_back(k);
    return true;
  });
  std::vector<SetId> expected(reference.begin(), reference.end());
  EXPECT_EQ(scanned, expected);
}

INSTANTIATE_TEST_SUITE_P(Fanouts, BPlusTreeFuzz,
                         ::testing::Values(3u, 4u, 5u, 8u, 16u, 64u));

}  // namespace
}  // namespace ssr
