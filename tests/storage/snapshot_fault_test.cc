// Fault matrix for the v2 snapshot format: truncation at every prefix,
// a bit flip at every byte, torn/failed writes via the fault injector,
// version skew, and the salvage paths that quarantine damaged heap pages.

#include <cstring>
#include <sstream>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "fault/fault_injector.h"
#include "obs/metrics.h"
#include "storage/heap_file.h"
#include "storage/page.h"
#include "storage/set_store.h"
#include "storage/snapshot.h"
#include "util/random.h"
#include "util/set_ops.h"

namespace ssr {
namespace {

// Serialized footprint of the snapshot footer: WriteString("SSRFOOT")
// (u64 length + 7 bytes) + section count u32 + crc-of-crcs u32.
constexpr std::size_t kFooterBytes = 8 + 7 + 4 + 4;
// One entry in the heap "pages" section: u32 page CRC + the page image.
constexpr std::size_t kPageEntryBytes = 4 + kPageSize;

class SnapshotFaultTest : public ::testing::Test {
 protected:
  void SetUp() override { fault::FaultInjector::Default().Reset(); }
  void TearDown() override { fault::FaultInjector::Default().Reset(); }
};

// Tests that rely on faults actually firing skip when the hooks are
// compiled out (-DSSR_FAULT_INJECTION=OFF); byte-level corruption and
// salvage tests run in every configuration.
#ifdef SSR_NO_FAULT_INJECTION
#define SKIP_WITHOUT_INJECTION() \
  GTEST_SKIP() << "built with SSR_NO_FAULT_INJECTION"
#else
#define SKIP_WITHOUT_INJECTION() (void)0
#endif

ElementSet SmallSet(Rng& rng) {
  ElementSet s;
  for (int i = 0; i < 10; ++i) s.push_back(rng.Uniform(100000));
  NormalizeSet(s);
  if (s.empty()) s.push_back(1);
  return s;
}

// A heap file with enough small records to fill several slotted pages.
HeapFile BuildHeapFile(std::vector<ElementSet>* sets) {
  HeapFile file;
  Rng rng(271828);
  for (SetId sid = 0; sid < 200; ++sid) {
    ElementSet s = SmallSet(rng);
    EXPECT_TRUE(file.Append(sid, s).ok());
    if (sets != nullptr) sets->push_back(std::move(s));
  }
  EXPECT_GE(file.num_pages(), 3u);
  return file;
}

std::string Serialize(const HeapFile& file) {
  std::stringstream buffer;
  EXPECT_TRUE(file.SaveTo(buffer).ok());
  return buffer.str();
}

// Byte offset of page `i`'s image inside a serialized heap file (or of the
// trailing heap snapshot of a serialized SetStore): the "pages" section
// payload is the last section before the footer.
std::size_t PageDataOffset(const std::string& bytes, std::size_t num_pages,
                           std::size_t i) {
  const std::size_t payload_start =
      bytes.size() - kFooterBytes - num_pages * kPageEntryBytes;
  return payload_start + i * kPageEntryBytes + 4;
}

Status LoadHeapStatus(const std::string& bytes,
                      const SnapshotLoadOptions& options = {}) {
  std::stringstream in(bytes);
  return HeapFile::LoadFrom(in, options).status();
}

// ---------------------------------------------------------------------------
// Framing-level matrix: every truncation point and every flipped byte must
// surface as a typed integrity error, never as a clean load or a crash.
// ---------------------------------------------------------------------------

TEST_F(SnapshotFaultTest, FramingRoundTrip) {
  std::stringstream buffer;
  SnapshotWriter writer(buffer, "SSRTEST", 2);
  writer.BeginSection("alpha").WriteU64(42);
  ASSERT_TRUE(writer.EndSection().ok());
  BinaryWriter& w = writer.BeginSection("beta");
  w.WriteString("payload");
  ASSERT_TRUE(writer.EndSection().ok());
  ASSERT_TRUE(writer.Finish().ok());

  SnapshotReader reader(buffer);
  std::uint32_t version = 0;
  ASSERT_TRUE(reader.ReadHeader("SSRTEST", &version).ok());
  EXPECT_EQ(version, 2u);
  std::string alpha, beta;
  ASSERT_TRUE(reader.ReadSection("alpha", &alpha).ok());
  ASSERT_TRUE(reader.ReadSection("beta", &beta).ok());
  EXPECT_EQ(alpha.size(), 8u);
  ASSERT_TRUE(reader.VerifyFooter().ok());
}

TEST_F(SnapshotFaultTest, MisorderedSectionIsCorruption) {
  std::stringstream buffer;
  SnapshotWriter writer(buffer, "SSRTEST", 2);
  writer.BeginSection("alpha").WriteU64(1);
  ASSERT_TRUE(writer.EndSection().ok());
  ASSERT_TRUE(writer.Finish().ok());
  SnapshotReader reader(buffer);
  std::uint32_t version = 0;
  ASSERT_TRUE(reader.ReadHeader("SSRTEST", &version).ok());
  std::string payload;
  EXPECT_TRUE(reader.ReadSection("beta", &payload).IsCorruption());
}

TEST_F(SnapshotFaultTest, TruncationAtEveryPrefixIsTypedError) {
  HeapFile file;
  ASSERT_TRUE(file.Append(0, {1, 2, 3}).ok());
  const std::string full = Serialize(file);
  for (std::size_t len = 0; len < full.size(); ++len) {
    const Status s = LoadHeapStatus(full.substr(0, len));
    ASSERT_FALSE(s.ok()) << "prefix " << len << " of " << full.size();
    EXPECT_TRUE(s.IsDataLoss() || s.IsCorruption())
        << "prefix " << len << ": " << s.ToString();
  }
}

TEST_F(SnapshotFaultTest, BitFlipAtEveryByteIsDetected) {
  HeapFile file;
  ASSERT_TRUE(file.Append(0, {1, 2, 3}).ok());
  ASSERT_TRUE(file.Append(1, {4, 5}).ok());
  const std::string full = Serialize(file);
  for (std::size_t i = 0; i < full.size(); ++i) {
    std::string flipped = full;
    flipped[i] = static_cast<char>(flipped[i] ^ 0x10);
    const Status s = LoadHeapStatus(flipped);
    ASSERT_FALSE(s.ok()) << "flip at byte " << i;
    // Version-field flips read as skew; everything else is an integrity
    // failure.
    EXPECT_TRUE(s.IsDataLoss() || s.IsCorruption() || s.IsNotSupported())
        << "flip at byte " << i << ": " << s.ToString();
  }
}

TEST_F(SnapshotFaultTest, VersionSkewIsNotSupported) {
  std::stringstream heap_buf;
  SnapshotWriter heap_writer(heap_buf, "SSRHEAP", 99);
  ASSERT_TRUE(heap_writer.Finish().ok());
  EXPECT_TRUE(LoadHeapStatus(heap_buf.str()).IsNotSupported());

  std::stringstream store_buf;
  SnapshotWriter store_writer(store_buf, "SSRSTORE", 99);
  ASSERT_TRUE(store_writer.Finish().ok());
  EXPECT_TRUE(SetStore::Load(store_buf).status().IsNotSupported());
}

// ---------------------------------------------------------------------------
// Injected write faults: saves fail loudly, and what bytes did land never
// load as a clean snapshot.
// ---------------------------------------------------------------------------

TEST_F(SnapshotFaultTest, WriteErrorFailsSave) {
  SKIP_WITHOUT_INJECTION();
  auto& fi = fault::FaultInjector::Default();
  fi.Enable(1);
  fi.Arm("snapshot/write", fault::FaultKind::kWriteError,
         fault::FaultSchedule::Always());
  HeapFile file;
  ASSERT_TRUE(file.Append(0, {1, 2, 3}).ok());
  std::stringstream buffer;
  EXPECT_FALSE(file.SaveTo(buffer).ok());
}

TEST_F(SnapshotFaultTest, TornWriteMidSaveIsDetectedOnLoad) {
  SKIP_WITHOUT_INJECTION();
  HeapFile file;
  ASSERT_TRUE(file.Append(0, {1, 2, 3}).ok());
  auto& fi = fault::FaultInjector::Default();
  // Tear each of the first writes in turn; whatever prefix survives must
  // never load cleanly.
  for (std::uint64_t after = 0; after < 8; ++after) {
    fi.Reset();
    fi.Enable(99);
    fi.Arm("snapshot/write", fault::FaultKind::kTornWrite,
           fault::FaultSchedule::Once(after));
    std::stringstream buffer;
    EXPECT_FALSE(file.SaveTo(buffer).ok()) << "torn after " << after;
    fi.Reset();
    const Status s = LoadHeapStatus(buffer.str());
    ASSERT_FALSE(s.ok()) << "torn after " << after;
    EXPECT_TRUE(s.IsDataLoss() || s.IsCorruption())
        << "torn after " << after << ": " << s.ToString();
  }
}

TEST_F(SnapshotFaultTest, BitFlipDuringSaveIsDetectedOnLoad) {
  SKIP_WITHOUT_INJECTION();
  HeapFile file;
  ASSERT_TRUE(file.Append(0, {7, 8, 9}).ok());
  auto& fi = fault::FaultInjector::Default();
  for (std::uint64_t after = 0; after < 8; ++after) {
    fi.Reset();
    fi.Enable(4242 + after);
    fi.Arm("snapshot/write", fault::FaultKind::kBitFlip,
           fault::FaultSchedule::Once(after));
    std::stringstream buffer;
    ASSERT_TRUE(file.SaveTo(buffer).ok());  // flips corrupt, don't fail
    fi.Reset();
    EXPECT_FALSE(LoadHeapStatus(buffer.str()).ok()) << "flip after " << after;
  }
}

TEST_F(SnapshotFaultTest, InjectedReadFaultSurfacesUnavailable) {
  SKIP_WITHOUT_INJECTION();
  HeapFile file;
  ASSERT_TRUE(file.Append(0, {1, 2, 3}).ok());
  const std::string full = Serialize(file);
  auto& fi = fault::FaultInjector::Default();
  fi.Enable(1);
  fi.Arm("snapshot/read", fault::FaultKind::kReadError,
         fault::FaultSchedule::Once(/*after_hits=*/3));
  EXPECT_TRUE(LoadHeapStatus(full).IsUnavailable());
}

// ---------------------------------------------------------------------------
// Salvage: corrupt pages are quarantined, surviving records keep working.
// ---------------------------------------------------------------------------

TEST_F(SnapshotFaultTest, StrictLoadRejectsCorruptPage) {
  HeapFile file = BuildHeapFile(nullptr);
  std::string bytes = Serialize(file);
  bytes[PageDataOffset(bytes, file.num_pages(), 0) + 100] ^= 0x01;
  EXPECT_TRUE(LoadHeapStatus(bytes).IsCorruption());
}

TEST_F(SnapshotFaultTest, SalvageQuarantinesCorruptPage) {
  std::vector<ElementSet> sets;
  HeapFile file = BuildHeapFile(&sets);
  std::string bytes = Serialize(file);
  bytes[PageDataOffset(bytes, file.num_pages(), 0) + 100] ^= 0x01;

  RecoveryReport report;
  SnapshotLoadOptions options;
  options.salvage = true;
  options.report = &report;
  std::stringstream in(bytes);
  auto loaded = HeapFile::LoadFrom(in, options);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();

  EXPECT_TRUE(loaded->is_quarantined(0));
  EXPECT_EQ(loaded->num_quarantined_pages(), 1u);
  EXPECT_TRUE(report.salvaged);
  EXPECT_EQ(report.pages_total, file.num_pages());
  EXPECT_EQ(report.pages_quarantined, 1u);
  EXPECT_EQ(report.records_total, 200u);

  // Count ground truth: records whose locator touches page 0.
  std::size_t expected_lost = 0;
  file.Scan([&](SetId, const ElementSet&, const RecordLocator& loc) {
    if (loc.page == 0) ++expected_lost;
    return true;
  });
  ASSERT_GT(expected_lost, 0u);
  EXPECT_EQ(report.records_quarantined, expected_lost);

  // Reads on the quarantined page are typed DataLoss; survivors intact.
  std::size_t visited = 0;
  loaded->Scan([&](SetId sid, const ElementSet& set, const RecordLocator&) {
    EXPECT_EQ(set, sets[sid]);
    ++visited;
    return true;
  });
  EXPECT_EQ(visited, 200u - expected_lost);

  file.Scan([&](SetId, const ElementSet&, const RecordLocator& loc) {
    const Status s = loaded->Read(loc, nullptr, nullptr).status();
    if (loc.page == 0) {
      EXPECT_TRUE(s.IsDataLoss()) << s.ToString();
    } else {
      EXPECT_TRUE(s.ok()) << s.ToString();
    }
    return true;
  });

  // Appends after salvage land on fresh/undamaged pages and stay readable.
  auto appended = loaded->Append(200, {11, 22, 33});
  ASSERT_TRUE(appended.ok());
  EXPECT_NE(appended->page, 0u);
  EXPECT_EQ(loaded->Read(*appended, nullptr, nullptr).value(),
            (ElementSet{11, 22, 33}));
}

TEST_F(SnapshotFaultTest, SalvageRecoversFromTruncatedPagesSection) {
  HeapFile file = BuildHeapFile(nullptr);
  const std::string full = Serialize(file);
  // Keep only the first page entry of the pages section (footer gone too).
  const std::size_t payload_start =
      full.size() - kFooterBytes - file.num_pages() * kPageEntryBytes;
  const std::string truncated = full.substr(0, payload_start + kPageEntryBytes);

  EXPECT_TRUE(LoadHeapStatus(truncated).IsDataLoss());

  RecoveryReport report;
  SnapshotLoadOptions options;
  options.salvage = true;
  options.report = &report;
  std::stringstream in(truncated);
  auto loaded = HeapFile::LoadFrom(in, options);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  EXPECT_EQ(loaded->num_pages(), file.num_pages());
  EXPECT_EQ(report.pages_quarantined, file.num_pages() - 1);
  EXPECT_FALSE(loaded->is_quarantined(0));
  EXPECT_TRUE(loaded->is_quarantined(1));
}

TEST_F(SnapshotFaultTest, SalvageToleratesTornFooter) {
  HeapFile file = BuildHeapFile(nullptr);
  const std::string full = Serialize(file);
  const std::string torn = full.substr(0, full.size() - 2);

  EXPECT_TRUE(LoadHeapStatus(torn).IsDataLoss());

  RecoveryReport report;
  SnapshotLoadOptions options;
  options.salvage = true;
  options.report = &report;
  std::stringstream in(torn);
  auto loaded = HeapFile::LoadFrom(in, options);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  // All page payloads were intact; only the footer was lost.
  EXPECT_EQ(loaded->num_quarantined_pages(), 0u);
  EXPECT_TRUE(report.salvaged);
}

// ---------------------------------------------------------------------------
// SetStore-level salvage: lost records drop out of the live index, the
// survivors serve, and the recovery metrics record what happened.
// ---------------------------------------------------------------------------

TEST_F(SnapshotFaultTest, SetStoreSalvageServesSurvivors) {
  SetStore store;
  Rng rng(161803);
  std::vector<ElementSet> sets;
  for (int i = 0; i < 200; ++i) {
    ElementSet s = SmallSet(rng);
    ASSERT_TRUE(store.Add(s).ok());
    sets.push_back(std::move(s));
  }
  std::stringstream buffer;
  ASSERT_TRUE(store.SaveTo(buffer).ok());
  std::string bytes = buffer.str();
  // The heap snapshot trails the store snapshot, so page offsets are
  // computed from the end of the combined byte stream.
  bytes[PageDataOffset(bytes, store.num_pages(), 1) + 50] ^= 0x04;

  {
    std::stringstream in(bytes);
    EXPECT_TRUE(SetStore::Load(in).status().IsCorruption());
  }

  RecoveryReport report;
  SnapshotLoadOptions load_options;
  load_options.salvage = true;
  load_options.report = &report;
  std::stringstream in(bytes);
  auto loaded = SetStore::Load(in, SetStoreOptions(), load_options);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();

  EXPECT_TRUE(report.salvaged);
  EXPECT_EQ(report.pages_quarantined, 1u);
  ASSERT_GT(report.records_quarantined, 0u);
  EXPECT_EQ(loaded->size(), 200u - report.records_quarantined);

  std::size_t lost = 0;
  for (SetId sid = 0; sid < 200; ++sid) {
    if (loaded->Contains(sid)) {
      EXPECT_EQ(loaded->Get(sid).value(), sets[sid]);
    } else {
      ++lost;
      EXPECT_FALSE(loaded->Get(sid).ok());
    }
  }
  EXPECT_EQ(lost, report.records_quarantined);

  // Salvage outcomes are visible in the store's metric scope.
  auto& registry = obs::MetricsRegistry::Default();
  const std::string& scope = loaded->metrics_scope();
  EXPECT_EQ(registry
                .GetCounter("ssr_recovery_salvage_loads_total", scope)
                ->value(),
            1u);
  EXPECT_EQ(registry
                .GetCounter("ssr_recovery_pages_quarantined_total", scope)
                ->value(),
            1u);
  EXPECT_EQ(registry
                .GetCounter("ssr_recovery_records_quarantined_total", scope)
                ->value(),
            report.records_quarantined);

  // The salvaged store still accepts new sets.
  EXPECT_EQ(loaded->Add({5, 6, 7}).value(), 200u);
}

}  // namespace
}  // namespace ssr
