#include "storage/set_store.h"

#include <gtest/gtest.h>

#include "util/random.h"
#include "util/set_ops.h"

namespace ssr {
namespace {

ElementSet MakeSet(std::size_t n, ElementId base = 0) {
  ElementSet s;
  for (std::size_t i = 0; i < n; ++i) s.push_back(base + i);
  return s;
}

TEST(SetStoreTest, AddAssignsDenseSids) {
  SetStore store;
  EXPECT_EQ(store.Add(MakeSet(3)).value(), 0u);
  EXPECT_EQ(store.Add(MakeSet(4)).value(), 1u);
  EXPECT_EQ(store.Add(MakeSet(5)).value(), 2u);
  EXPECT_EQ(store.size(), 3u);
}

TEST(SetStoreTest, RejectsUnnormalizedSets) {
  SetStore store;
  EXPECT_TRUE(store.Add({3, 1, 2}).status().IsInvalidArgument());
  EXPECT_TRUE(store.Add({1, 1}).status().IsInvalidArgument());
}

TEST(SetStoreTest, GetRoundTrips) {
  SetStore store;
  const ElementSet set = MakeSet(10, 42);
  const SetId sid = store.Add(set).value();
  auto got = store.Get(sid);
  ASSERT_TRUE(got.ok());
  EXPECT_EQ(got.value(), set);
}

TEST(SetStoreTest, GetUnknownSidFails) {
  SetStore store;
  EXPECT_TRUE(store.Get(99).status().IsNotFound());
}

TEST(SetStoreTest, DeleteUnlinksButKeepsOthers) {
  SetStore store;
  const SetId a = store.Add(MakeSet(3, 0)).value();
  const SetId b = store.Add(MakeSet(3, 10)).value();
  ASSERT_TRUE(store.Delete(a).ok());
  EXPECT_FALSE(store.Contains(a));
  EXPECT_TRUE(store.Contains(b));
  EXPECT_TRUE(store.Get(a).status().IsNotFound());
  EXPECT_TRUE(store.Get(b).ok());
  EXPECT_EQ(store.size(), 1u);
  EXPECT_TRUE(store.Delete(a).IsNotFound());
}

TEST(SetStoreTest, ScanSkipsDeleted) {
  SetStore store;
  for (int i = 0; i < 10; ++i) {
    ASSERT_TRUE(store.Add(MakeSet(3, i * 10)).ok());
  }
  ASSERT_TRUE(store.Delete(4).ok());
  ASSERT_TRUE(store.Delete(7).ok());
  std::vector<SetId> seen;
  store.ScanAll([&](SetId sid, const ElementSet&) {
    seen.push_back(sid);
    return true;
  });
  EXPECT_EQ(seen.size(), 8u);
  for (SetId sid : seen) {
    EXPECT_NE(sid, 4u);
    EXPECT_NE(sid, 7u);
  }
}

TEST(SetStoreTest, ScanChargesSequentialReads) {
  SetStore store;
  for (int i = 0; i < 500; ++i) {
    ASSERT_TRUE(store.Add(MakeSet(50, i * 100)).ok());
  }
  store.ResetIoAccounting();
  store.ScanAll([](SetId, const ElementSet&) { return true; });
  EXPECT_EQ(store.io().stats().sequential_reads, store.num_pages());
  EXPECT_EQ(store.io().stats().random_reads, 0u);
}

TEST(SetStoreTest, GetChargesRandomReadsWhenCold) {
  SetStoreOptions options;
  options.buffer_pool_pages = 1;  // effectively no caching across pages
  SetStore store(options);
  std::vector<SetId> sids;
  for (int i = 0; i < 300; ++i) {
    sids.push_back(store.Add(MakeSet(60, i * 100)).value());
  }
  store.ResetIoAccounting();
  ASSERT_TRUE(store.Get(sids[0]).ok());
  ASSERT_TRUE(store.Get(sids[250]).ok());
  EXPECT_GE(store.io().stats().random_reads, 2u);
  EXPECT_EQ(store.io().stats().sequential_reads, 0u);
}

TEST(SetStoreTest, BufferPoolAbsorbsRepeatedGets) {
  SetStoreOptions options;
  options.buffer_pool_pages = 64;
  SetStore store(options);
  const SetId sid = store.Add(MakeSet(10)).value();
  store.ResetIoAccounting();
  for (int i = 0; i < 10; ++i) ASSERT_TRUE(store.Get(sid).ok());
  EXPECT_EQ(store.io().stats().random_reads, 1u);  // only the first is cold
}

TEST(SetStoreTest, SpannedSetsRoundTripThroughStore) {
  SetStore store;
  const ElementSet big = MakeSet(3000);
  const SetId sid = store.Add(big).value();
  auto got = store.Get(sid);
  ASSERT_TRUE(got.ok());
  EXPECT_EQ(got.value(), big);
}

TEST(SetStoreTest, AvgSetPagesReflectsSizes) {
  SetStore store;
  for (int i = 0; i < 10; ++i) {
    ASSERT_TRUE(store.Add(MakeSet(100)).ok());  // 808 bytes each
  }
  const double avg = store.AvgSetPages();
  EXPECT_NEAR(avg, 808.0 / 4096.0, 0.01);
}

TEST(SetStoreTest, ScanEarlyStopHaltsCharging) {
  SetStore store;
  for (int i = 0; i < 400; ++i) {
    ASSERT_TRUE(store.Add(MakeSet(60, i)).ok());
  }
  store.ResetIoAccounting();
  int visits = 0;
  store.ScanAll([&](SetId, const ElementSet&) { return ++visits < 5; });
  EXPECT_LT(store.io().stats().sequential_reads, store.num_pages());
}

TEST(SetStoreTest, ManySetsStressRoundTrip) {
  SetStore store;
  Rng rng(66);
  std::vector<ElementSet> sets;
  for (int i = 0; i < 500; ++i) {
    ElementSet s;
    const std::size_t n = 1 + rng.Uniform(120);
    for (std::size_t j = 0; j < n; ++j) s.push_back(rng.Uniform(100000));
    NormalizeSet(s);
    sets.push_back(s);
    ASSERT_TRUE(store.Add(s).ok());
  }
  for (int i = 0; i < 500; ++i) {
    EXPECT_EQ(store.Get(static_cast<SetId>(i)).value(), sets[i]);
  }
}

}  // namespace
}  // namespace ssr
