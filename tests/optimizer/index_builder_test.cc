#include "optimizer/index_builder.h"

#include <cmath>

#include <gtest/gtest.h>

namespace ssr {
namespace {

Embedding MakeEmbedding() {
  EmbeddingParams p;
  p.minhash.num_hashes = 100;
  p.minhash.value_bits = 8;
  p.minhash.seed = 111;
  auto e = Embedding::Create(p);
  EXPECT_TRUE(e.ok());
  return std::move(e).value();
}

SimilarityHistogram SkewedHist() {
  SimilarityHistogram hist(100);
  for (int i = 0; i < 100; ++i) {
    const double s = (i + 0.5) / 100.0;
    hist.Add(s, 1000.0 * std::exp(-6.0 * s));
  }
  return hist;
}

TEST(IndexBuilderTest, RejectsBadInputs) {
  Embedding e = MakeEmbedding();
  SimilarityHistogram hist = SkewedHist();
  IndexBuilderOptions options;
  options.table_budget = 1;
  EXPECT_FALSE(ConstructIndexLayout(hist, e, options).ok());
  options.table_budget = 100;
  options.recall_threshold = 0.0;
  EXPECT_FALSE(ConstructIndexLayout(hist, e, options).ok());
  options.recall_threshold = 1.5;
  EXPECT_FALSE(ConstructIndexLayout(hist, e, options).ok());
}

TEST(IndexBuilderTest, ProducesValidatedLayoutMeetingThreshold) {
  Embedding e = MakeEmbedding();
  SimilarityHistogram hist = SkewedHist();
  IndexBuilderOptions options;
  options.table_budget = 200;
  options.recall_threshold = 0.85;
  auto built = ConstructIndexLayout(hist, e, options);
  ASSERT_TRUE(built.ok()) << built.status().ToString();
  EXPECT_TRUE(built->layout.Validate().ok());
  EXPECT_GE(built->predicted_recall, options.recall_threshold);
  EXPECT_LE(built->layout.total_tables(), options.table_budget);
  EXPECT_FALSE(built->trace.empty());
}

TEST(IndexBuilderTest, BudgetFullySpent) {
  Embedding e = MakeEmbedding();
  SimilarityHistogram hist = SkewedHist();
  IndexBuilderOptions options;
  options.table_budget = 150;
  options.recall_threshold = 0.8;
  auto built = ConstructIndexLayout(hist, e, options);
  ASSERT_TRUE(built.ok());
  EXPECT_EQ(built->layout.total_tables(), 150u);
}

TEST(IndexBuilderTest, HigherBudgetAllowsMoreIntervals) {
  Embedding e = MakeEmbedding();
  SimilarityHistogram hist = SkewedHist();
  IndexBuilderOptions small_opts;
  small_opts.table_budget = 40;
  small_opts.recall_threshold = 0.75;
  IndexBuilderOptions large_opts = small_opts;
  large_opts.table_budget = 1000;
  auto small = ConstructIndexLayout(hist, e, small_opts);
  auto large = ConstructIndexLayout(hist, e, large_opts);
  ASSERT_TRUE(small.ok() && large.ok());
  EXPECT_GE(large->layout.points.size(), small->layout.points.size());
}

TEST(IndexBuilderTest, Lemma5CapsIntervalCount) {
  Embedding e = MakeEmbedding();
  SimilarityHistogram hist = SkewedHist();
  IndexBuilderOptions options;
  options.table_budget = 10000;
  options.recall_threshold = 0.8;
  options.precision_answer_fraction = 0.5;  // cap = 0.8 / 0.5 = 1.6 -> 1 FI
  auto built = ConstructIndexLayout(hist, e, options);
  ASSERT_TRUE(built.ok());
  // 1 FI placed; the dual at delta may add one structure.
  EXPECT_LE(built->layout.points.size(), 2u);
}

TEST(IndexBuilderTest, ImpossibleThresholdFails) {
  Embedding e = MakeEmbedding();
  SimilarityHistogram hist = SkewedHist();
  IndexBuilderOptions options;
  options.table_budget = 2;  // two structures, one table each: weak filters
  options.recall_threshold = 0.999999;
  auto built = ConstructIndexLayout(hist, e, options);
  // Either fails outright or returns a layout honestly meeting the bar.
  if (!built.ok()) {
    EXPECT_TRUE(built.status().IsFailedPrecondition());
  } else {
    EXPECT_GE(built->predicted_recall, 0.999999);
  }
}

TEST(IndexBuilderTest, TraceRecordsDecisions) {
  Embedding e = MakeEmbedding();
  SimilarityHistogram hist = SkewedHist();
  IndexBuilderOptions options;
  options.table_budget = 300;
  options.recall_threshold = 0.85;
  auto built = ConstructIndexLayout(hist, e, options);
  ASSERT_TRUE(built.ok());
  for (std::size_t i = 0; i < built->trace.size(); ++i) {
    EXPECT_EQ(built->trace[i].num_fis, i + 1);
    EXPECT_GE(built->trace[i].average_recall, 0.0);
    EXPECT_LE(built->trace[i].average_recall, 1.0);
    EXPECT_GE(built->trace[i].average_recall,
              built->trace[i].worst_case_recall - 1e-9);
  }
  // All but possibly the last iteration were accepted.
  for (std::size_t i = 0; i + 1 < built->trace.size(); ++i) {
    EXPECT_TRUE(built->trace[i].accepted);
  }
}

TEST(IndexBuilderTest, ToStringMentionsPredictions) {
  Embedding e = MakeEmbedding();
  SimilarityHistogram hist = SkewedHist();
  IndexBuilderOptions options;
  options.table_budget = 100;
  options.recall_threshold = 0.8;
  auto built = ConstructIndexLayout(hist, e, options);
  ASSERT_TRUE(built.ok());
  EXPECT_NE(built->ToString().find("recall"), std::string::npos);
}

}  // namespace
}  // namespace ssr
