#include "optimizer/greedy_allocator.h"

#include <cmath>
#include <numeric>

#include <gtest/gtest.h>

#include "optimizer/error_model.h"

namespace ssr {
namespace {

SimilarityHistogram SkewedHist() {
  SimilarityHistogram hist(100);
  for (int i = 0; i < 100; ++i) {
    const double s = (i + 0.5) / 100.0;
    hist.Add(s, 1000.0 * std::exp(-6.0 * s));
  }
  return hist;
}

Embedding MakeEmbedding() {
  EmbeddingParams p;
  p.minhash.num_hashes = 100;
  p.minhash.value_bits = 8;
  p.minhash.seed = 121;
  auto e = Embedding::Create(p);
  EXPECT_TRUE(e.ok());
  return std::move(e).value();
}

IndexLayout ThreePointLayout() {
  IndexLayout layout;
  layout.delta = 0.3;
  layout.points = {{0.15, FilterKind::kDissimilarity, 1, 0},
                   {0.45, FilterKind::kSimilarity, 1, 0},
                   {0.8, FilterKind::kSimilarity, 1, 0}};
  return layout;
}

TEST(GreedyAllocatorTest, RejectsInsufficientBudget) {
  IndexLayout layout = ThreePointLayout();
  SimilarityHistogram hist = SkewedHist();
  Embedding e = MakeEmbedding();
  EXPECT_FALSE(GreedyAllocateTables(&layout, 2, hist, e).ok());
  IndexLayout empty;
  EXPECT_FALSE(GreedyAllocateTables(&empty, 10, hist, e).ok());
}

TEST(GreedyAllocatorTest, SpendsExactBudgetWithMinimumOnePer) {
  IndexLayout layout = ThreePointLayout();
  SimilarityHistogram hist = SkewedHist();
  Embedding e = MakeEmbedding();
  auto report = GreedyAllocateTables(&layout, 40, hist, e);
  ASSERT_TRUE(report.ok());
  std::size_t total = 0;
  for (std::size_t i = 0; i < layout.points.size(); ++i) {
    EXPECT_GE(layout.points[i].tables, 1u);
    EXPECT_EQ(layout.points[i].tables, report->tables[i]);
    EXPECT_GE(layout.points[i].r, 1u);  // tuned r written into the layout
    total += layout.points[i].tables;
  }
  EXPECT_EQ(total, 40u);
}

TEST(GreedyAllocatorTest, RecallImprovesWithBudget) {
  SimilarityHistogram hist = SkewedHist();
  Embedding e = MakeEmbedding();
  IndexLayout a = ThreePointLayout();
  IndexLayout b = ThreePointLayout();
  ASSERT_TRUE(GreedyAllocateTables(&a, 6, hist, e).ok());
  ASSERT_TRUE(GreedyAllocateTables(&b, 120, hist, e).ok());
  LayoutErrorModel small(a, e, hist);
  LayoutErrorModel large(b, e, hist);
  EXPECT_GE(large.WorkloadAverageRecall() + 1e-9,
            small.WorkloadAverageRecall());
}

TEST(GreedyAllocatorTest, BeatsOrMatchesUniformAllocation) {
  // Lemma 6: the greedy allocation maximizes expected (workload-average)
  // recall; it must do at least as well as the uniform split.
  SimilarityHistogram hist = SkewedHist();
  Embedding e = MakeEmbedding();
  IndexLayout greedy_layout = ThreePointLayout();
  IndexLayout uniform_layout = ThreePointLayout();
  ASSERT_TRUE(GreedyAllocateTables(&greedy_layout, 31, hist, e).ok());
  ASSERT_TRUE(UniformAllocateTables(&uniform_layout, 31, hist, 0.5).ok());
  LayoutErrorModel greedy_model(greedy_layout, e, hist);
  LayoutErrorModel uniform_model(uniform_layout, e, hist);
  EXPECT_GE(greedy_model.WorkloadAverageRecall() + 1e-9,
            uniform_model.WorkloadAverageRecall());
}

TEST(GreedyAllocatorTest, FavorsMassHeavyPoints) {
  // Nearly all answer mass sits near low similarity, so the filter serving
  // it should receive the bulk of the budget.
  SimilarityHistogram hist = SkewedHist();
  Embedding e = MakeEmbedding();
  IndexLayout layout;
  layout.delta = 0.0;
  layout.points = {{0.3, FilterKind::kSimilarity, 1, 0},
                   {0.95, FilterKind::kSimilarity, 1, 0}};
  auto report = GreedyAllocateTables(&layout, 30, hist, e);
  ASSERT_TRUE(report.ok());
  EXPECT_GE(layout.points[0].tables, layout.points[1].tables);
}

TEST(GreedyAllocatorByErrorTest, LiteralFigure5RuleSpendsBudget) {
  SimilarityHistogram hist = SkewedHist();
  IndexLayout layout = ThreePointLayout();
  auto report = GreedyAllocateTablesByError(&layout, 50, hist, 0.5);
  ASSERT_TRUE(report.ok());
  EXPECT_EQ(layout.total_tables(), 50u);
  EXPECT_GT(report->total_error, 0.0);
}

TEST(GreedyAllocatorByErrorTest, ErrorDecreasesWithBudget) {
  SimilarityHistogram hist = SkewedHist();
  IndexLayout a = ThreePointLayout();
  IndexLayout b = ThreePointLayout();
  auto small = GreedyAllocateTablesByError(&a, 6, hist, 0.5);
  auto large = GreedyAllocateTablesByError(&b, 120, hist, 0.5);
  ASSERT_TRUE(small.ok() && large.ok());
  EXPECT_LT(large->total_error, small->total_error);
}

TEST(UniformAllocatorTest, SplitsEvenlyWithRemainder) {
  SimilarityHistogram hist = SkewedHist();
  IndexLayout layout = ThreePointLayout();
  auto report = UniformAllocateTables(&layout, 11, hist, 0.5);
  ASSERT_TRUE(report.ok());
  EXPECT_EQ(layout.total_tables(), 11u);
  for (const auto& p : layout.points) {
    EXPECT_GE(p.tables, 3u);
    EXPECT_LE(p.tables, 4u);
  }
}

TEST(RefineForPrecisionTest, NeverDropsRecallBelowThreshold) {
  SimilarityHistogram hist = SkewedHist();
  Embedding e = MakeEmbedding();
  IndexLayout layout = ThreePointLayout();
  ASSERT_TRUE(GreedyAllocateTables(&layout, 60, hist, e).ok());
  LayoutErrorModel before(layout, e, hist);
  const double threshold = before.WorkloadAverageRecall() - 0.05;
  const auto [recall, precision] =
      RefineForPrecision(&layout, hist, e, threshold);
  EXPECT_GE(recall, threshold);
  LayoutErrorModel after(layout, e, hist);
  EXPECT_NEAR(after.WorkloadAverageRecall(), recall, 1e-9);
  EXPECT_NEAR(after.WorkloadAveragePrecision(), precision, 1e-9);
}

TEST(RefineForPrecisionTest, ImprovesOrPreservesPrecision) {
  SimilarityHistogram hist = SkewedHist();
  Embedding e = MakeEmbedding();
  IndexLayout layout = ThreePointLayout();
  ASSERT_TRUE(GreedyAllocateTables(&layout, 60, hist, e).ok());
  LayoutErrorModel before(layout, e, hist);
  const double precision_before = before.WorkloadAveragePrecision();
  const double threshold = before.WorkloadAverageRecall() - 0.1;
  const auto [recall, precision] =
      RefineForPrecision(&layout, hist, e, threshold);
  (void)recall;
  EXPECT_GE(precision + 1e-9, precision_before);
}

TEST(RefineForPrecisionTest, RSharpensNotDulls) {
  SimilarityHistogram hist = SkewedHist();
  Embedding e = MakeEmbedding();
  IndexLayout layout = ThreePointLayout();
  ASSERT_TRUE(GreedyAllocateTables(&layout, 60, hist, e).ok());
  std::vector<std::size_t> r_before;
  for (const auto& p : layout.points) r_before.push_back(p.r);
  LayoutErrorModel model(layout, e, hist);
  RefineForPrecision(&layout, hist, e,
                     model.WorkloadAverageRecall() - 0.2);
  for (std::size_t i = 0; i < layout.points.size(); ++i) {
    EXPECT_GE(layout.points[i].r, r_before[i]);
  }
}

TEST(GreedyAllocatorTest, ReportErrorsMatchLayout) {
  SimilarityHistogram hist = SkewedHist();
  Embedding e = MakeEmbedding();
  IndexLayout layout = ThreePointLayout();
  auto report = GreedyAllocateTables(&layout, 20, hist, e);
  ASSERT_TRUE(report.ok());
  ASSERT_EQ(report->errors.size(), 3u);
  double total = 0.0;
  double max_err = 0.0;
  for (double err : report->errors) {
    EXPECT_GE(err, 0.0);
    total += err;
    max_err = std::max(max_err, err);
  }
  EXPECT_NEAR(report->total_error, total, 1e-9);
  EXPECT_NEAR(report->max_error, max_err, 1e-9);
}

}  // namespace
}  // namespace ssr
