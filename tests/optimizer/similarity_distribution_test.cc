#include "optimizer/similarity_distribution.h"

#include <gtest/gtest.h>

#include "util/set_ops.h"

namespace ssr {
namespace {

TEST(SimilarityHistogramTest, AddAndTotalMass) {
  SimilarityHistogram hist(10);
  hist.Add(0.05);
  hist.Add(0.15, 2.0);
  hist.Add(1.0);  // lands in the last bin
  EXPECT_DOUBLE_EQ(hist.total_mass(), 4.0);
  EXPECT_DOUBLE_EQ(hist.bin_mass(0), 1.0);
  EXPECT_DOUBLE_EQ(hist.bin_mass(1), 2.0);
  EXPECT_DOUBLE_EQ(hist.bin_mass(9), 1.0);
}

TEST(SimilarityHistogramTest, ScaleMultipliesMass) {
  SimilarityHistogram hist(4);
  hist.Add(0.1);
  hist.Add(0.6);
  hist.Scale(2.5);
  EXPECT_DOUBLE_EQ(hist.total_mass(), 5.0);
}

TEST(SimilarityHistogramTest, MassInRangePartialBins) {
  SimilarityHistogram hist(10);
  hist.Add(0.05, 10.0);  // all mass in bin [0, 0.1)
  EXPECT_DOUBLE_EQ(hist.MassInRange(0.0, 0.1), 10.0);
  EXPECT_DOUBLE_EQ(hist.MassInRange(0.0, 0.05), 5.0);  // half the bin
  EXPECT_DOUBLE_EQ(hist.MassInRange(0.1, 1.0), 0.0);
  EXPECT_DOUBLE_EQ(hist.MassInRange(0.5, 0.4), 0.0);
}

TEST(SimilarityHistogramTest, QuantileOnKnownDistribution) {
  SimilarityHistogram hist(10);
  hist.Add(0.05, 50.0);
  hist.Add(0.95, 50.0);
  EXPECT_NEAR(hist.Quantile(0.25), 0.05, 0.011);
  EXPECT_NEAR(hist.Quantile(0.75), 0.95, 0.011);
  const double median = hist.MassMedian();
  EXPECT_GE(median, 0.1);
  EXPECT_LE(median, 0.91);
}

TEST(SimilarityHistogramTest, QuantileDegenerateUniformFallback) {
  SimilarityHistogram hist(10);  // empty
  EXPECT_DOUBLE_EQ(hist.Quantile(0.3), 0.3);
}

TEST(SimilarityHistogramTest, DensityScalesWithBins) {
  SimilarityHistogram hist(100);
  hist.Add(0.505, 7.0);
  EXPECT_DOUBLE_EQ(hist.Density(0.505), 700.0);  // mass / bin width
  EXPECT_DOUBLE_EQ(hist.Density(0.1), 0.0);
}

TEST(ExactDistributionTest, CountsAllPairs) {
  SetCollection sets = {{1, 2, 3}, {1, 2, 3}, {7, 8}};
  SimilarityHistogram hist = ComputeExactDistribution(sets, 10);
  EXPECT_DOUBLE_EQ(hist.total_mass(), 3.0);  // 3 pairs
  // One identical pair at similarity 1.
  EXPECT_DOUBLE_EQ(hist.bin_mass(9), 1.0);
  // Two disjoint pairs at similarity 0.
  EXPECT_DOUBLE_EQ(hist.bin_mass(0), 2.0);
}

TEST(SampledDistributionTest, FallsBackToExactForSmallCollections) {
  SetCollection sets = {{1, 2}, {1, 2}, {3, 4}};
  Rng rng(1);
  SimilarityHistogram hist = ComputeSampledDistribution(sets, 1000, 10, rng);
  EXPECT_DOUBLE_EQ(hist.total_mass(), 3.0);
}

TEST(SampledDistributionTest, ScalesToTotalPairMass) {
  // 100 identical singletons: every pair has similarity 1.
  SetCollection sets(100, ElementSet{42});
  Rng rng(2);
  SimilarityHistogram hist = ComputeSampledDistribution(sets, 50, 10, rng);
  EXPECT_NEAR(hist.total_mass(), 100.0 * 99.0 / 2.0, 1e-6);
  EXPECT_NEAR(hist.bin_mass(9), hist.total_mass(), 1e-6);
}

TEST(SampledDistributionTest, ApproximatesExactShape) {
  // Mixed collection: clusters of duplicates + disjoint sets.
  SetCollection sets;
  for (int c = 0; c < 30; ++c) {
    ElementSet base;
    for (int i = 0; i < 20; ++i) {
      base.push_back(static_cast<ElementId>(c * 100 + i));
    }
    sets.push_back(base);
    ElementSet near = base;
    near[0] = static_cast<ElementId>(c * 100 + 50);
    NormalizeSet(near);
    sets.push_back(near);
  }
  SimilarityHistogram exact = ComputeExactDistribution(sets, 10);
  Rng rng(3);
  SimilarityHistogram sampled =
      ComputeSampledDistribution(sets, 600, 10, rng);
  EXPECT_NEAR(sampled.total_mass(), exact.total_mass(), 1e-6);
  // The dominant feature: most pairs are disjoint (bin 0), a minority are
  // near-duplicates (top bin). Sampling must reproduce the split within
  // sampling error.
  EXPECT_NEAR(sampled.bin_mass(0) / sampled.total_mass(),
              exact.bin_mass(0) / exact.total_mass(), 0.05);
}

TEST(ExactDistributionTest, MassMedianSplitsEvenly) {
  SetCollection sets;
  for (int i = 0; i < 40; ++i) {
    sets.push_back({static_cast<ElementId>(i * 10),
                    static_cast<ElementId>(i * 10 + 1)});
  }
  // All pairs disjoint: similarity 0, median at the very left.
  SimilarityHistogram hist = ComputeExactDistribution(sets, 100);
  EXPECT_LT(hist.MassMedian(), 0.02);
}

}  // namespace
}  // namespace ssr
