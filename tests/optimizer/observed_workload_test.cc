// Observed-workload adapter: snapshot coverage bins map 1:1 onto
// SimilarityHistogram bins, a sample_every = 1 query log rebuilds the same
// coverage at matching resolution, and layout placement driven by the
// observed distribution puts filter points where the workload concentrates.

#include "optimizer/observed_workload.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <cstddef>

#include "obs/query_log.h"
#include "obs/workload_observer.h"
#include "optimizer/equidepth.h"

namespace ssr {
namespace {

TEST(ObservedWorkloadTest, SnapshotCoverageBecomesHistogramMass) {
  obs::WorkloadObserverOptions options;
  options.threshold_bins = 4;
  obs::WorkloadObserver observer(options);
  observer.CountQuery(0.25, 0.75, 10);  // bins 1 and 2, fully
  observer.CountQuery(0.0, 0.125, 10);  // half of bin 0
  const SimilarityHistogram hist =
      ObservedThresholdDistribution(observer.Snapshot());
  ASSERT_EQ(hist.num_bins(), 4u);
  EXPECT_NEAR(hist.bin_mass(0), 0.5, 1e-4);
  EXPECT_NEAR(hist.bin_mass(1), 1.0, 1e-4);
  EXPECT_NEAR(hist.bin_mass(2), 1.0, 1e-4);
  EXPECT_NEAR(hist.bin_mass(3), 0.0, 1e-4);
  EXPECT_NEAR(hist.total_mass(), 2.5, 1e-4);
}

TEST(ObservedWorkloadTest, EmptySnapshotYieldsZeroMass) {
  obs::WorkloadObserver observer;
  const SimilarityHistogram hist =
      ObservedThresholdDistribution(observer.Snapshot());
  EXPECT_EQ(hist.num_bins(), observer.options().threshold_bins);
  EXPECT_DOUBLE_EQ(hist.total_mass(), 0.0);
}

TEST(ObservedWorkloadTest, QueryLogRebuildsCoverageAtMatchingResolution) {
  obs::WorkloadObserverOptions options;
  options.threshold_bins = 8;
  obs::WorkloadObserver observer(options);
  obs::QueryLog log;
  const double ranges[][2] = {
      {0.0, 1.0}, {0.3, 0.55}, {0.9, 0.9}, {0.125, 0.625}};
  for (const auto& r : ranges) {
    observer.CountQuery(r[0], r[1], 5);
    obs::RecordedQuery q;
    q.query = {1, 2, 3};
    q.sigma1 = r[0];
    q.sigma2 = r[1];
    log.queries.push_back(q);
  }
  const SimilarityHistogram from_snapshot =
      ObservedThresholdDistribution(observer.Snapshot());
  const SimilarityHistogram from_log =
      ObservedThresholdDistribution(log, options.threshold_bins);
  ASSERT_EQ(from_snapshot.num_bins(), from_log.num_bins());
  for (std::size_t b = 0; b < from_log.num_bins(); ++b) {
    EXPECT_NEAR(from_snapshot.bin_mass(b), from_log.bin_mass(b), 1e-4)
        << "bin " << b;
  }
  // The point query lands one unit of mass in its bin.
  EXPECT_GE(from_log.bin_mass(7), 1.0 - 1e-9);
}

TEST(ObservedWorkloadTest, PlacementFollowsTheObservedConcentration) {
  // A workload living entirely in [0.6, 0.9]: with blend 0 every filter
  // point must land inside that band, above the mass median.
  obs::WorkloadObserverOptions options;
  options.threshold_bins = 20;
  obs::WorkloadObserver observer(options);
  for (int i = 0; i < 100; ++i) observer.CountQuery(0.6, 0.9, 10);
  const IndexLayout layout = PlaceFilterIndicesFromWorkload(
      observer.Snapshot(), /*num_fis=*/3, /*coverage_blend=*/0.0);
  ASSERT_GE(layout.points.size(), 3u);
  for (const auto& point : layout.points) {
    EXPECT_GE(point.similarity, 0.55) << point.similarity;
    EXPECT_LE(point.similarity, 0.95) << point.similarity;
  }
  const SimilarityHistogram hist =
      ObservedThresholdDistribution(observer.Snapshot());
  EXPECT_GT(hist.MassMedian(), 0.6);
  EXPECT_LT(hist.MassMedian(), 0.9);
}

TEST(ObservedWorkloadTest, BlendKeepsSparseRegionsCovered) {
  // Same concentrated workload, default blend: at least one point must sit
  // outside the hot band, covering the rest of the axis.
  obs::WorkloadObserverOptions options;
  options.threshold_bins = 20;
  obs::WorkloadObserver observer(options);
  for (int i = 0; i < 100; ++i) observer.CountQuery(0.6, 0.9, 10);
  const IndexLayout layout = PlaceFilterIndicesFromWorkload(
      observer.Snapshot(), /*num_fis=*/4, /*coverage_blend=*/1.0);
  const bool any_outside =
      std::any_of(layout.points.begin(), layout.points.end(),
                  [](const auto& p) {
                    return p.similarity < 0.55 || p.similarity > 0.95;
                  });
  EXPECT_TRUE(any_outside);
}

}  // namespace
}  // namespace ssr
