#include "optimizer/equidepth.h"

#include <cmath>

#include <gtest/gtest.h>

namespace ssr {
namespace {

SimilarityHistogram UniformHist() {
  SimilarityHistogram hist(100);
  for (int i = 0; i < 100; ++i) {
    hist.Add((i + 0.5) / 100.0, 1.0);
  }
  return hist;
}

SimilarityHistogram SkewedHist() {
  // The paper's shape: mass concentrated at low similarity.
  SimilarityHistogram hist(100);
  for (int i = 0; i < 100; ++i) {
    const double s = (i + 0.5) / 100.0;
    hist.Add(s, 1000.0 * std::exp(-8.0 * s));
  }
  return hist;
}

TEST(EquidepthTest, BoundariesBracketRange) {
  auto bounds = EquidepthBoundaries(UniformHist(), 4);
  ASSERT_EQ(bounds.size(), 5u);
  EXPECT_DOUBLE_EQ(bounds.front(), 0.0);
  EXPECT_DOUBLE_EQ(bounds.back(), 1.0);
  for (std::size_t i = 1; i < bounds.size(); ++i) {
    EXPECT_GT(bounds[i], bounds[i - 1]);
  }
}

TEST(EquidepthTest, UniformDistributionGivesUniformCuts) {
  auto bounds = EquidepthBoundaries(UniformHist(), 4);
  EXPECT_NEAR(bounds[1], 0.25, 0.02);
  EXPECT_NEAR(bounds[2], 0.50, 0.02);
  EXPECT_NEAR(bounds[3], 0.75, 0.02);
}

TEST(EquidepthTest, IntervalsCarryEqualMass) {
  // Definition 10: equal D_S mass per interval.
  SimilarityHistogram hist = SkewedHist();
  auto bounds = EquidepthBoundaries(hist, 5);
  const double per_interval = hist.total_mass() / 5.0;
  for (std::size_t i = 0; i + 1 < bounds.size(); ++i) {
    EXPECT_NEAR(hist.MassInRange(bounds[i], bounds[i + 1]), per_interval,
                per_interval * 0.12)
        << "interval " << i;
  }
}

TEST(EquidepthTest, SkewedCutsCrowdTheHead) {
  auto bounds = EquidepthBoundaries(SkewedHist(), 4);
  // With mass at the left, interior cuts sit well below uniform spacing.
  EXPECT_LT(bounds[1], 0.15);
  EXPECT_LT(bounds[2], 0.3);
  EXPECT_LT(bounds[3], 0.5);
}

TEST(EquidepthTest, SingleIntervalDegenerates) {
  auto bounds = EquidepthBoundaries(UniformHist(), 1);
  ASSERT_EQ(bounds.size(), 2u);
  EXPECT_DOUBLE_EQ(bounds[0], 0.0);
  EXPECT_DOUBLE_EQ(bounds[1], 1.0);
}

TEST(EquidepthTest, EmptyHistogramFallsBackToUniform) {
  SimilarityHistogram empty(10);
  auto bounds = EquidepthBoundaries(empty, 4);
  EXPECT_NEAR(bounds[1], 0.25, 0.05);
  EXPECT_NEAR(bounds[2], 0.5, 0.05);
}

TEST(PlaceFilterIndicesTest, ProducesValidLayouts) {
  for (std::size_t n : {1u, 2u, 3u, 5u, 8u}) {
    IndexLayout layout = PlaceFilterIndices(SkewedHist(), n);
    EXPECT_TRUE(layout.Validate().ok())
        << "n=" << n << ": " << layout.Validate().ToString() << "\n"
        << layout.ToString();
    // The dual point contributes one extra structure.
    EXPECT_EQ(layout.points.size(), n + 1);
  }
}

TEST(PlaceFilterIndicesTest, DualPointAtDeltaHasBothKinds) {
  IndexLayout layout = PlaceFilterIndices(SkewedHist(), 4);
  int duals = 0;
  for (std::size_t i = 0; i + 1 < layout.points.size(); ++i) {
    if (layout.points[i].similarity == layout.points[i + 1].similarity) {
      EXPECT_EQ(layout.points[i].kind, FilterKind::kDissimilarity);
      EXPECT_EQ(layout.points[i + 1].kind, FilterKind::kSimilarity);
      ++duals;
    }
  }
  EXPECT_EQ(duals, 1);
}

TEST(PlaceFilterIndicesTest, DeltaIsMassMedian) {
  SimilarityHistogram hist = SkewedHist();
  IndexLayout layout = PlaceFilterIndices(hist, 3);
  EXPECT_NEAR(layout.delta, hist.MassMedian(), 1e-9);
}

TEST(PlaceFilterIndicesTest, CoverageBlendSpreadsPointsUpward) {
  // With nearly all mass at low similarity, pure equidepth crowds every
  // point into the head; the coverage blend pushes some points into the
  // upper range so high-similarity queries have nearby structures.
  SimilarityHistogram hist = SkewedHist();
  IndexLayout pure = PlaceFilterIndices(hist, 6, /*coverage_blend=*/0.0);
  IndexLayout blended = PlaceFilterIndices(hist, 6, /*coverage_blend=*/0.3);
  double pure_max = 0.0, blended_max = 0.0;
  for (const auto& p : pure.points) pure_max = std::max(pure_max, p.similarity);
  for (const auto& p : blended.points) {
    blended_max = std::max(blended_max, p.similarity);
  }
  EXPECT_GT(blended_max, pure_max + 0.05);
  EXPECT_GT(blended_max, 0.4);
  EXPECT_TRUE(blended.Validate().ok());
}

TEST(PlaceFilterIndicesTest, BlendKeepsDeltaAtPureMassMedian) {
  SimilarityHistogram hist = SkewedHist();
  IndexLayout blended = PlaceFilterIndices(hist, 4, 0.4);
  EXPECT_NEAR(blended.delta, hist.MassMedian(), 1e-9);
}

TEST(PlaceFilterIndicesTest, KindsPartitionAroundDelta) {
  IndexLayout layout = PlaceFilterIndices(UniformHist(), 6);
  bool seen_sfi = false;
  for (const auto& p : layout.points) {
    if (p.kind == FilterKind::kSimilarity) {
      seen_sfi = true;
    } else {
      EXPECT_FALSE(seen_sfi) << "DFI after an SFI";
    }
  }
}

}  // namespace
}  // namespace ssr
