#include "optimizer/error_model.h"

#include <cmath>

#include <gtest/gtest.h>

namespace ssr {
namespace {

Embedding MakeEmbedding() {
  EmbeddingParams p;
  p.minhash.num_hashes = 100;
  p.minhash.value_bits = 8;
  p.minhash.seed = 101;
  auto e = Embedding::Create(p);
  EXPECT_TRUE(e.ok());
  return std::move(e).value();
}

SimilarityHistogram SkewedHist() {
  SimilarityHistogram hist(100);
  for (int i = 0; i < 100; ++i) {
    const double s = (i + 0.5) / 100.0;
    hist.Add(s, 1000.0 * std::exp(-6.0 * s));
  }
  return hist;
}

TEST(FilterErrorModelTest, SfiCollisionMonotoneIncreasing) {
  FilterErrorModel model(FilterKind::kSimilarity, 0.7, 20, 0.5);
  double prev = -1.0;
  for (double s = 0.0; s <= 1.0; s += 0.05) {
    const double c = model.Collision(s);
    EXPECT_GE(c, prev - 1e-12);
    prev = c;
  }
  EXPECT_NEAR(model.Collision(0.7), 0.5, 0.12);  // near the turning point
  EXPECT_GT(model.Collision(0.95), 0.9);
}

TEST(FilterErrorModelTest, DfiCollisionMonotoneDecreasing) {
  FilterErrorModel model(FilterKind::kDissimilarity, 0.3, 20, 0.5);
  double prev = 2.0;
  for (double s = 0.0; s <= 1.0; s += 0.05) {
    const double c = model.Collision(s);
    EXPECT_LE(c, prev + 1e-12);
    prev = c;
  }
  EXPECT_NEAR(model.Collision(0.3), 0.5, 0.12);
  EXPECT_GT(model.Collision(0.02), 0.85);
  EXPECT_LT(model.Collision(0.9), 0.1);
}

TEST(FilterErrorModelTest, ErrorsArePositiveAndBounded) {
  SimilarityHistogram hist = SkewedHist();
  FilterErrorModel model(FilterKind::kSimilarity, 0.6, 10, 0.5);
  const double fp = model.ExpectedFalsePositives(hist);
  const double fn = model.ExpectedFalseNegatives(hist);
  EXPECT_GE(fp, 0.0);
  EXPECT_GE(fn, 0.0);
  EXPECT_LE(fp, hist.MassInRange(0.0, 0.6) + 1e-9);
  EXPECT_LE(fn, hist.MassInRange(0.6, 1.0) + 1e-9);
  EXPECT_DOUBLE_EQ(model.ExpectedError(hist), fp + fn);
}

TEST(FilterErrorModelTest, MoreTablesReduceError) {
  // The engine of the greedy allocator: error decreases in l (sharper
  // filters, Section 5's r-l tradeoff).
  SimilarityHistogram hist = SkewedHist();
  const double e2 =
      FilterErrorModel(FilterKind::kSimilarity, 0.6, 2, 0.5).ExpectedError(
          hist);
  const double e10 =
      FilterErrorModel(FilterKind::kSimilarity, 0.6, 10, 0.5).ExpectedError(
          hist);
  const double e50 =
      FilterErrorModel(FilterKind::kSimilarity, 0.6, 50, 0.5).ExpectedError(
          hist);
  EXPECT_GT(e2, e10);
  EXPECT_GT(e10, e50);
}

IndexLayout FullLayout() {
  IndexLayout layout;
  layout.delta = 0.3;
  layout.points = {{0.1, FilterKind::kDissimilarity, 20, 0},
                   {0.3, FilterKind::kDissimilarity, 20, 0},
                   {0.3, FilterKind::kSimilarity, 20, 0},
                   {0.7, FilterKind::kSimilarity, 20, 0}};
  return layout;
}

TEST(LayoutErrorModelTest, RetrievalProbabilityInUnitInterval) {
  Embedding e = MakeEmbedding();
  SimilarityHistogram hist = SkewedHist();
  LayoutErrorModel model(FullLayout(), e, hist);
  for (double s = 0.0; s <= 1.0; s += 0.1) {
    for (auto [a, b] : std::vector<std::pair<double, double>>{
             {0.02, 0.08}, {0.4, 0.6}, {0.75, 0.9}, {0.0, 1.0}}) {
      const double p = model.RetrievalProbability(s, a, b);
      EXPECT_GE(p, 0.0);
      EXPECT_LE(p, 1.0);
    }
  }
}

TEST(LayoutErrorModelTest, FullRangeRetrievesEverything) {
  Embedding e = MakeEmbedding();
  SimilarityHistogram hist = SkewedHist();
  LayoutErrorModel model(FullLayout(), e, hist);
  EXPECT_DOUBLE_EQ(model.RetrievalProbability(0.5, 0.0, 1.0), 1.0);
  EXPECT_DOUBLE_EQ(model.ExpectedRecall(0.0, 1.0), 1.0);
}

TEST(LayoutErrorModelTest, InRangeSimilaritiesLikelyRetrieved) {
  Embedding e = MakeEmbedding();
  SimilarityHistogram hist = SkewedHist();
  LayoutErrorModel model(FullLayout(), e, hist);
  // Query [0.75, 0.95]: lo = SFI(0.7), up = virtual 1. A set at s = 0.85
  // collides with SFI(0.7) almost surely.
  EXPECT_GT(model.RetrievalProbability(0.85, 0.75, 0.95), 0.85);
  // A set at s = 0.2 almost surely does not.
  EXPECT_LT(model.RetrievalProbability(0.2, 0.75, 0.95), 0.15);
}

TEST(LayoutErrorModelTest, RecallHighForAlignedRanges) {
  Embedding e = MakeEmbedding();
  SimilarityHistogram hist = SkewedHist();
  LayoutErrorModel model(FullLayout(), e, hist);
  // Range aligned with [0.7, 1]: only SFI(0.7) false negatives hurt.
  EXPECT_GT(model.ExpectedRecall(0.75, 0.95), 0.75);
}

TEST(LayoutErrorModelTest, PrecisionDropsForNarrowRanges) {
  Embedding e = MakeEmbedding();
  SimilarityHistogram hist = SkewedHist();
  LayoutErrorModel model(FullLayout(), e, hist);
  const double narrow = model.ExpectedPrecision(0.45, 0.5);
  const double wide = model.ExpectedPrecision(0.31, 0.69);
  // A narrow range between FIs drags in the whole inter-FI interval.
  EXPECT_LE(narrow, wide + 1e-9);
}

TEST(LayoutErrorModelTest, WorstCaseBelowBestCase) {
  Embedding e = MakeEmbedding();
  SimilarityHistogram hist = SkewedHist();
  LayoutErrorModel model(FullLayout(), e, hist);
  const double worst = model.WorstCaseRecall();
  EXPECT_GE(worst, 0.0);
  EXPECT_LE(worst, 1.0);
  EXPECT_LE(worst, model.ExpectedRecall(0.0, 1.0) + 1e-9);
}

TEST(LayoutErrorModelTest, DecompositionIntervalsTileTheRange) {
  Embedding e = MakeEmbedding();
  SimilarityHistogram hist = SkewedHist();
  LayoutErrorModel model(FullLayout(), e, hist);
  const auto intervals = model.DecompositionIntervals();
  ASSERT_FALSE(intervals.empty());
  EXPECT_DOUBLE_EQ(intervals.front().first, 0.0);
  EXPECT_DOUBLE_EQ(intervals.back().second, 1.0);
  for (std::size_t i = 1; i < intervals.size(); ++i) {
    EXPECT_DOUBLE_EQ(intervals[i].first, intervals[i - 1].second);
  }
}

TEST(LayoutErrorModelTest, MoreTablesImproveWorkloadRecall) {
  Embedding e = MakeEmbedding();
  SimilarityHistogram hist = SkewedHist();
  IndexLayout small = FullLayout();
  for (auto& p : small.points) p.tables = 3;
  IndexLayout big = FullLayout();
  for (auto& p : big.points) p.tables = 60;
  LayoutErrorModel small_model(small, e, hist);
  LayoutErrorModel big_model(big, e, hist);
  EXPECT_GE(big_model.WorkloadAverageRecall() + 0.02,
            small_model.WorkloadAverageRecall());
}

TEST(LayoutErrorModelTest, WorkloadAveragesAreProbabilities) {
  Embedding e = MakeEmbedding();
  SimilarityHistogram hist = SkewedHist();
  LayoutErrorModel model(FullLayout(), e, hist);
  const double recall = model.WorkloadAverageRecall();
  const double precision = model.WorkloadAveragePrecision();
  EXPECT_GE(recall, 0.0);
  EXPECT_LE(recall, 1.0);
  EXPECT_GE(precision, 0.0);
  EXPECT_LE(precision, 1.0);
}

TEST(LayoutErrorModelTest, WorstCasePrecisionSkipsTinyAnswers) {
  Embedding e = MakeEmbedding();
  SimilarityHistogram hist = SkewedHist();
  LayoutErrorModel model(FullLayout(), e, hist);
  const double p = model.WorstCasePrecision(1.0);
  EXPECT_GE(p, 0.0);
  EXPECT_LE(p, 1.0);
}

TEST(FilterErrorModelTest, ExplicitROverridesCanonical) {
  FilterErrorModel canonical(FilterKind::kSimilarity, 0.7, 20, 0.5);
  FilterErrorModel overridden(FilterKind::kSimilarity, 0.7, 20, 0.5, 3);
  EXPECT_EQ(overridden.filter().r(), 3u);
  EXPECT_NE(canonical.filter().r(), 3u);
}

TEST(FilterErrorModelTest, ChooseOptimalRNoWorseThanCanonical) {
  SimilarityHistogram hist = SkewedHist();
  for (double sigma : {0.1, 0.3, 0.6, 0.9}) {
    for (std::size_t l : {4u, 16u, 64u}) {
      const std::size_t r =
          ChooseOptimalR(FilterKind::kSimilarity, sigma, l, 0.5, hist);
      const double tuned =
          FilterErrorModel(FilterKind::kSimilarity, sigma, l, 0.5, r)
              .NormalizedError(hist);
      const double canonical =
          FilterErrorModel(FilterKind::kSimilarity, sigma, l, 0.5)
              .NormalizedError(hist);
      EXPECT_LE(tuned, canonical + 1e-9) << "sigma=" << sigma << " l=" << l;
    }
  }
}

}  // namespace
}  // namespace ssr
