// Online shard rebalance: the move state machine (BeginRebalance /
// StepRebalance / FinishRebalance) under grow and shrink, the
// mid-rebalance answer contract (tagged `rebalancing` + `partial`, never
// wrong — pinned by test, both single-threaded between moves and with
// concurrent reader threads), writer routing during a drain, and the
// crash-during-rebalance matrix: kill the write path at every move-record
// boundary, recover from (post-Begin checkpoint, captured per-shard WALs),
// and assert every sid's placement is fully old or fully new — never
// split — with a re-run RebalanceTo converging the remainder.

#include <algorithm>
#include <atomic>
#include <cstdint>
#include <memory>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "core/set_similarity_index.h"
#include "exec/epoch.h"
#include "fault/fault_injector.h"
#include "shard/query_router.h"
#include "shard/sharded_index.h"
#include "storage/recovery.h"
#include "storage/wal.h"
#include "util/random.h"
#include "util/set_ops.h"

namespace ssr {
namespace shard {
namespace {

ElementSet RandomSet(Rng& rng) {
  ElementSet s;
  const std::size_t size = 8 + rng.Uniform(24);
  for (std::size_t i = 0; i < size; ++i) s.push_back(rng.Uniform(5000));
  NormalizeSet(s);
  if (s.empty()) s.push_back(1);
  return s;
}

IndexLayout TestLayout() {
  IndexLayout layout;
  layout.delta = 0.3;
  layout.points = {{0.3, FilterKind::kDissimilarity, 6, 0},
                   {0.3, FilterKind::kSimilarity, 6, 0},
                   {0.7, FilterKind::kSimilarity, 6, 3}};
  return layout;
}

ShardedIndexOptions TestOptions(std::uint32_t num_shards) {
  ShardedIndexOptions options;
  options.num_shards = num_shards;
  options.index.embedding.minhash.num_hashes = 64;
  options.index.embedding.minhash.seed = 999;
  options.index.seed = 1234;
  return options;
}

SetCollection MakeSets(std::size_t n, std::uint64_t seed) {
  Rng rng(seed);
  SetCollection sets;
  for (std::size_t i = 0; i < n; ++i) sets.push_back(RandomSet(rng));
  return sets;
}

ShardedSetSimilarityIndex BuildAt(const SetCollection& sets,
                                  std::uint32_t num_shards) {
  auto built = ShardedSetSimilarityIndex::Build(sets, TestLayout(),
                                                TestOptions(num_shards));
  EXPECT_TRUE(built.ok()) << built.status().ToString();
  return std::move(built).value();
}

// Every shard whose store currently holds `sid`'s payload. The rebalance
// invariants say this is exactly one shard at every quiescent point.
std::vector<std::uint32_t> LocationsOf(const ShardedSetSimilarityIndex& index,
                                       SetId sid) {
  std::vector<std::uint32_t> where;
  for (std::uint32_t s = 0; s < index.num_shards(); ++s) {
    const SetStore* store = index.shard_store(s);
    if (store == nullptr) continue;
    const std::vector<SetId> locals = index.global_of_local(s);
    for (SetId local = 0; local < locals.size(); ++local) {
      if (locals[local] == sid && store->Contains(local)) {
        where.push_back(s);
        break;
      }
    }
  }
  return where;
}

std::vector<SetId> AllSids(std::size_t n) {
  std::vector<SetId> sids(n);
  for (std::size_t i = 0; i < n; ++i) sids[i] = static_cast<SetId>(i);
  return sids;
}

// ---------------------------------------------------------------------------
// Offline equivalence: RebalanceTo lands on the same placement and the same
// answers as building fresh at the target shard count.
// ---------------------------------------------------------------------------

class RebalanceTest : public ::testing::Test {
 protected:
  void SetUp() override { fault::FaultInjector::Default().Reset(); }
  void TearDown() override { fault::FaultInjector::Default().Reset(); }
};

void CheckRebalancedMatchesFresh(std::uint32_t from, std::uint32_t to) {
  const SetCollection sets = MakeSets(60, 0x9e3a11 + from * 131 + to);
  ShardedSetSimilarityIndex index = BuildAt(sets, from);
  index.EnableConcurrentWrites();
  ShardedSetSimilarityIndex fresh = BuildAt(sets, to);

  ASSERT_TRUE(index.RebalanceTo(to).ok());
  EXPECT_EQ(index.num_shards(), to);
  EXPECT_EQ(index.num_live_sets(), sets.size());
  EXPECT_FALSE(index.rebalancing());

  // Placement is exactly the fresh HRW vote under the target count.
  EXPECT_EQ(index.shard_map().ContentDigest(),
            fresh.shard_map().ContentDigest());
  for (SetId sid = 0; sid < sets.size(); ++sid) {
    ASSERT_EQ(LocationsOf(index, sid),
              std::vector<std::uint32_t>{fresh.shard_map().ShardOf(sid)})
        << "sid " << sid;
  }

  // And answers are identical to the fresh build, untagged.
  Rng rng(4242);
  for (int i = 0; i < 8; ++i) {
    const ElementSet q = RandomSet(rng);
    const double lo = (i % 2 == 0) ? 0.0 : 0.5;
    auto a = index.Query(q, lo, 1.0);
    auto b = fresh.Query(q, lo, 1.0);
    ASSERT_TRUE(a.ok() && b.ok());
    EXPECT_EQ(a->sids, b->sids) << "query " << i;
    EXPECT_FALSE(a->partial);
    EXPECT_FALSE(a->rebalancing);
  }
  index.epoch_manager()->Quiesce();
}

TEST_F(RebalanceTest, GrowMatchesFreshBuildAtTargetCount) {
  CheckRebalancedMatchesFresh(2, 5);
}

TEST_F(RebalanceTest, ShrinkMatchesFreshBuildAtTargetCount) {
  CheckRebalancedMatchesFresh(5, 2);
}

TEST_F(RebalanceTest, ShrinkToOneShardDrainsEverything) {
  CheckRebalancedMatchesFresh(4, 1);
}

TEST_F(RebalanceTest, SameCountRebalanceIsANoOp) {
  const SetCollection sets = MakeSets(30, 77);
  ShardedSetSimilarityIndex index = BuildAt(sets, 3);
  index.EnableConcurrentWrites();
  const std::uint64_t before = index.ContentDigest();
  ASSERT_TRUE(index.RebalanceTo(3).ok());
  EXPECT_EQ(index.ContentDigest(), before);
}

// ---------------------------------------------------------------------------
// State-machine bookkeeping and precondition errors.
// ---------------------------------------------------------------------------

TEST_F(RebalanceTest, StatusTracksTheMoveStateMachine) {
  const SetCollection sets = MakeSets(50, 555);
  ShardedSetSimilarityIndex index = BuildAt(sets, 2);
  index.EnableConcurrentWrites();

  RebalanceStatus idle = index.rebalance_status();
  EXPECT_FALSE(idle.active);

  ASSERT_TRUE(index.BeginRebalance(4).ok());
  RebalanceStatus begun = index.rebalance_status();
  EXPECT_TRUE(begun.active);
  EXPECT_EQ(begun.target_shards, 4u);
  EXPECT_GT(begun.moves_planned, 0u);
  EXPECT_EQ(begun.moves_done + begun.moves_skipped, 0u);
  EXPECT_TRUE(index.rebalancing());
  // Growing publishes the new topology immediately.
  EXPECT_EQ(index.num_shards(), 4u);

  // Drain one move at a time: remaining strictly decreases to zero.
  std::size_t last_remaining = begun.moves_planned;
  for (;;) {
    auto remaining = index.StepRebalance(1);
    ASSERT_TRUE(remaining.ok()) << remaining.status().ToString();
    if (last_remaining > 0) {
      EXPECT_EQ(*remaining, last_remaining - 1);
    }
    last_remaining = *remaining;
    if (*remaining == 0) break;
  }
  RebalanceStatus drained = index.rebalance_status();
  EXPECT_EQ(drained.moves_done + drained.moves_skipped,
            drained.moves_planned);

  ASSERT_TRUE(index.FinishRebalance().ok());
  EXPECT_FALSE(index.rebalance_status().active);
  EXPECT_FALSE(index.rebalancing());
  index.epoch_manager()->Quiesce();
}

TEST_F(RebalanceTest, PreconditionViolationsAreTyped) {
  const SetCollection sets = MakeSets(30, 31337);
  ShardedSetSimilarityIndex index = BuildAt(sets, 2);
  index.EnableConcurrentWrites();

  // No rebalance active: Step and Finish refuse.
  EXPECT_TRUE(index.StepRebalance(1).status().IsFailedPrecondition());
  EXPECT_TRUE(index.FinishRebalance().IsFailedPrecondition());

  // A degraded shard blocks Begin (its sids cannot be moved safely).
  index.SetShardDegraded(1, true);
  EXPECT_TRUE(index.BeginRebalance(3).IsUnavailable());
  index.SetShardDegraded(1, false);

  ASSERT_TRUE(index.BeginRebalance(3).ok());
  // Double Begin refuses; Finish with pending moves refuses.
  EXPECT_TRUE(index.BeginRebalance(4).IsFailedPrecondition());
  if (index.rebalance_status().moves_planned > 0) {
    EXPECT_TRUE(index.FinishRebalance().IsFailedPrecondition());
  }
  for (;;) {
    auto remaining = index.StepRebalance(16);
    ASSERT_TRUE(remaining.ok());
    if (*remaining == 0) break;
  }
  EXPECT_TRUE(index.FinishRebalance().ok());
  index.epoch_manager()->Quiesce();
}

// ---------------------------------------------------------------------------
// The acceptance contract: a query issued mid-rebalance returns a tagged,
// never-wrong answer.
// ---------------------------------------------------------------------------

// Single-threaded slice: between any two moves the index is quiescent, so
// the answer must be tagged (a rebalance is active) AND still exactly
// right — the tag is conservative, the data is not.
TEST_F(RebalanceTest, MidRebalanceAnswersAreTaggedAndExactBetweenMoves) {
  const SetCollection sets = MakeSets(60, 808);
  ShardedSetSimilarityIndex index = BuildAt(sets, 2);
  index.EnableConcurrentWrites();
  const ElementSet probe = sets[7];

  auto reference = index.Query(probe, 0.0, 1.0);
  ASSERT_TRUE(reference.ok());
  EXPECT_EQ(reference->sids, AllSids(sets.size()));

  ASSERT_TRUE(index.BeginRebalance(5).ok());
  for (;;) {
    auto answer = index.Query(probe, 0.0, 1.0);
    ASSERT_TRUE(answer.ok()) << answer.status().ToString();
    EXPECT_TRUE(answer->rebalancing)
        << "mid-rebalance answer must be tagged rebalancing";
    EXPECT_TRUE(answer->partial)
        << "mid-rebalance answer must be tagged partial (conservative)";
    EXPECT_EQ(answer->sids, reference->sids)
        << "quiescent-point answer diverged mid-rebalance";
    auto remaining = index.StepRebalance(1);
    ASSERT_TRUE(remaining.ok());
    if (*remaining == 0) break;
  }
  ASSERT_TRUE(index.FinishRebalance().ok());

  auto after = index.Query(probe, 0.0, 1.0);
  ASSERT_TRUE(after.ok());
  EXPECT_FALSE(after->rebalancing);
  EXPECT_FALSE(after->partial);
  EXPECT_EQ(after->sids, reference->sids);
  index.epoch_manager()->Quiesce();
}

// Concurrent slice: reader threads (serial gather and the router) query
// continuously while the driver thread grows then shrinks the index. Every
// answer must be well-formed and a subset of the true answer — never wrong,
// never a superset — and tagged whenever it overlapped the rebalance.
TEST_F(RebalanceTest, ConcurrentReadersDuringRebalanceNeverSeeAWrongAnswer) {
  const SetCollection sets = MakeSets(80, 2468);
  exec::EpochManager em;
  ShardedSetSimilarityIndex index = BuildAt(sets, 2);
  index.EnableConcurrentWrites(&em);
  const std::vector<SetId> truth = AllSids(sets.size());

  std::atomic<bool> stop{false};
  std::atomic<std::uint64_t> tagged_answers{0};
  std::vector<std::thread> readers;
  for (int r = 0; r < 3; ++r) {
    readers.emplace_back([&, r] {
      Rng rng(5000 + r);
      QueryRouterOptions router_options;
      router_options.num_threads = 2;
      QueryRouter router(index, router_options);
      while (!stop.load(std::memory_order_relaxed)) {
        const ElementSet q = sets[rng.Uniform(sets.size())];
        auto serial = index.Query(q, 0.0, 1.0);
        auto routed = router.Query(q, 0.0, 1.0);
        for (const auto* res : {&serial, &routed}) {
          ASSERT_TRUE(res->ok()) << res->status().ToString();
          const ShardedQueryResult& a = **res;
          ASSERT_TRUE(std::is_sorted(a.sids.begin(), a.sids.end()));
          ASSERT_TRUE(std::adjacent_find(a.sids.begin(), a.sids.end()) ==
                      a.sids.end());
          // Never wrong: every returned sid is real (a subset of truth).
          ASSERT_TRUE(std::includes(truth.begin(), truth.end(),
                                    a.sids.begin(), a.sids.end()))
              << "concurrent answer returned a sid that does not exist";
          if (a.rebalancing) {
            ASSERT_TRUE(a.partial)
                << "rebalancing answers must be tagged partial too";
            tagged_answers.fetch_add(1, std::memory_order_relaxed);
          }
        }
      }
    });
  }

  // The driver: grow 2 -> 5, then shrink 5 -> 3, stepping in small bites so
  // readers overlap many commit windows.
  for (std::uint32_t target : {5u, 3u}) {
    ASSERT_TRUE(index.BeginRebalance(target).ok());
    for (;;) {
      auto remaining = index.StepRebalance(2);
      ASSERT_TRUE(remaining.ok()) << remaining.status().ToString();
      if (*remaining == 0) break;
      std::this_thread::yield();
    }
    // Every answer issued while the rebalance is active is tagged; hold the
    // window open until at least one reader observed it, so the tagging
    // assertion below is deterministic.
    while (tagged_answers.load(std::memory_order_relaxed) == 0) {
      std::this_thread::yield();
    }
    ASSERT_TRUE(index.FinishRebalance().ok());
  }
  stop.store(true);
  for (auto& t : readers) t.join();
  em.Quiesce();

  EXPECT_GT(tagged_answers.load(), 0u)
      << "no reader ever overlapped the rebalance — tagging is unpinned";
  auto final_answer = index.Query(sets[0], 0.0, 1.0);
  ASSERT_TRUE(final_answer.ok());
  EXPECT_EQ(final_answer->sids, truth);
  EXPECT_EQ(index.num_shards(), 3u);
}

// A shrink-retired slot is not a failed shard: it was verified empty before
// FinishRebalance nulled it, so a reader that raced the shrink (holding the
// pre-shrink count) must keep succeeding even under kFailFast — the
// strictest policy, where a genuinely degraded shard fails the whole query.
TEST_F(RebalanceTest, ShrinkRetiredSlotsDoNotTripFailFastReaders) {
  const SetCollection sets = MakeSets(80, 1357);
  exec::EpochManager em;
  ShardedIndexOptions options = TestOptions(5);
  options.on_shard_failure = ShardFailurePolicy::kFailFast;
  auto built = ShardedSetSimilarityIndex::Build(sets, TestLayout(), options);
  ASSERT_TRUE(built.ok()) << built.status().ToString();
  ShardedSetSimilarityIndex index = std::move(built).value();
  index.EnableConcurrentWrites(&em);
  const std::vector<SetId> truth = AllSids(sets.size());

  std::atomic<bool> stop{false};
  std::vector<std::thread> readers;
  for (int r = 0; r < 3; ++r) {
    readers.emplace_back([&, r] {
      Rng rng(7100 + r);
      QueryRouterOptions router_options;
      router_options.num_threads = 2;
      QueryRouter router(index, router_options);
      while (!stop.load(std::memory_order_relaxed)) {
        const ElementSet q = sets[rng.Uniform(sets.size())];
        auto serial = index.Query(q, 0.0, 1.0);
        auto routed = router.Query(q, 0.0, 1.0);
        for (const auto* res : {&serial, &routed}) {
          // No shard is ever degraded here, so kFailFast must never fire:
          // a nulled slot a racing reader finds past the shrink is retired
          // (provably empty), not failed.
          ASSERT_TRUE(res->ok())
              << "kFailFast tripped by a shrink-retired slot: "
              << res->status().ToString();
          ASSERT_TRUE(std::includes(truth.begin(), truth.end(),
                                    (*res)->sids.begin(), (*res)->sids.end()));
        }
      }
    });
  }

  // Repeated shrinks maximize the race window readers must survive.
  for (std::uint32_t target : {3u, 2u, 1u}) {
    ASSERT_TRUE(index.BeginRebalance(target).ok());
    for (;;) {
      auto remaining = index.StepRebalance(2);
      ASSERT_TRUE(remaining.ok()) << remaining.status().ToString();
      if (*remaining == 0) break;
      std::this_thread::yield();
    }
    ASSERT_TRUE(index.FinishRebalance().ok());
  }
  stop.store(true);
  for (auto& t : readers) t.join();
  em.Quiesce();

  auto final_answer = index.Query(sets[0], 0.0, 1.0);
  ASSERT_TRUE(final_answer.ok());
  EXPECT_EQ(final_answer->sids, truth);
  EXPECT_EQ(index.num_shards(), 1u);
}

// ---------------------------------------------------------------------------
// Writers during a rebalance: fresh inserts route under the target
// topology, and erasing a planned-but-unmoved sid skips its move.
// ---------------------------------------------------------------------------

TEST_F(RebalanceTest, InsertsDuringGrowRouteUnderTheTargetTopology) {
  const SetCollection sets = MakeSets(40, 1212);
  ShardedSetSimilarityIndex index = BuildAt(sets, 2);
  index.EnableConcurrentWrites();
  Rng rng(99);

  ASSERT_TRUE(index.BeginRebalance(4).ok());
  // Fresh inserts while the plan drains: they vote under 4 shards, so the
  // finished index is indistinguishable from one that grew first.
  std::vector<SetId> fresh_sids;
  for (int i = 0; i < 12; ++i) {
    const SetId sid = static_cast<SetId>(sets.size() + i);
    ASSERT_TRUE(index.Insert(sid, RandomSet(rng)).ok());
    fresh_sids.push_back(sid);
  }
  for (;;) {
    auto remaining = index.StepRebalance(8);
    ASSERT_TRUE(remaining.ok());
    if (*remaining == 0) break;
  }
  ASSERT_TRUE(index.FinishRebalance().ok());

  // Every fresh sid sits where a fresh 4-shard build would put it.
  ShardMap reference_map(4);
  for (SetId sid : fresh_sids) {
    EXPECT_EQ(index.shard_map().ShardOf(sid), reference_map.ShardOf(sid))
        << "sid " << sid << " not placed under the target topology";
    EXPECT_EQ(LocationsOf(index, sid),
              std::vector<std::uint32_t>{index.shard_map().ShardOf(sid)});
  }
  auto answer = index.Query(sets[0], 0.0, 1.0);
  ASSERT_TRUE(answer.ok());
  EXPECT_EQ(answer->sids.size(), sets.size() + fresh_sids.size());
  index.epoch_manager()->Quiesce();
}

TEST_F(RebalanceTest, ErasedSidsSkipTheirPlannedMove) {
  const SetCollection sets = MakeSets(50, 3434);
  ShardedSetSimilarityIndex index = BuildAt(sets, 2);
  index.EnableConcurrentWrites();

  const std::vector<ShardMove> plan = index.shard_map().PlanRebalance(4);
  ASSERT_FALSE(plan.empty());
  const SetId doomed = plan.front().sid;

  ASSERT_TRUE(index.BeginRebalance(4).ok());
  ASSERT_TRUE(index.Erase(doomed).ok());
  for (;;) {
    auto remaining = index.StepRebalance(8);
    ASSERT_TRUE(remaining.ok());
    if (*remaining == 0) break;
  }
  RebalanceStatus status = index.rebalance_status();
  EXPECT_GE(status.moves_skipped, 1u);
  EXPECT_EQ(status.moves_done + status.moves_skipped, status.moves_planned);
  ASSERT_TRUE(index.FinishRebalance().ok());

  EXPECT_TRUE(LocationsOf(index, doomed).empty());
  auto answer = index.Query(sets[doomed], 0.0, 1.0);
  ASSERT_TRUE(answer.ok());
  EXPECT_FALSE(std::binary_search(answer->sids.begin(), answer->sids.end(),
                                  doomed));
  index.epoch_manager()->Quiesce();
}

// ---------------------------------------------------------------------------
// The crash-during-rebalance matrix. Every move appends two WAL records
// (advisory kMoveOut to the source log, then kMoveIn — the commit point —
// to the destination log). Kill the writer at every record boundary,
// recover from the post-Begin checkpoint + captured logs, and assert the
// per-sid placement is fully old or fully new, never split; then re-run
// the rebalance and assert it converges to the target placement.
// ---------------------------------------------------------------------------

#ifdef SSR_NO_FAULT_INJECTION
#define SKIP_WITHOUT_INJECTION() \
  GTEST_SKIP() << "built with SSR_NO_FAULT_INJECTION"
#else
#define SKIP_WITHOUT_INJECTION() (void)0
#endif

void RunCrashMatrix(std::uint32_t from, std::uint32_t to) {
  const SetCollection sets = MakeSets(36, 0xc4a5 + from * 17 + to);
  auto& fi = fault::FaultInjector::Default();

  // The plan is a pure function of the map, so compute it once up front to
  // know the move count (every move appends exactly two records here).
  const std::vector<ShardMove> plan =
      BuildAt(sets, from).shard_map().PlanRebalance(to);
  ASSERT_FALSE(plan.empty());
  const std::size_t total_records = 2 * plan.size();

  // The fully-converged reference placement.
  ShardedSetSimilarityIndex converged = BuildAt(sets, from);
  converged.EnableConcurrentWrites();
  ASSERT_TRUE(converged.RebalanceTo(to).ok());
  const std::uint64_t converged_map_digest =
      converged.shard_map().ContentDigest();

  for (std::size_t k = 0; k <= total_records; ++k) {
    SCOPED_TRACE("crash after " + std::to_string(k) + " of " +
                 std::to_string(total_records) + " move records (" +
                 std::to_string(from) + " -> " + std::to_string(to) + ")");
    ShardedSetSimilarityIndex index = BuildAt(sets, from);
    index.EnableConcurrentWrites();

    // Durability setup: logs on the original shards, then Begin, then logs
    // on any grown shards, then the post-Begin checkpoint the protocol
    // requires (recovery must see the new topology's shard count).
    std::vector<std::unique_ptr<std::ostringstream>> wal_streams;
    std::vector<std::unique_ptr<WalWriter>> writers;
    auto attach = [&](std::uint32_t s) {
      wal_streams.push_back(std::make_unique<std::ostringstream>());
      writers.push_back(
          std::make_unique<WalWriter>(*wal_streams.back(), kWalFirstLsn));
      index.AttachShardWal(s, writers.back().get());
    };
    for (std::uint32_t s = 0; s < from; ++s) attach(s);
    ASSERT_TRUE(index.BeginRebalance(to).ok());
    for (std::uint32_t s = from; s < index.num_shards(); ++s) attach(s);
    const std::uint32_t checkpoint_shards = index.num_shards();
    std::ostringstream ckpt_out;
    ASSERT_TRUE(WriteShardedCheckpoint(
                    index,
                    std::vector<std::uint64_t>(checkpoint_shards, 0),
                    ckpt_out)
                    .ok());
    ASSERT_TRUE(index.MarkRebalanceCheckpointed().ok());

    // Drive moves one at a time until the armed crash point kills the k-th
    // append — a process death at that exact record boundary.
    fi.Reset();
    fi.Enable(fault::SeedFromEnv(7));
    fi.Arm("wal/crash", fault::FaultKind::kCrashPoint,
           fault::FaultSchedule::Once(/*after_hits=*/k));
    bool crashed = false;
    for (;;) {
      auto remaining = index.StepRebalance(1);
      if (!remaining.ok()) {
        crashed = true;
        break;
      }
      if (*remaining == 0) break;
    }
    fi.Reset();
    EXPECT_EQ(crashed, k < total_records);

    std::vector<std::string> wal_bytes;
    for (auto& stream : wal_streams) wal_bytes.push_back(stream->str());

    // Recover from (post-Begin checkpoint, surviving logs).
    std::istringstream ckpt_in(ckpt_out.str());
    std::vector<std::unique_ptr<std::istringstream>> wal_in;
    std::vector<std::istream*> wal_ptrs;
    for (const std::string& bytes : wal_bytes) {
      wal_in.push_back(std::make_unique<std::istringstream>(bytes));
      wal_ptrs.push_back(wal_in.back().get());
    }
    auto rec = RecoverShardedIndex(ckpt_in, wal_ptrs, TestOptions(from));
    ASSERT_TRUE(rec.ok()) << rec.status().ToString();
    ASSERT_EQ(rec->index->num_shards(), checkpoint_shards);
    EXPECT_TRUE(rec->quarantined_shards.empty());

    // The per-sid consistency contract: move i committed iff its kMoveIn
    // (record 2i + 2) landed before the crash. Each sid is fully at its
    // old home or fully at its new one — never split, never lost.
    for (std::size_t i = 0; i < plan.size(); ++i) {
      const ShardMove& move = plan[i];
      const bool committed = 2 * i + 2 <= k;
      const std::uint32_t expect = committed ? move.to : move.from;
      ASSERT_EQ(LocationsOf(*rec->index, move.sid),
                std::vector<std::uint32_t>{expect})
          << "sid " << move.sid << " (move " << i << ", committed "
          << committed << ") split or lost";
      EXPECT_EQ(rec->index->shard_map().ShardOf(move.sid), expect);
    }
    // And the differential contract: the recovered index still answers
    // with every live sid, exactly once.
    auto recovered_answer = rec->index->Query(sets[0], 0.0, 1.0);
    ASSERT_TRUE(recovered_answer.ok());
    EXPECT_EQ(recovered_answer->sids, AllSids(sets.size()));
    EXPECT_EQ(rec->index->num_live_sets(), sets.size());

    // A re-run rebalance converges the remainder to the target placement.
    ASSERT_TRUE(rec->index->RebalanceTo(to).ok());
    EXPECT_EQ(rec->index->num_shards(), to);
    EXPECT_EQ(rec->index->shard_map().ContentDigest(), converged_map_digest);
    auto final_answer = rec->index->Query(sets[0], 0.0, 1.0);
    ASSERT_TRUE(final_answer.ok());
    EXPECT_EQ(final_answer->sids, AllSids(sets.size()));
    if (::testing::Test::HasFatalFailure()) return;
  }
  converged.epoch_manager()->Quiesce();
}

TEST_F(RebalanceTest, CrashAtEveryMoveRecordBoundaryDuringGrow) {
  SKIP_WITHOUT_INJECTION();
  RunCrashMatrix(2, 3);
}

TEST_F(RebalanceTest, CrashAtEveryMoveRecordBoundaryDuringShrink) {
  SKIP_WITHOUT_INJECTION();
  RunCrashMatrix(3, 2);
}

// ---------------------------------------------------------------------------
// The post-Begin checkpoint is enforced, not advisory: with a WAL attached,
// moves refuse to run until the caller declares the checkpoint (directly or
// through the hook). And a move that fails *after* its kMoveIn commit point
// wedges the state machine instead of pretending to be retryable.
// ---------------------------------------------------------------------------

TEST_F(RebalanceTest, StepWithoutPostBeginCheckpointIsRefused) {
  const SetCollection sets = MakeSets(30, 5151);
  ShardedSetSimilarityIndex index = BuildAt(sets, 2);
  index.EnableConcurrentWrites();
  std::ostringstream wal_stream;
  WalWriter writer(wal_stream, kWalFirstLsn);
  index.AttachShardWal(0, &writer);

  ASSERT_TRUE(index.BeginRebalance(3).ok());
  EXPECT_FALSE(index.rebalance_status().checkpointed);
  auto refused = index.StepRebalance(1);
  ASSERT_FALSE(refused.ok());
  EXPECT_TRUE(refused.status().IsFailedPrecondition());

  // Write the checkpoint the protocol demands, declare it, and the drain
  // proceeds normally.
  std::ostringstream ckpt_out;
  ASSERT_TRUE(WriteShardedCheckpoint(
                  index, std::vector<std::uint64_t>(index.num_shards(), 0),
                  ckpt_out)
                  .ok());
  ASSERT_TRUE(index.MarkRebalanceCheckpointed().ok());
  EXPECT_TRUE(index.rebalance_status().checkpointed);
  for (;;) {
    auto remaining = index.StepRebalance(8);
    ASSERT_TRUE(remaining.ok());
    if (*remaining == 0) break;
  }
  ASSERT_TRUE(index.FinishRebalance().ok());
  // Outside a rebalance there is nothing to declare.
  EXPECT_TRUE(index.MarkRebalanceCheckpointed().IsFailedPrecondition());
  index.epoch_manager()->Quiesce();
}

TEST_F(RebalanceTest, WalLessRebalanceOwesNoCheckpoint) {
  const SetCollection sets = MakeSets(30, 5252);
  ShardedSetSimilarityIndex index = BuildAt(sets, 2);
  index.EnableConcurrentWrites();
  // In-memory deployments (the differential harness, the benchrunner) have
  // nothing to replay, so the checkpoint requirement is vacuous.
  ASSERT_TRUE(index.BeginRebalance(3).ok());
  EXPECT_TRUE(index.rebalance_status().checkpointed);
  for (;;) {
    auto remaining = index.StepRebalance(8);
    ASSERT_TRUE(remaining.ok());
    if (*remaining == 0) break;
  }
  ASSERT_TRUE(index.FinishRebalance().ok());
  index.epoch_manager()->Quiesce();
}

TEST_F(RebalanceTest, CheckpointHookMakesRebalanceToDurable) {
  const SetCollection sets = MakeSets(30, 6161);
  ShardedSetSimilarityIndex index = BuildAt(sets, 2);
  index.EnableConcurrentWrites();

  std::vector<std::unique_ptr<std::ostringstream>> wal_streams;
  std::vector<std::unique_ptr<WalWriter>> writers;
  auto attach = [&](std::uint32_t s) {
    wal_streams.push_back(std::make_unique<std::ostringstream>());
    writers.push_back(
        std::make_unique<WalWriter>(*wal_streams.back(), kWalFirstLsn));
    index.AttachShardWal(s, writers.back().get());
  };
  for (std::uint32_t s = 0; s < 2; ++s) attach(s);

  // The hook is the durable deployment's one-stop Begin callback: it runs
  // after the grown topology is published, attaches logs to the new
  // shards, and writes the post-Begin checkpoint — success marks the
  // rebalance checkpointed, so RebalanceTo is safe end to end.
  std::ostringstream ckpt_out;
  int hook_runs = 0;
  index.SetRebalanceCheckpointHook([&]() -> Status {
    ++hook_runs;
    for (std::uint32_t s = 2; s < index.num_shards(); ++s) attach(s);
    return WriteShardedCheckpoint(
        index, std::vector<std::uint64_t>(index.num_shards(), 0), ckpt_out);
  });
  ASSERT_TRUE(index.RebalanceTo(4).ok());
  EXPECT_EQ(hook_runs, 1);

  // The hook's checkpoint + the captured logs round-trip every sid.
  std::istringstream ckpt_in(ckpt_out.str());
  std::vector<std::unique_ptr<std::istringstream>> wal_in;
  std::vector<std::istream*> wal_ptrs;
  for (auto& stream : wal_streams) {
    wal_in.push_back(std::make_unique<std::istringstream>(stream->str()));
    wal_ptrs.push_back(wal_in.back().get());
  }
  auto rec = RecoverShardedIndex(ckpt_in, wal_ptrs, TestOptions(2));
  ASSERT_TRUE(rec.ok()) << rec.status().ToString();
  EXPECT_EQ(rec->index->num_live_sets(), sets.size());
  auto answer = rec->index->Query(sets[0], 0.0, 1.0);
  ASSERT_TRUE(answer.ok());
  EXPECT_EQ(answer->sids, AllSids(sets.size()));
  index.epoch_manager()->Quiesce();
}

TEST_F(RebalanceTest, CheckpointHookFailureLeavesRebalanceUncheckpointed) {
  const SetCollection sets = MakeSets(30, 6262);
  ShardedSetSimilarityIndex index = BuildAt(sets, 2);
  index.EnableConcurrentWrites();
  std::ostringstream wal_stream;
  WalWriter writer(wal_stream, kWalFirstLsn);
  index.AttachShardWal(0, &writer);

  index.SetRebalanceCheckpointHook(
      [] { return Status::Unavailable("checkpoint device offline"); });
  EXPECT_TRUE(index.BeginRebalance(3).IsUnavailable());
  // The rebalance stays active (the topology is already published) but
  // un-checkpointed, so moves keep refusing until the caller recovers.
  RebalanceStatus status = index.rebalance_status();
  EXPECT_TRUE(status.active);
  EXPECT_FALSE(status.checkpointed);
  EXPECT_TRUE(index.StepRebalance(1).status().IsFailedPrecondition());

  // Recovery path: the caller retries durability out of band and declares.
  ASSERT_TRUE(index.MarkRebalanceCheckpointed().ok());
  for (;;) {
    auto remaining = index.StepRebalance(8);
    ASSERT_TRUE(remaining.ok());
    if (*remaining == 0) break;
  }
  ASSERT_TRUE(index.FinishRebalance().ok());
  index.epoch_manager()->Quiesce();
}

TEST_F(RebalanceTest, MoveApplyFailureAfterCommitPointWedgesTheRebalance) {
  SKIP_WITHOUT_INJECTION();
  const SetCollection sets = MakeSets(30, 8282);
  auto& fi = fault::FaultInjector::Default();
  ShardedSetSimilarityIndex index = BuildAt(sets, 2);
  index.EnableConcurrentWrites();

  std::vector<std::unique_ptr<std::ostringstream>> wal_streams;
  std::vector<std::unique_ptr<WalWriter>> writers;
  auto attach = [&](std::uint32_t s) {
    wal_streams.push_back(std::make_unique<std::ostringstream>());
    writers.push_back(
        std::make_unique<WalWriter>(*wal_streams.back(), kWalFirstLsn));
    index.AttachShardWal(s, writers.back().get());
  };
  for (std::uint32_t s = 0; s < 2; ++s) attach(s);
  ASSERT_TRUE(index.BeginRebalance(3).ok());
  for (std::uint32_t s = 2; s < index.num_shards(); ++s) attach(s);
  std::ostringstream ckpt_out;
  ASSERT_TRUE(WriteShardedCheckpoint(
                  index, std::vector<std::uint64_t>(index.num_shards(), 0),
                  ckpt_out)
                  .ok());
  ASSERT_TRUE(index.MarkRebalanceCheckpointed().ok());

  // Fail the first destination-store append: by then the move's kMoveIn is
  // already durable, so the log and memory disagree — the failure must NOT
  // be treated as retryable (re-running would diverge from what recovery
  // replays). The state machine wedges instead.
  fi.Enable(fault::SeedFromEnv(7));
  fi.Arm("store/add", fault::FaultKind::kWriteError,
         fault::FaultSchedule::Once(/*after_hits=*/0));
  auto stepped = index.StepRebalance(1);
  fi.Reset();
  ASSERT_FALSE(stepped.ok());
  EXPECT_TRUE(stepped.status().IsInternal()) << stepped.status().ToString();

  RebalanceStatus status = index.rebalance_status();
  EXPECT_TRUE(status.wedged);
  // Terminal: Step and Finish keep refusing even though the fault cleared —
  // the durable truth is checkpoint + WALs, not this process's memory.
  EXPECT_TRUE(index.StepRebalance(1).status().IsFailedPrecondition());
  EXPECT_TRUE(index.FinishRebalance().IsFailedPrecondition());
  index.epoch_manager()->Quiesce();
}

// ---------------------------------------------------------------------------
// Cross-log resurrection: a sid whose records span logs (insert in one
// shard's log, then rebalanced away, then erased wherever it lives now)
// must stay erased through recovery even when the erase's log replays
// before the insert's.
// ---------------------------------------------------------------------------

TEST_F(RebalanceTest, RecoveryDoesNotResurrectSidsErasedAcrossLogs) {
  const SetCollection sets = MakeSets(24, 7777);
  Rng rng(4242);
  ShardedSetSimilarityIndex index = BuildAt(sets, 2);
  index.EnableConcurrentWrites();

  std::vector<std::unique_ptr<std::ostringstream>> wal_streams;
  std::vector<std::unique_ptr<WalWriter>> writers;
  for (std::uint32_t s = 0; s < 2; ++s) {
    wal_streams.push_back(std::make_unique<std::ostringstream>());
    writers.push_back(
        std::make_unique<WalWriter>(*wal_streams.back(), kWalFirstLsn));
    index.AttachShardWal(s, writers.back().get());
  }
  // T0: the recovery cut. Everything after lives only in the logs.
  std::ostringstream ckpt_out;
  ASSERT_TRUE(
      WriteShardedCheckpoint(index, {0, 0}, ckpt_out).ok());

  // A fresh sid that routes to shard 1, so its kInsert lands in log 1.
  ShardMap probe(2);
  SetId x = static_cast<SetId>(sets.size());
  while (probe.ShardOf(x) != 1) ++x;
  ASSERT_TRUE(index.Insert(x, RandomSet(rng)).ok());

  // Shrink 2 -> 1: x's kMoveOut lands in log 1, its kMoveIn (the commit
  // point) in log 0. The caller here deliberately declares the checkpoint
  // without re-writing it — the undisciplined caller the tombstone pass
  // must survive.
  ASSERT_TRUE(index.BeginRebalance(1).ok());
  ASSERT_TRUE(index.MarkRebalanceCheckpointed().ok());
  for (;;) {
    auto remaining = index.StepRebalance(8);
    ASSERT_TRUE(remaining.ok());
    if (*remaining == 0) break;
  }
  ASSERT_TRUE(index.FinishRebalance().ok());
  // x now lives at shard 0; the erase's kErase lands in log 0 — a
  // *different* log from the kInsert, and one that replays first.
  ASSERT_TRUE(index.Erase(x).ok());

  std::istringstream ckpt_in(ckpt_out.str());
  std::istringstream wal0_in(wal_streams[0]->str());
  std::istringstream wal1_in(wal_streams[1]->str());
  std::vector<std::istream*> wal_ptrs = {&wal0_in, &wal1_in};
  auto rec = RecoverShardedIndex(ckpt_in, wal_ptrs, TestOptions(2));
  ASSERT_TRUE(rec.ok()) << rec.status().ToString();
  // Shard-order replay applies log 0's kMoveIn + kErase before it ever
  // sees log 1's kInsert; without cross-log tombstones that stale insert
  // would resurrect the erased sid.
  EXPECT_TRUE(LocationsOf(*rec->index, x).empty())
      << "erased sid resurrected by cross-log replay";
  EXPECT_EQ(rec->index->num_live_sets(), sets.size());
  auto answer = rec->index->Query(sets[0], 0.0, 1.0);
  ASSERT_TRUE(answer.ok());
  EXPECT_FALSE(
      std::binary_search(answer->sids.begin(), answer->sids.end(), x));
  EXPECT_EQ(answer->sids, AllSids(sets.size()));
  index.epoch_manager()->Quiesce();
}

}  // namespace
}  // namespace shard
}  // namespace ssr
