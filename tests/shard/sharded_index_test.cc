// ShardedSetSimilarityIndex contract tests: partitioning, identity of the
// merged answers with an unsharded reference index at several shard counts
// (candidate membership is a pure function of signatures, so partitioning
// must not change results; recall against brute force is the LSH filters'
// tunable and is bounded, not pinned, here), dynamic routing
// (Insert/Erase), snapshot round-trips, per-shard salvage, and the
// degraded-shard semantics (tagged subsets, never supersets; kFailFast
// errors).

#include "shard/sharded_index.h"

#include <algorithm>
#include <cstdlib>
#include <memory>
#include <sstream>
#include <vector>

#include <gtest/gtest.h>

#include "core/set_similarity_index.h"
#include "storage/set_store.h"
#include "util/random.h"
#include "util/set_ops.h"

namespace ssr {
namespace shard {
namespace {

constexpr double kEps = 1e-12;  // matches the index's verification slack

SetCollection MakeSets(std::size_t n, std::uint64_t seed = 8787) {
  SetCollection sets;
  Rng rng(seed);
  for (std::size_t i = 0; i < n; ++i) {
    ElementSet s;
    const std::size_t size = 10 + rng.Uniform(60);
    for (std::size_t j = 0; j < size; ++j) s.push_back(rng.Uniform(6000));
    NormalizeSet(s);
    if (s.empty()) s.push_back(1);
    sets.push_back(s);
  }
  return sets;
}

IndexLayout TestLayout() {
  IndexLayout layout;
  layout.delta = 0.4;
  layout.points = {{0.15, FilterKind::kDissimilarity, 8, 0},
                   {0.4, FilterKind::kDissimilarity, 8, 0},
                   {0.4, FilterKind::kSimilarity, 8, 0},
                   {0.75, FilterKind::kSimilarity, 8, 0}};
  return layout;
}

ShardedIndexOptions TestOptions(std::uint32_t num_shards) {
  ShardedIndexOptions options;
  options.num_shards = num_shards;
  options.index.embedding.minhash.num_hashes = 80;
  options.index.embedding.minhash.seed = 777;
  options.index.seed = 4242;
  return options;
}

std::vector<SetId> BruteForce(const SetCollection& sets, const ElementSet& q,
                              double s1, double s2) {
  std::vector<SetId> out;
  for (SetId sid = 0; sid < sets.size(); ++sid) {
    const double sim = Jaccard(sets[sid], q);
    if (sim >= s1 - kEps && sim <= s2 + kEps) out.push_back(sid);
  }
  return out;
}

bool IsSubset(const std::vector<SetId>& a, const std::vector<SetId>& b) {
  return std::includes(b.begin(), b.end(), a.begin(), a.end());
}

// The unsharded reference: one SetSimilarityIndex over the same collection
// with the same options. Sharded answers must be bit-identical to it —
// that is the property partitioning must preserve.
struct ReferenceIndex {
  std::unique_ptr<SetStore> store;
  std::unique_ptr<SetSimilarityIndex> index;

  std::vector<SetId> Query(const ElementSet& q, double s1, double s2) const {
    auto r = index->Query(q, s1, s2);
    EXPECT_TRUE(r.ok()) << r.status().ToString();
    return r.ok() ? r->sids : std::vector<SetId>{};
  }
};

ReferenceIndex MakeReference(const SetCollection& sets,
                             const ShardedIndexOptions& options) {
  ReferenceIndex ref;
  ref.store = std::make_unique<SetStore>();
  for (const ElementSet& s : sets) {
    auto sid = ref.store->Add(s);
    EXPECT_TRUE(sid.ok());
  }
  auto built = SetSimilarityIndex::Build(*ref.store, TestLayout(),
                                         options.index);
  EXPECT_TRUE(built.ok()) << built.status().ToString();
  if (built.ok()) {
    ref.index =
        std::make_unique<SetSimilarityIndex>(std::move(built).value());
  }
  return ref;
}

TEST(ResolveShardCountTest, ExplicitWinsEnvFallsBackToOne) {
  EXPECT_EQ(ResolveShardCount(3), 3u);
  unsetenv("SSR_SHARDS");
  EXPECT_EQ(ResolveShardCount(0), 1u);
  setenv("SSR_SHARDS", "5", 1);
  EXPECT_EQ(ResolveShardCount(0), 5u);
  EXPECT_EQ(ResolveShardCount(2), 2u) << "explicit beats the env";
  setenv("SSR_SHARDS", "junk", 1);
  EXPECT_EQ(ResolveShardCount(0), 1u);
  setenv("SSR_SHARDS", "-4", 1);
  EXPECT_EQ(ResolveShardCount(0), 1u);
  unsetenv("SSR_SHARDS");
}

TEST(ShardedIndexTest, BuildPartitionsTheCollectionByTheMap) {
  const SetCollection sets = MakeSets(200);
  auto built =
      ShardedSetSimilarityIndex::Build(sets, TestLayout(), TestOptions(4));
  ASSERT_TRUE(built.ok()) << built.status().ToString();
  const ShardedSetSimilarityIndex& index = *built;

  EXPECT_EQ(index.num_shards(), 4u);
  EXPECT_EQ(index.num_live_sets(), sets.size());
  EXPECT_EQ(index.shard_map().num_assigned(), sets.size());

  std::size_t total = 0;
  for (std::uint32_t s = 0; s < 4; ++s) {
    ASSERT_NE(index.shard_store(s), nullptr);
    ASSERT_NE(index.shard_index(s), nullptr);
    total += index.shard_store(s)->size();
    // Every local sid routes back to a global sid the map placed here, and
    // the shard's copy is the original set.
    const std::vector<SetId>& to_global = index.global_of_local(s);
    EXPECT_EQ(to_global.size(), index.shard_store(s)->size());
    for (SetId local = 0; local < to_global.size(); ++local) {
      const SetId global = to_global[local];
      EXPECT_EQ(index.shard_map().ShardOf(global), s);
      auto copy = const_cast<SetStore*>(index.shard_store(s))->Get(local);
      ASSERT_TRUE(copy.ok());
      EXPECT_EQ(*copy, sets[global]) << "global " << global;
    }
  }
  EXPECT_EQ(total, sets.size());
  EXPECT_EQ(index.build_stats().per_shard.size(), 4u);
  EXPECT_GT(index.build_stats().modeled_makespan_seconds, 0.0);
}

TEST(ShardedIndexTest, QueryMatchesTheUnshardedIndexAtEveryShardCount) {
  const SetCollection sets = MakeSets(250);
  const ReferenceIndex ref = MakeReference(sets, TestOptions(0));
  ASSERT_NE(ref.index, nullptr);
  Rng rng(11);
  for (std::uint32_t num_shards : {1u, 2u, 4u, 7u}) {
    auto built = ShardedSetSimilarityIndex::Build(sets, TestLayout(),
                                                  TestOptions(num_shards));
    ASSERT_TRUE(built.ok()) << built.status().ToString();
    for (int t = 0; t < 25; ++t) {
      const ElementSet& q = sets[rng.Uniform(sets.size())];
      const double s1 = rng.NextDouble() * 0.8;
      const double s2 = s1 + rng.NextDouble() * (1.0 - s1);
      auto r = built->Query(q, s1, s2);
      ASSERT_TRUE(r.ok()) << r.status().ToString();
      EXPECT_EQ(r->sids, ref.Query(q, s1, s2))
          << "shards " << num_shards << " query " << t;
      // Precision against brute force: verification admits no false
      // positives, sharded or not.
      EXPECT_TRUE(IsSubset(r->sids, BruteForce(sets, q, s1, s2)))
          << "false positive at shards " << num_shards << " query " << t;
      EXPECT_FALSE(r->partial);
      EXPECT_TRUE(r->degraded_shards.empty());
      EXPECT_TRUE(std::is_sorted(r->sids.begin(), r->sids.end()));
      // The merged stats are the shard-order sum of the per-shard stats.
      std::size_t candidates = 0;
      for (const QueryStats& ps : r->per_shard) candidates += ps.candidates;
      EXPECT_EQ(r->stats.candidates, candidates);
      EXPECT_EQ(r->stats.results, r->sids.size());
    }
    // Full-range queries take the kFullCollection plan and are exact: the
    // one place brute-force identity is a guarantee, not a recall roll.
    auto full = built->Query(sets[0], 0.0, 1.0);
    ASSERT_TRUE(full.ok());
    EXPECT_EQ(full->sids, BruteForce(sets, sets[0], 0.0, 1.0))
        << "shards " << num_shards;
  }
}

TEST(ShardedIndexTest, QueryRejectsInvalidRanges) {
  const SetCollection sets = MakeSets(50);
  auto built =
      ShardedSetSimilarityIndex::Build(sets, TestLayout(), TestOptions(2));
  ASSERT_TRUE(built.ok());
  auto r = built->Query(sets[0], 0.9, 0.2);
  EXPECT_FALSE(r.ok());
  EXPECT_TRUE(r.status().IsInvalidArgument());
}

TEST(ShardedIndexTest, EmptyAndTinyCollectionsWork) {
  auto empty = ShardedSetSimilarityIndex::Build(SetCollection{}, TestLayout(),
                                                TestOptions(7));
  ASSERT_TRUE(empty.ok()) << empty.status().ToString();
  auto r = empty->Query({1, 2, 3}, 0.0, 1.0);
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  EXPECT_TRUE(r->sids.empty());

  // Fewer sets than shards: some shards stay empty and must still answer.
  const SetCollection tiny = MakeSets(3);
  auto built =
      ShardedSetSimilarityIndex::Build(tiny, TestLayout(), TestOptions(7));
  ASSERT_TRUE(built.ok()) << built.status().ToString();
  auto all = built->Query(tiny[0], 0.0, 1.0);
  ASSERT_TRUE(all.ok());
  EXPECT_EQ(all->sids, BruteForce(tiny, tiny[0], 0.0, 1.0));
}

TEST(ShardedIndexTest, InsertAndEraseRouteToTheRightShard) {
  SetCollection sets = MakeSets(120);
  auto built =
      ShardedSetSimilarityIndex::Build(sets, TestLayout(), TestOptions(4));
  ASSERT_TRUE(built.ok());
  ShardedSetSimilarityIndex& index = *built;

  // The unsharded reference sees the identical churn, so post-churn
  // answers must still be bit-identical.
  ReferenceIndex ref = MakeReference(sets, TestOptions(0));
  ASSERT_NE(ref.index, nullptr);

  // Erase of a never-inserted global sid: NotFound, same contract as
  // SetSimilarityIndex::Erase.
  EXPECT_TRUE(index.Erase(5000).IsNotFound());
  EXPECT_TRUE(ref.index->Erase(5000).IsNotFound());

  // Churn: erase a third, insert fresh sids.
  std::vector<bool> alive(sets.size(), true);
  for (SetId sid = 0; sid < sets.size(); sid += 3) {
    ASSERT_TRUE(index.Erase(sid).ok()) << "sid " << sid;
    ASSERT_TRUE(ref.index->Erase(sid).ok()) << "sid " << sid;
    ASSERT_TRUE(ref.store->Delete(sid).ok()) << "sid " << sid;
    alive[sid] = false;
    EXPECT_TRUE(index.Erase(sid).IsNotFound()) << "double erase, sid " << sid;
  }
  const SetCollection extra = MakeSets(40, /*seed=*/12345);
  for (SetId i = 0; i < extra.size(); ++i) {
    const SetId global = static_cast<SetId>(sets.size()) + i;
    ASSERT_TRUE(index.Insert(global, extra[i]).ok()) << "sid " << global;
    EXPECT_TRUE(index.Insert(global, extra[i]).IsAlreadyExists());
    auto stored = ref.store->Add(extra[i]);
    ASSERT_TRUE(stored.ok());
    ASSERT_EQ(*stored, global) << "reference store drifted";
    ASSERT_TRUE(ref.index->Insert(global, extra[i]).ok()) << "sid " << global;
  }
  EXPECT_EQ(index.num_live_sets(),
            sets.size() - (sets.size() + 2) / 3 + extra.size());

  // Post-churn collection, for the precision bound.
  SetCollection current = sets;
  current.insert(current.end(), extra.begin(), extra.end());
  std::vector<bool> is_live = alive;
  is_live.resize(current.size(), true);

  Rng rng(77);
  for (int t = 0; t < 20; ++t) {
    const ElementSet& q = current[rng.Uniform(current.size())];
    const double s1 = rng.NextDouble() * 0.8;
    const double s2 = s1 + rng.NextDouble() * (1.0 - s1);
    auto r = index.Query(q, s1, s2);
    ASSERT_TRUE(r.ok()) << r.status().ToString();
    EXPECT_EQ(r->sids, ref.Query(q, s1, s2)) << "query " << t;
    std::vector<SetId> in_range;
    for (SetId sid = 0; sid < current.size(); ++sid) {
      if (!is_live[sid]) continue;
      const double sim = Jaccard(current[sid], q);
      if (sim >= s1 - kEps && sim <= s2 + kEps) in_range.push_back(sid);
    }
    EXPECT_TRUE(IsSubset(r->sids, in_range))
        << "false positive or dead sid answered; query " << t;
  }
}

TEST(ShardedIndexTest, SaveLoadRoundTripsPlacementAndAnswers) {
  const SetCollection sets = MakeSets(150);
  auto built =
      ShardedSetSimilarityIndex::Build(sets, TestLayout(), TestOptions(4));
  ASSERT_TRUE(built.ok());
  // A little churn first so holes round-trip too.
  ASSERT_TRUE(built->Erase(7).ok());
  ASSERT_TRUE(built->Erase(70).ok());

  std::stringstream buf;
  ASSERT_TRUE(built->SaveTo(buf).ok());
  auto loaded = ShardedSetSimilarityIndex::Load(buf, TestOptions(0));
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();

  EXPECT_EQ(loaded->num_shards(), built->num_shards());
  EXPECT_EQ(loaded->num_live_sets(), built->num_live_sets());
  EXPECT_EQ(loaded->shard_map().ContentDigest(),
            built->shard_map().ContentDigest());
  EXPECT_EQ(loaded->ContentDigest(), built->ContentDigest());

  Rng rng(33);
  for (int t = 0; t < 15; ++t) {
    const ElementSet& q = sets[rng.Uniform(sets.size())];
    const double s1 = rng.NextDouble() * 0.8;
    const double s2 = s1 + rng.NextDouble() * (1.0 - s1);
    auto a = built->Query(q, s1, s2);
    auto b = loaded->Query(q, s1, s2);
    ASSERT_TRUE(a.ok());
    ASSERT_TRUE(b.ok()) << b.status().ToString();
    EXPECT_EQ(a->sids, b->sids) << "query " << t;
  }

  // The loaded index stays dynamic: erase + insert still route correctly.
  ASSERT_TRUE(loaded->Erase(11).ok());
  EXPECT_TRUE(loaded->Erase(7).IsNotFound()) << "hole round-tripped as dead";
  ASSERT_TRUE(loaded->Insert(5000, sets[0]).ok());
  auto again = loaded->Query(sets[0], 0.999, 1.0);
  ASSERT_TRUE(again.ok());
  EXPECT_TRUE(std::find(again->sids.begin(), again->sids.end(), 5000) !=
              again->sids.end());
}

// Flips bytes inside shard `s`'s store-section payload (which is the
// nested store snapshot, headers included) so the shard is unrecoverable.
std::string CorruptShardStore(std::string blob, std::uint32_t s) {
  const std::string name = "shard" + std::to_string(s) + "_store";
  const std::size_t name_pos = blob.find(name);
  EXPECT_NE(name_pos, std::string::npos);
  // Section layout after the name: u64 payload size, u32 crc, payload. The
  // nested snapshot's own header (magic + version) starts the payload;
  // mangling it defeats both the outer CRC and any inner salvage.
  const std::size_t payload = name_pos + name.size() + 8 + 4;
  for (std::size_t i = 0; i < 16 && payload + i < blob.size(); ++i) {
    blob[payload + i] ^= 0x5a;
  }
  return blob;
}

TEST(ShardedIndexTest, StrictLoadRejectsADamagedShardSection) {
  const SetCollection sets = MakeSets(120);
  auto built =
      ShardedSetSimilarityIndex::Build(sets, TestLayout(), TestOptions(4));
  ASSERT_TRUE(built.ok());
  std::stringstream buf;
  ASSERT_TRUE(built->SaveTo(buf).ok());
  std::istringstream damaged(CorruptShardStore(buf.str(), 1));
  auto loaded = ShardedSetSimilarityIndex::Load(damaged, TestOptions(0));
  ASSERT_FALSE(loaded.ok());
  EXPECT_TRUE(loaded.status().IsCorruption()) << loaded.status().ToString();
}

TEST(ShardedIndexTest, SalvageQuarantinesOnlyTheDamagedShard) {
  const SetCollection sets = MakeSets(160);
  auto built =
      ShardedSetSimilarityIndex::Build(sets, TestLayout(), TestOptions(4));
  ASSERT_TRUE(built.ok());
  const std::size_t lost = built->shard_store(1)->size();
  ASSERT_GT(lost, 0u);
  std::stringstream buf;
  ASSERT_TRUE(built->SaveTo(buf).ok());

  RecoveryReport report;
  SnapshotLoadOptions salvage;
  salvage.salvage = true;
  salvage.report = &report;
  std::istringstream damaged(CorruptShardStore(buf.str(), 1));
  auto loaded =
      ShardedSetSimilarityIndex::Load(damaged, TestOptions(0), salvage);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();

  EXPECT_TRUE(report.salvaged);
  EXPECT_EQ(report.records_quarantined, lost);
  EXPECT_TRUE(loaded->shard_degraded(1));
  EXPECT_EQ(loaded->shard_index(1), nullptr);
  EXPECT_EQ(loaded->num_live_sets(), sets.size() - lost);
  for (std::uint32_t s : {0u, 2u, 3u}) {
    EXPECT_FALSE(loaded->shard_degraded(s));
    EXPECT_EQ(loaded->shard_store(s)->size(), built->shard_store(s)->size());
  }

  // Queries keep serving from the healthy shards: tagged partial, exactly
  // the pre-damage answer minus shard 1's sids, never a superset of it.
  Rng rng(55);
  for (int t = 0; t < 15; ++t) {
    const ElementSet& q = sets[rng.Uniform(sets.size())];
    const double s1 = rng.NextDouble() * 0.8;
    const double s2 = s1 + rng.NextDouble() * (1.0 - s1);
    auto before = built->Query(q, s1, s2);
    ASSERT_TRUE(before.ok());
    auto r = loaded->Query(q, s1, s2);
    ASSERT_TRUE(r.ok()) << r.status().ToString();
    EXPECT_TRUE(r->partial);
    EXPECT_TRUE(r->stats.degraded);
    ASSERT_EQ(r->degraded_shards.size(), 1u);
    EXPECT_EQ(r->degraded_shards[0], 1u);
    std::vector<SetId> expect;
    for (SetId sid : before->sids) {
      if (loaded->shard_map().ShardOf(sid) != 1) expect.push_back(sid);
    }
    EXPECT_EQ(r->sids, expect) << "query " << t;
  }

  // The lost shard's sids are known-but-unavailable, not silently gone.
  for (SetId sid = 0; sid < sets.size(); ++sid) {
    if (loaded->shard_map().ShardOf(sid) == 1) {
      EXPECT_TRUE(loaded->Erase(sid).IsUnavailable()) << "sid " << sid;
      break;
    }
  }
}

TEST(ShardedIndexTest, SalvageRebuildsAnIndexWithADamagedIndexSection) {
  const SetCollection sets = MakeSets(120);
  auto built =
      ShardedSetSimilarityIndex::Build(sets, TestLayout(), TestOptions(3));
  ASSERT_TRUE(built.ok());
  std::stringstream buf;
  ASSERT_TRUE(built->SaveTo(buf).ok());

  // Damage shard 2's *index* payload. Its store survives, so salvage
  // rebuilds the index from the records: zero data loss, full answers.
  std::string blob = buf.str();
  const std::string name = "shard2_index";
  const std::size_t payload = blob.find(name) + name.size() + 8 + 4;
  for (std::size_t i = 0; i < 16; ++i) blob[payload + i] ^= 0x5a;

  RecoveryReport report;
  SnapshotLoadOptions salvage;
  salvage.salvage = true;
  salvage.report = &report;
  std::istringstream damaged(blob);
  auto loaded =
      ShardedSetSimilarityIndex::Load(damaged, TestOptions(0), salvage);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  EXPECT_TRUE(report.salvaged);
  EXPECT_EQ(report.signatures_rebuilt, built->shard_store(2)->size());
  EXPECT_FALSE(loaded->shard_degraded(2));
  EXPECT_EQ(loaded->num_live_sets(), sets.size());

  Rng rng(66);
  for (int t = 0; t < 10; ++t) {
    const ElementSet& q = sets[rng.Uniform(sets.size())];
    const double s1 = rng.NextDouble() * 0.8;
    const double s2 = s1 + rng.NextDouble() * (1.0 - s1);
    auto before = built->Query(q, s1, s2);
    auto r = loaded->Query(q, s1, s2);
    ASSERT_TRUE(before.ok());
    ASSERT_TRUE(r.ok());
    EXPECT_FALSE(r->partial);
    EXPECT_EQ(r->sids, before->sids) << "query " << t;
  }
}

TEST(ShardedIndexTest, DegradedShardTagsPartialSubsetsUnderPartialPolicy) {
  const SetCollection sets = MakeSets(140);
  auto built =
      ShardedSetSimilarityIndex::Build(sets, TestLayout(), TestOptions(4));
  ASSERT_TRUE(built.ok());

  // Healthy answers first; with shard 2 degraded, each answer must be
  // exactly the healthy answer minus shard 2's sids — a subset of the
  // brute-force truth (never a superset), tagged partial.
  struct Probe {
    ElementSet q;
    double s1, s2;
    std::vector<SetId> healthy;
  };
  std::vector<Probe> probes;
  Rng rng(88);
  for (int t = 0; t < 15; ++t) {
    Probe p;
    p.q = sets[rng.Uniform(sets.size())];
    p.s1 = rng.NextDouble() * 0.8;
    p.s2 = p.s1 + rng.NextDouble() * (1.0 - p.s1);
    auto healthy = built->Query(p.q, p.s1, p.s2);
    ASSERT_TRUE(healthy.ok());
    EXPECT_FALSE(healthy->partial);
    p.healthy = healthy->sids;
    probes.push_back(std::move(p));
  }

  built->SetShardDegraded(2, true);
  for (std::size_t t = 0; t < probes.size(); ++t) {
    const Probe& p = probes[t];
    auto r = built->Query(p.q, p.s1, p.s2);
    ASSERT_TRUE(r.ok()) << r.status().ToString();
    EXPECT_TRUE(r->partial);
    EXPECT_TRUE(r->stats.degraded);
    ASSERT_EQ(r->degraded_shards.size(), 1u);
    EXPECT_EQ(r->degraded_shards[0], 2u);
    EXPECT_TRUE(r->shard_status[2].IsUnavailable());
    EXPECT_TRUE(IsSubset(r->sids, BruteForce(sets, p.q, p.s1, p.s2)))
        << "never a superset; query " << t;
    std::vector<SetId> expect;
    for (SetId sid : p.healthy) {
      if (built->shard_map().ShardOf(sid) != 2) expect.push_back(sid);
    }
    EXPECT_EQ(r->sids, expect) << "query " << t;
  }

  built->SetShardDegraded(2, false);
  auto healed = built->Query(probes[0].q, probes[0].s1, probes[0].s2);
  ASSERT_TRUE(healed.ok());
  EXPECT_FALSE(healed->partial);
  EXPECT_EQ(healed->sids, probes[0].healthy);
}

TEST(ShardedIndexTest, DegradedShardFailsTheQueryUnderFailFast) {
  const SetCollection sets = MakeSets(80);
  ShardedIndexOptions options = TestOptions(4);
  options.on_shard_failure = ShardFailurePolicy::kFailFast;
  auto built = ShardedSetSimilarityIndex::Build(sets, TestLayout(), options);
  ASSERT_TRUE(built.ok());
  built->SetShardDegraded(0, true);
  auto r = built->Query(sets[0], 0.0, 1.0);
  ASSERT_FALSE(r.ok());
  EXPECT_TRUE(r.status().IsUnavailable());
  // Writes to the degraded shard also refuse.
  for (SetId sid = 5000; sid < 5100; ++sid) {
    const Status st = built->Insert(sid, sets[0]);
    if (st.IsUnavailable()) return;  // found a sid routed to shard 0
    ASSERT_TRUE(st.ok());
  }
  FAIL() << "no probe sid routed to the degraded shard";
}

TEST(ShardedIndexTest, BuildsAreDeterministicAcrossThreadCounts) {
  const SetCollection sets = MakeSets(120);
  ShardedIndexOptions serial = TestOptions(3);
  serial.index.num_threads = 1;
  ShardedIndexOptions parallel = TestOptions(3);
  parallel.index.num_threads = 4;
  auto a = ShardedSetSimilarityIndex::Build(sets, TestLayout(), serial);
  auto b = ShardedSetSimilarityIndex::Build(sets, TestLayout(), parallel);
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  EXPECT_EQ(a->ContentDigest(), b->ContentDigest());
}

}  // namespace
}  // namespace shard
}  // namespace ssr
