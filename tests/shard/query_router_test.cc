// QueryRouter equivalence and scheduling tests: parallel scatter/gather
// answers are identical to the serial ShardedSetSimilarityIndex::Query at
// every worker count, batches match query-at-a-time routing, failure
// semantics follow the ShardFailurePolicy, and the modeled makespan
// bookkeeping behaves. These run under TSan in CI (tsan-critical label) —
// the scatter path is the only place shard stores are read concurrently.

#include "shard/query_router.h"

#include <algorithm>
#include <memory>
#include <vector>

#include <gtest/gtest.h>

#include "shard/sharded_index.h"
#include "util/random.h"
#include "util/set_ops.h"

namespace ssr {
namespace shard {
namespace {

struct Fixture {
  SetCollection sets;
  std::unique_ptr<ShardedSetSimilarityIndex> index;
};

std::unique_ptr<Fixture> BuildFixture(std::size_t n, std::uint32_t num_shards,
                                      ShardFailurePolicy policy =
                                          ShardFailurePolicy::kPartialResults) {
  auto f = std::make_unique<Fixture>();
  Rng rng(8787);
  for (std::size_t i = 0; i < n; ++i) {
    ElementSet s;
    const std::size_t size = 10 + rng.Uniform(60);
    for (std::size_t j = 0; j < size; ++j) s.push_back(rng.Uniform(6000));
    NormalizeSet(s);
    if (s.empty()) s.push_back(1);
    f->sets.push_back(s);
  }
  IndexLayout layout;
  layout.delta = 0.4;
  layout.points = {{0.15, FilterKind::kDissimilarity, 8, 0},
                   {0.4, FilterKind::kDissimilarity, 8, 0},
                   {0.4, FilterKind::kSimilarity, 8, 0},
                   {0.75, FilterKind::kSimilarity, 8, 0}};
  ShardedIndexOptions options;
  options.num_shards = num_shards;
  options.index.embedding.minhash.num_hashes = 80;
  options.index.embedding.minhash.seed = 777;
  options.index.seed = 4242;
  options.on_shard_failure = policy;
  auto built = ShardedSetSimilarityIndex::Build(f->sets, layout, options);
  EXPECT_TRUE(built.ok()) << built.status().ToString();
  if (!built.ok()) return nullptr;
  f->index =
      std::make_unique<ShardedSetSimilarityIndex>(std::move(built).value());
  return f;
}

std::vector<exec::BatchQuery> MakeBatch(const Fixture& f, std::size_t n,
                                        std::uint64_t seed) {
  std::vector<exec::BatchQuery> batch;
  Rng rng(seed);
  for (std::size_t t = 0; t < n; ++t) {
    exec::BatchQuery q;
    q.query = f.sets[rng.Uniform(f.sets.size())];
    q.sigma1 = rng.NextDouble() * 0.8;
    q.sigma2 = q.sigma1 + rng.NextDouble() * (1.0 - q.sigma1);
    batch.push_back(std::move(q));
  }
  return batch;
}

TEST(QueryRouterTest, MatchesSerialQueryAtEveryWorkerCount) {
  auto f = BuildFixture(250, 4);
  ASSERT_NE(f, nullptr);
  const auto batch = MakeBatch(*f, 30, 11);
  for (std::size_t threads : {std::size_t{1}, std::size_t{2}, std::size_t{4},
                              std::size_t{8}}) {
    QueryRouterOptions options;
    options.num_threads = threads;
    QueryRouter router(*f->index, options);
    ASSERT_EQ(router.num_threads(), threads);
    for (const exec::BatchQuery& q : batch) {
      auto serial = f->index->Query(q.query, q.sigma1, q.sigma2);
      auto routed = router.Query(q.query, q.sigma1, q.sigma2);
      ASSERT_TRUE(serial.ok());
      ASSERT_TRUE(routed.ok()) << routed.status().ToString();
      EXPECT_EQ(routed->sids, serial->sids) << "threads " << threads;
      EXPECT_EQ(routed->partial, serial->partial);
      // The gather is in shard order on both paths, so even the merged
      // stats agree counter for counter.
      EXPECT_EQ(routed->stats.candidates, serial->stats.candidates);
      EXPECT_EQ(routed->stats.bucket_accesses, serial->stats.bucket_accesses);
      EXPECT_EQ(routed->stats.sets_fetched, serial->stats.sets_fetched);
      EXPECT_EQ(routed->stats.results, serial->stats.results);
      ASSERT_EQ(routed->per_shard.size(), serial->per_shard.size());
      for (std::size_t s = 0; s < routed->per_shard.size(); ++s) {
        EXPECT_EQ(routed->per_shard[s].candidates,
                  serial->per_shard[s].candidates)
            << "shard " << s;
      }
    }
  }
}

TEST(QueryRouterTest, BatchMatchesQueryAtATimeRouting) {
  auto f = BuildFixture(250, 4);
  ASSERT_NE(f, nullptr);
  const auto batch = MakeBatch(*f, 50, 22);
  QueryRouterOptions options;
  options.num_threads = 4;
  QueryRouter router(*f->index, options);
  RoutedBatchResult result = router.RunBatch(batch);
  EXPECT_EQ(result.queries, batch.size());
  EXPECT_EQ(result.failed, 0u);
  EXPECT_EQ(result.threads_used, 4u);
  ASSERT_EQ(result.results.size(), batch.size());
  for (std::size_t i = 0; i < batch.size(); ++i) {
    ASSERT_TRUE(result.statuses[i].ok()) << result.statuses[i].ToString();
    auto serial =
        f->index->Query(batch[i].query, batch[i].sigma1, batch[i].sigma2);
    ASSERT_TRUE(serial.ok());
    EXPECT_EQ(result.results[i].sids, serial->sids) << "query " << i;
  }
  EXPECT_GT(result.wall_seconds, 0.0);
  EXPECT_GE(result.merge_seconds, 0.0);
  EXPECT_GT(result.modeled_makespan_seconds, 0.0);
  EXPECT_GT(result.modeled_qps, 0.0);
  // The modeled makespan treats shards as concurrent machines: the slowest
  // shard's batch makespan plus the merge, never the per-shard sum.
  double max_shard = 0.0, sum_shard = 0.0;
  for (const exec::BatchResult& br : result.per_shard) {
    max_shard = std::max(max_shard, br.modeled_makespan_seconds);
    sum_shard += br.modeled_makespan_seconds;
  }
  EXPECT_DOUBLE_EQ(result.modeled_makespan_seconds,
                   max_shard + result.merge_seconds);
  EXPECT_LE(max_shard, sum_shard);
}

TEST(QueryRouterTest, InvalidRangePropagatesAsInvalidArgument) {
  auto f = BuildFixture(60, 3);
  ASSERT_NE(f, nullptr);
  QueryRouter router(*f->index);
  auto r = router.Query(f->sets[0], 0.9, 0.2);
  ASSERT_FALSE(r.ok());
  EXPECT_TRUE(r.status().IsInvalidArgument());

  auto batch = MakeBatch(*f, 4, 33);
  exec::BatchQuery bad;
  bad.query = f->sets[0];
  bad.sigma1 = 0.9;
  bad.sigma2 = 0.2;
  batch.insert(batch.begin() + 1, bad);
  RoutedBatchResult result = router.RunBatch(batch);
  EXPECT_EQ(result.failed, 1u);
  EXPECT_TRUE(result.statuses[1].IsInvalidArgument());
  for (std::size_t i = 0; i < batch.size(); ++i) {
    if (i == 1) continue;
    EXPECT_TRUE(result.statuses[i].ok()) << "query " << i;
  }
}

TEST(QueryRouterTest, DegradedShardTagsPartialAnswersInBothPaths) {
  auto f = BuildFixture(200, 4);
  ASSERT_NE(f, nullptr);
  f->index->SetShardDegraded(1, true);
  QueryRouterOptions options;
  options.num_threads = 4;
  QueryRouter router(*f->index, options);

  const auto batch = MakeBatch(*f, 20, 44);
  for (const exec::BatchQuery& q : batch) {
    auto serial = f->index->Query(q.query, q.sigma1, q.sigma2);
    auto routed = router.Query(q.query, q.sigma1, q.sigma2);
    ASSERT_TRUE(serial.ok());
    ASSERT_TRUE(routed.ok());
    EXPECT_TRUE(routed->partial);
    EXPECT_TRUE(routed->stats.degraded);
    ASSERT_EQ(routed->degraded_shards.size(), 1u);
    EXPECT_EQ(routed->degraded_shards[0], 1u);
    EXPECT_EQ(routed->sids, serial->sids);
  }

  RoutedBatchResult result = router.RunBatch(batch);
  EXPECT_EQ(result.failed, 0u);
  for (std::size_t i = 0; i < batch.size(); ++i) {
    ASSERT_TRUE(result.statuses[i].ok());
    EXPECT_TRUE(result.results[i].partial) << "query " << i;
    auto serial =
        f->index->Query(batch[i].query, batch[i].sigma1, batch[i].sigma2);
    ASSERT_TRUE(serial.ok());
    EXPECT_EQ(result.results[i].sids, serial->sids) << "query " << i;
  }
}

TEST(QueryRouterTest, DegradedShardFailsQueriesUnderFailFast) {
  auto f = BuildFixture(100, 3, ShardFailurePolicy::kFailFast);
  ASSERT_NE(f, nullptr);
  f->index->SetShardDegraded(2, true);
  QueryRouterOptions options;
  options.num_threads = 2;
  QueryRouter router(*f->index, options);

  auto r = router.Query(f->sets[0], 0.0, 1.0);
  ASSERT_FALSE(r.ok());
  EXPECT_TRUE(r.status().IsUnavailable());

  const auto batch = MakeBatch(*f, 6, 55);
  RoutedBatchResult result = router.RunBatch(batch);
  EXPECT_EQ(result.failed, batch.size());
  for (const Status& st : result.statuses) {
    EXPECT_TRUE(st.IsUnavailable()) << st.ToString();
  }
}

TEST(QueryRouterTest, SingleShardRoutingDegeneratesToPlainBatching) {
  auto f = BuildFixture(150, 1);
  ASSERT_NE(f, nullptr);
  const auto batch = MakeBatch(*f, 25, 66);
  QueryRouterOptions options;
  options.num_threads = 4;
  QueryRouter router(*f->index, options);
  RoutedBatchResult routed = router.RunBatch(batch);

  exec::BatchExecutorOptions exec_options;
  exec_options.num_threads = 4;
  exec::BatchExecutor executor(*f->index->shard_index(0), exec_options);
  exec::BatchResult plain = executor.Run(batch);

  ASSERT_EQ(routed.results.size(), plain.results.size());
  EXPECT_EQ(routed.failed, plain.failed);
  for (std::size_t i = 0; i < batch.size(); ++i) {
    EXPECT_EQ(routed.results[i].sids, plain.results[i].sids) << "query " << i;
  }
}

}  // namespace
}  // namespace shard
}  // namespace ssr
