// Property tests for the ShardMap contract: total assignment, stability
// across save/load, and minimal movement under Rebalance — growing moves
// sids only *to* new shards, shrinking only *from* removed shards, and no
// sid ever hops between two surviving shards.

#include "shard/shard_map.h"

#include <map>
#include <sstream>
#include <vector>

#include <gtest/gtest.h>

#include "util/random.h"

namespace ssr {
namespace shard {
namespace {

TEST(ShardMapTest, AssignmentIsTotalAndIdempotent) {
  for (std::uint32_t num_shards : {1u, 2u, 4u, 7u}) {
    ShardMap map(num_shards);
    std::vector<std::uint32_t> first(1000);
    for (SetId sid = 0; sid < 1000; ++sid) {
      first[sid] = map.Assign(sid);
      ASSERT_LT(first[sid], num_shards) << "sid " << sid;
    }
    EXPECT_EQ(map.num_assigned(), 1000u);
    for (SetId sid = 0; sid < 1000; ++sid) {
      EXPECT_EQ(map.Assign(sid), first[sid]) << "sid " << sid;
      EXPECT_EQ(map.ShardOf(sid), first[sid]) << "sid " << sid;
      EXPECT_TRUE(map.IsAssigned(sid));
    }
    EXPECT_EQ(map.num_assigned(), 1000u);
  }
}

TEST(ShardMapTest, ShardOfAgreesWithAssignForUnrecordedSids) {
  ShardMap map(5);
  for (SetId sid = 0; sid < 500; ++sid) {
    const std::uint32_t predicted = map.ShardOf(sid);
    EXPECT_FALSE(map.IsAssigned(sid));
    EXPECT_EQ(map.Assign(sid), predicted) << "sid " << sid;
  }
}

TEST(ShardMapTest, SpreadsSidsAcrossAllShards) {
  // HRW with a decent hash should land within a loose band of n/P per
  // shard; an empty shard or a 3x-overloaded one means a broken vote.
  constexpr std::uint32_t kShards = 4;
  constexpr SetId kSids = 4000;
  ShardMap map(kShards);
  std::vector<std::size_t> count(kShards, 0);
  for (SetId sid = 0; sid < kSids; ++sid) ++count[map.Assign(sid)];
  for (std::uint32_t s = 0; s < kShards; ++s) {
    EXPECT_GT(count[s], kSids / kShards / 3) << "shard " << s;
    EXPECT_LT(count[s], 3 * kSids / kShards) << "shard " << s;
  }
}

TEST(ShardMapTest, ForgetDropsTheRecordAndReassignRevotes) {
  ShardMap map(3);
  const std::uint32_t original = map.Assign(42);
  map.Forget(42);
  EXPECT_FALSE(map.IsAssigned(42));
  EXPECT_EQ(map.num_assigned(), 0u);
  // Same shard count, same seed: the re-vote reproduces the placement.
  EXPECT_EQ(map.Assign(42), original);
  map.Forget(42);
  map.Forget(42);  // idempotent
  EXPECT_EQ(map.num_assigned(), 0u);
}

TEST(ShardMapTest, SaveLoadReproducesExactPlacement) {
  ShardMap map(7, /*seed=*/123);
  Rng rng(99);
  std::vector<SetId> sids;
  for (SetId sid = 0; sid < 2000; ++sid) {
    if (rng.Bernoulli(0.7)) {
      map.Assign(sid);
      sids.push_back(sid);
    }
  }
  // A few holes from churn.
  for (std::size_t i = 0; i < sids.size(); i += 17) map.Forget(sids[i]);

  std::stringstream buf;
  ASSERT_TRUE(map.SaveTo(buf).ok());
  auto loaded = ShardMap::Load(buf);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  EXPECT_EQ(loaded->num_shards(), map.num_shards());
  EXPECT_EQ(loaded->seed(), map.seed());
  EXPECT_EQ(loaded->num_assigned(), map.num_assigned());
  EXPECT_EQ(loaded->ContentDigest(), map.ContentDigest());
  for (SetId sid = 0; sid < 2000; ++sid) {
    EXPECT_EQ(loaded->IsAssigned(sid), map.IsAssigned(sid)) << "sid " << sid;
    if (map.IsAssigned(sid)) {
      EXPECT_EQ(loaded->ShardOf(sid), map.ShardOf(sid)) << "sid " << sid;
    }
  }
}

TEST(ShardMapTest, LoadRejectsCorruptPayload) {
  ShardMap map(3);
  for (SetId sid = 0; sid < 50; ++sid) map.Assign(sid);
  std::stringstream buf;
  ASSERT_TRUE(map.SaveTo(buf).ok());
  std::string bytes = buf.str();
  bytes[bytes.size() / 2] ^= 0x5a;  // flip a payload byte
  std::istringstream damaged(bytes);
  auto loaded = ShardMap::Load(damaged);
  EXPECT_FALSE(loaded.ok());
}

TEST(ShardMapTest, GrowMovesOnlyToNewShards) {
  for (std::uint32_t from : {1u, 2u, 4u}) {
    for (std::uint32_t to : {2u, 4u, 7u}) {
      if (to <= from) continue;
      ShardMap map(from);
      std::map<SetId, std::uint32_t> before;
      for (SetId sid = 0; sid < 3000; ++sid) before[sid] = map.Assign(sid);

      const std::vector<ShardMove> moves = map.Rebalance(to);
      EXPECT_EQ(map.num_shards(), to);

      std::map<SetId, std::uint32_t> moved;
      SetId prev_sid = 0;
      bool first = true;
      for (const ShardMove& m : moves) {
        EXPECT_TRUE(first || m.sid > prev_sid) << "moves not ascending";
        first = false;
        prev_sid = m.sid;
        EXPECT_EQ(m.from, before[m.sid]);
        // The minimal-movement property: a grow only ever moves a sid to
        // one of the newly added shards.
        EXPECT_GE(m.to, from) << "sid " << m.sid << " hopped between "
                              << "surviving shards";
        EXPECT_LT(m.to, to);
        moved[m.sid] = m.to;
      }
      for (SetId sid = 0; sid < 3000; ++sid) {
        const std::uint32_t expect =
            moved.count(sid) ? moved[sid] : before[sid];
        EXPECT_EQ(map.ShardOf(sid), expect) << "sid " << sid;
      }
      // A fresh map at the new count agrees: rebalance converges to the
      // pure HRW placement.
      ShardMap fresh(to);
      for (SetId sid = 0; sid < 3000; ++sid) {
        EXPECT_EQ(map.ShardOf(sid), fresh.ShardOf(sid)) << "sid " << sid;
      }
    }
  }
}

TEST(ShardMapTest, ShrinkMovesOnlyFromRemovedShards) {
  for (std::uint32_t from : {7u, 4u, 2u}) {
    for (std::uint32_t to : {4u, 2u, 1u}) {
      if (to >= from) continue;
      ShardMap map(from);
      std::map<SetId, std::uint32_t> before;
      for (SetId sid = 0; sid < 3000; ++sid) before[sid] = map.Assign(sid);

      const std::vector<ShardMove> moves = map.Rebalance(to);
      std::size_t displaced = 0;
      for (SetId sid = 0; sid < 3000; ++sid) {
        if (before[sid] >= to) ++displaced;
      }
      // Every sid on a removed shard must move; nobody else may.
      EXPECT_EQ(moves.size(), displaced);
      for (const ShardMove& m : moves) {
        EXPECT_GE(m.from, to) << "sid " << m.sid
                              << " moved off a surviving shard";
        EXPECT_LT(m.to, to);
      }
    }
  }
}

TEST(ShardMapTest, RebalanceRoundTripIsIdentity) {
  ShardMap map(4);
  std::vector<std::uint32_t> before(2000);
  for (SetId sid = 0; sid < 2000; ++sid) before[sid] = map.Assign(sid);
  (void)map.Rebalance(7);
  (void)map.Rebalance(4);
  for (SetId sid = 0; sid < 2000; ++sid) {
    EXPECT_EQ(map.ShardOf(sid), before[sid]) << "sid " << sid;
  }
}

TEST(ShardMapTest, DigestDetectsPlacementDifferences) {
  ShardMap a(4), b(4);
  for (SetId sid = 0; sid < 100; ++sid) {
    a.Assign(sid);
    b.Assign(sid);
  }
  EXPECT_EQ(a.ContentDigest(), b.ContentDigest());
  b.Forget(50);
  EXPECT_NE(a.ContentDigest(), b.ContentDigest());
  ShardMap other_seed(4, /*seed=*/777);
  for (SetId sid = 0; sid < 100; ++sid) other_seed.Assign(sid);
  EXPECT_NE(a.ContentDigest(), other_seed.ContentDigest());
}

}  // namespace
}  // namespace shard
}  // namespace ssr
