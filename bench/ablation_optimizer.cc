// Ablations for the Section 5 design choices, each isolating one knob:
//   1. FI placement: equidepth (Lemma 4) vs uniform spacing.
//   2. Table allocation: recall-driven greedy (Fig. 5 / Lemma 6) vs the
//      literal error-greedy vs uniform.
//   3. Interval count: recall degrades (Lemma 3) while precision improves
//      (Lemma 5) as FIs are added under a fixed budget.
//   4. Index kinds: SFI+DFI (Section 4.2) vs SFI-only (the "first attempt"
//      of Section 4.1) — candidate volume for low-similarity queries.
//
// Flags: --scale=0.01 --budget=300 --queries=120

#include <cmath>
#include <cstdio>
#include <sstream>
#include <vector>

#include "baseline/exact_evaluator.h"
#include "bench_common.h"
#include "core/set_similarity_index.h"
#include "eval/metrics.h"
#include "eval/table_printer.h"
#include "optimizer/equidepth.h"
#include "optimizer/error_model.h"
#include "optimizer/greedy_allocator.h"
#include "util/logging.h"
#include "workload/datasets.h"
#include "workload/query_generator.h"

namespace ssr {
namespace {

struct Env {
  SetCollection sets;
  SimilarityHistogram hist{100};
  Embedding embedding;
};

// Measured quality of a layout against the live workload.
struct Measured {
  double recall = 0.0;
  double precision = 0.0;
  double avg_candidates = 0.0;
  bool ok = false;
};

Measured MeasureLayout(Env& env, const IndexLayout& layout, int queries) {
  Measured m;
  SetStore store;
  for (const auto& s : env.sets) {
    if (!store.Add(s).ok()) return m;
  }
  IndexOptions options;
  options.embedding = env.embedding.params();
  auto index = SetSimilarityIndex::Build(store, layout, options);
  if (!index.ok()) return m;
  ExactEvaluator exact(env.sets);
  QueryGeneratorParams qparams;
  QueryGenerator generator(env.sets, qparams);
  int counted = 0;
  for (int i = 0; i < queries; ++i) {
    const RangeQuery q = generator.Next();
    const ElementSet& query_set = env.sets[q.query_sid];
    auto result = index->Query(query_set, q.sigma1, q.sigma2);
    if (!result.ok()) continue;
    const auto truth = exact.Query(query_set, q.sigma1, q.sigma2);
    m.recall += Recall(result->sids, truth);
    m.precision += CandidatePrecision(result->stats.results,
                                      result->stats.candidates);
    m.avg_candidates += static_cast<double>(result->stats.candidates);
    ++counted;
  }
  if (counted == 0) return m;
  m.recall /= counted;
  m.precision /= counted;
  m.avg_candidates /= counted;
  m.ok = true;
  return m;
}

IndexLayout UniformPlacement(std::size_t num_fis, double delta) {
  IndexLayout layout;
  layout.delta = delta;
  std::size_t closest = 0;
  double best = 2.0;
  std::vector<double> points;
  for (std::size_t j = 1; j <= num_fis; ++j) {
    points.push_back(static_cast<double>(j) /
                     static_cast<double>(num_fis + 1));
  }
  for (std::size_t i = 0; i < points.size(); ++i) {
    const double d = std::fabs(points[i] - delta);
    if (d < best) {
      best = d;
      closest = i;
    }
  }
  for (std::size_t i = 0; i < points.size(); ++i) {
    if (i == closest) {
      layout.points.push_back(
          {points[i], FilterKind::kDissimilarity, 1, 0});
      layout.points.push_back({points[i], FilterKind::kSimilarity, 1, 0});
    } else {
      const FilterKind kind = points[i] < delta
                                  ? FilterKind::kDissimilarity
                                  : FilterKind::kSimilarity;
      layout.points.push_back({points[i], kind, 1, 0});
    }
  }
  return layout;
}

int Run(const bench::Flags& flags) {
  Env env{{}, SimilarityHistogram(100), [] {
            EmbeddingParams p;
            p.minhash.num_hashes = 100;
            p.minhash.value_bits = 8;
            auto e = Embedding::Create(p);
            return std::move(e).value();
          }()};
  env.sets = MakeDataset(flags.GetString("dataset", "set1"),
                         flags.GetDouble("scale", 0.01));
  Rng rng(0xab1a7e);
  env.hist = ComputeSampledDistribution(env.sets, 60000, 100, rng);
  const std::size_t budget =
      static_cast<std::size_t>(flags.GetInt("budget", 300));
  const int queries = static_cast<int>(flags.GetInt("queries", 120));
  const std::size_t num_fis = 4;

  RunReport report("ablation_optimizer");
  bench::EnableObservability(flags);
  report.AddParam("dataset", flags.GetString("dataset", "set1"));
  report.AddParam("scale", flags.GetDouble("scale", 0.01));
  report.AddParam("budget", static_cast<std::uint64_t>(budget));
  report.AddParam("queries", static_cast<std::uint64_t>(queries));

  // --- Ablation 1: placement. ---
  bench::PrintHeader("Ablation 1 (Lemma 4): equidepth vs uniform placement, "
                     + std::to_string(num_fis) + " FIs, budget " +
                     std::to_string(budget));
  {
    TablePrinter table({"placement", "measured recall", "measured precision",
                        "avg candidates"});
    IndexLayout equidepth = PlaceFilterIndices(env.hist, num_fis);
    auto r1 = GreedyAllocateTables(&equidepth, budget, env.hist,
                                   env.embedding);
    IndexLayout uniform = UniformPlacement(num_fis, equidepth.delta);
    auto r2 = GreedyAllocateTables(&uniform, budget, env.hist,
                                   env.embedding);
    if (r1.ok() && r2.ok()) {
      const Measured me = MeasureLayout(env, equidepth, queries);
      const Measured mu = MeasureLayout(env, uniform, queries);
      table.AddRow({"equidepth", TablePrinter::Pct(me.recall),
                    TablePrinter::Pct(me.precision),
                    TablePrinter::Num(me.avg_candidates, 1)});
      table.AddRow({"uniform", TablePrinter::Pct(mu.recall),
                    TablePrinter::Pct(mu.precision),
                    TablePrinter::Num(mu.avg_candidates, 1)});
    }
    std::ostringstream out;
    table.Print(out);
    std::printf("%s", out.str().c_str());
    report.AddTable("ablation1 placement", table);
  }

  // --- Ablation 2: allocation. ---
  bench::PrintHeader(
      "Ablation 2 (Lemma 6): allocation policy under equidepth placement");
  {
    TablePrinter table({"allocation", "predicted avg recall",
                        "measured recall", "measured precision"});
    struct Policy {
      const char* name;
      int kind;  // 0 greedy-recall, 1 greedy-error, 2 uniform
    };
    for (const Policy policy : {Policy{"greedy (recall-driven)", 0},
                                Policy{"greedy (error, Fig.5)", 1},
                                Policy{"uniform", 2}}) {
      IndexLayout layout = PlaceFilterIndices(env.hist, num_fis);
      bool ok = false;
      switch (policy.kind) {
        case 0:
          ok = GreedyAllocateTables(&layout, budget, env.hist,
                                    env.embedding)
                   .ok();
          break;
        case 1:
          ok = GreedyAllocateTablesByError(&layout, budget, env.hist,
                                           env.embedding.distance_ratio())
                   .ok();
          break;
        default:
          ok = UniformAllocateTables(&layout, budget, env.hist,
                                     env.embedding.distance_ratio())
                   .ok();
      }
      if (!ok) continue;
      LayoutErrorModel model(layout, env.embedding, env.hist);
      const Measured m = MeasureLayout(env, layout, queries);
      table.AddRow({policy.name,
                    TablePrinter::Pct(model.WorkloadAverageRecall()),
                    TablePrinter::Pct(m.recall),
                    TablePrinter::Pct(m.precision)});
    }
    std::ostringstream out;
    table.Print(out);
    std::printf("%s", out.str().c_str());
    report.AddTable("ablation2 allocation", table);
  }

  // --- Ablation 3: interval count (Lemmas 3 and 5). ---
  bench::PrintHeader(
      "Ablation 3 (Lemmas 3/5): FIs vs recall and precision, fixed budget");
  {
    TablePrinter table({"FIs", "predicted recall", "measured recall",
                        "measured precision", "avg candidates"});
    for (std::size_t fis : {1u, 2u, 4u, 6u, 8u}) {
      IndexLayout layout = PlaceFilterIndices(env.hist, fis);
      if (!GreedyAllocateTables(&layout, budget, env.hist, env.embedding)
               .ok()) {
        continue;
      }
      LayoutErrorModel model(layout, env.embedding, env.hist);
      const Measured m = MeasureLayout(env, layout, queries);
      table.AddRow({TablePrinter::Count(fis),
                    TablePrinter::Pct(model.WorkloadAverageRecall()),
                    TablePrinter::Pct(m.recall),
                    TablePrinter::Pct(m.precision),
                    TablePrinter::Num(m.avg_candidates, 1)});
    }
    std::ostringstream out;
    table.Print(out);
    std::printf("%s", out.str().c_str());
    report.AddTable("ablation3 interval count", table);
  }

  // --- Ablation 4: DFIs vs SFI-only for low-similarity queries. ---
  bench::PrintHeader(
      "Ablation 4 (Section 4.2): SFI+DFI vs SFI-only, low-similarity "
      "queries [0.05, 0.3]");
  {
    IndexLayout mixed = PlaceFilterIndices(env.hist, num_fis);
    IndexLayout sfi_only = mixed;
    sfi_only.delta = 0.0;
    for (auto& p : sfi_only.points) p.kind = FilterKind::kSimilarity;
    // Collapse duplicate dual points left over from the mixed layout.
    for (std::size_t i = 1; i < sfi_only.points.size();) {
      if (sfi_only.points[i].similarity ==
          sfi_only.points[i - 1].similarity) {
        sfi_only.points.erase(sfi_only.points.begin() +
                              static_cast<std::ptrdiff_t>(i));
      } else {
        ++i;
      }
    }
    auto ra = GreedyAllocateTables(&mixed, budget, env.hist, env.embedding);
    auto rb = GreedyAllocateTables(&sfi_only, budget, env.hist,
                                   env.embedding);
    TablePrinter table({"layout", "avg candidates", "measured recall",
                        "measured precision"});
    for (auto& [name, layout, ok] :
         std::vector<std::tuple<const char*, IndexLayout*, bool>>{
             {"SFI+DFI", &mixed, ra.ok()},
             {"SFI-only", &sfi_only, rb.ok()}}) {
      if (!ok) continue;
      SetStore store;
      bool add_failed = false;
      for (const auto& s : env.sets) {
        if (!store.Add(s).ok()) add_failed = true;
      }
      if (add_failed) continue;
      IndexOptions options;
      options.embedding = env.embedding.params();
      auto index = SetSimilarityIndex::Build(store, *layout, options);
      if (!index.ok()) continue;
      ExactEvaluator exact(env.sets);
      Rng qrng(0xab1a7e + 7);
      double recall = 0.0, precision = 0.0, candidates = 0.0;
      int counted = 0;
      for (int i = 0; i < queries; ++i) {
        const SetId sid = static_cast<SetId>(qrng.Uniform(env.sets.size()));
        auto result = index->Query(env.sets[sid], 0.05, 0.3);
        if (!result.ok()) continue;
        const auto truth = exact.Query(env.sets[sid], 0.05, 0.3);
        recall += Recall(result->sids, truth);
        precision += CandidatePrecision(result->stats.results,
                                        result->stats.candidates);
        candidates += static_cast<double>(result->stats.candidates);
        ++counted;
      }
      if (counted == 0) continue;
      table.AddRow({name, TablePrinter::Num(candidates / counted, 1),
                    TablePrinter::Pct(recall / counted),
                    TablePrinter::Pct(precision / counted)});
    }
    std::ostringstream out;
    table.Print(out);
    std::printf("%s", out.str().c_str());
    report.AddTable("ablation4 dfi vs sfi-only", table);
  }
  return bench::WriteReportIfRequested(flags, report);
}

}  // namespace
}  // namespace ssr

int main(int argc, char** argv) {
  ssr::SetLogLevel(ssr::LogLevel::kWarning);
  ssr::bench::Flags flags(argc, argv);
  return ssr::Run(flags);
}
