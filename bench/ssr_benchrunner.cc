// Benchmark-trajectory driver: runs a canonical, pinned-parameter bench
// suite (micro primitives, candidate generation, the Figure 7 harness, the
// Equation 4 filter curve, parallel build scaling, concurrent batch-query
// throughput, sharded scatter/gather scaling, and live-mutability churn
// with online rebalance), profiles every phase
// with hardware-or-fallback perf
// counters, and writes one numbered BENCH_<n>.json trajectory point per
// invocation. Successive points (same machine, same governor —
// compare "env" fingerprints) chart the repo's perf trajectory;
// tools/bench_compare.py diffs two points and flags regressions.
//
// Flags:
//   --quick           smaller workloads (CI smoke; noisier numbers)
//   --list            print the suite table and exit
//   --only=<suite>    run a single suite from the table (--list shows it);
//                     an unknown name is a hard error (exit 2), checked
//                     before any suite runs
//   --serve           start the live introspection HTTP endpoint for the
//                     run (curl /metrics, /healthz, /statusz, /tracez,
//                     /varz while suites execute)
//   --serve_port=<p>  port for --serve (default 0 = ephemeral, printed)
//   --serve_linger=<s> keep serving s seconds after the suites finish
//                     (CI smoke scrapes the live process)
//   --out=<dir>       directory for BENCH_<n>.json (default ".", created)
//   --json=<path>     exact artifact path (overrides --out numbering)
//   --trace=<path>    also write a Chrome trace (chrome://tracing)
//   --label=<text>    free-form tag stored in params
//
// Counter profiling degrades down the ladder in obs/perf_counters.h when
// perf_event_open is denied; SSR_PERF_COUNTERS=off forces the run to
// software-only wall/CPU measurements (the CI fallback check).

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdio>
#include <filesystem>
#include <memory>
#include <sstream>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "bench_common.h"
#include "core/index_layout.h"
#include "core/set_similarity_index.h"
#include "core/sfi.h"
#include "eval/harness.h"
#include "exec/batch_executor.h"
#include "exec/epoch.h"
#include "hamming/embedding.h"
#include "minhash/family.h"
#include "minhash/min_hasher.h"
#include "minhash/packed.h"
#include "obs/chrome_trace.h"
#include "obs/exposition.h"
#include "obs/metrics.h"
#include "obs/profile.h"
#include "obs/query_log.h"
#include "obs/shadow_oracle.h"
#include "obs/trace.h"
#include "obs/workload_observer.h"
#include "optimizer/observed_workload.h"
#include "server/http.h"
#include "server/introspection_server.h"
#include "shard/query_router.h"
#include "shard/sharded_index.h"
#include "storage/bplus_tree.h"
#include "storage/recovery.h"
#include "storage/set_store.h"
#include "storage/wal.h"
#include "util/logging.h"
#include "util/random.h"
#include "util/set_ops.h"
#include "util/stopwatch.h"

namespace ssr {
namespace {

ElementSet RandomSet(Rng& rng, std::size_t size, std::uint64_t universe) {
  ElementSet s;
  s.reserve(size);
  for (std::size_t i = 0; i < size; ++i) s.push_back(rng.Uniform(universe));
  NormalizeSet(s);
  return s;
}

/// Times `iters` calls of `fn` under a ProfileScope, returning ns/op.
template <typename Fn>
double MicroLoop(const std::string& name, std::size_t iters, Fn&& fn) {
  obs::ProfileScope profile(name);
  Stopwatch watch;
  for (std::size_t i = 0; i < iters; ++i) fn(i);
  const double ns =
      watch.ElapsedSeconds() * 1e9 / static_cast<double>(iters);
  std::printf("  %-28s %12.1f ns/op  (%zu iters)\n", name.c_str(), ns,
              iters);
  return ns;
}

int RunMicroSuite(bool quick, RunReport* report) {
  bench::PrintHeader("suite: micro_primitives (pinned params)");
  Rng rng(0x5eed01);

  const ElementSet a = RandomSet(rng, 250, 1 << 20);
  const ElementSet b = RandomSet(rng, 250, 1 << 20);
  volatile double sink = 0.0;
  report->AddScalar(
      "micro_jaccard_ns",
      MicroLoop("micro_jaccard", quick ? 20000 : 200000,
                [&](std::size_t) { sink = sink + Jaccard(a, b); }));

  EmbeddingParams params;
  params.minhash.num_hashes = 100;
  params.minhash.value_bits = 8;
  auto embedding = Embedding::Create(params);
  if (!embedding.ok()) return 1;
  std::size_t sig_words = 0;
  report->AddScalar(
      "micro_minhash_sign_ns",
      MicroLoop("micro_minhash_sign", quick ? 200 : 2000, [&](std::size_t) {
        sig_words += embedding->Sign(a).values().size();
      }));

  BPlusTree tree(256);
  for (SetId k = 0; k < 100000; ++k) tree.Upsert(k, RecordLocator{k, 0});
  std::size_t found = 0;
  report->AddScalar(
      "micro_btree_find_ns",
      MicroLoop("micro_btree_find", quick ? 50000 : 500000,
                [&](std::size_t) {
                  found +=
                      tree.Find(static_cast<SetId>(rng.Uniform(100000))).ok()
                          ? 1
                          : 0;
                }));
  (void)sig_words;
  (void)found;
  return 0;
}

/// Signature engine v2 ablation: per-family sign cost (single and batch)
/// at the paper's k = 100 on 250-element sets, the packed vs unpacked
/// agreement kernels, and a fig7-style accuracy point per family x b —
/// so a family's speed is never quoted without its recall/precision.
int RunSigningSuite(bool quick, RunReport* report) {
  bench::PrintHeader("suite: signing (signature engine v2 ablation)");
  Rng rng(0x516e);
  const ElementSet one = RandomSet(rng, 250, 1 << 20);
  // Large-set point: classic signing is Theta(k * n) while SuperMinHash is
  // ~O(n + k log k), so the families separate as sets grow. 2000 elements
  // is the web-session long tail the paper's workload generator produces.
  const ElementSet big = RandomSet(rng, 2000, 1 << 21);
  std::vector<ElementSet> batch;
  for (int i = 0; i < 64; ++i) batch.push_back(RandomSet(rng, 250, 1 << 20));

  double classic_large_ns = 0.0;
  for (MinHashFamilyKind family : kAllMinHashFamilies) {
    EmbeddingParams params;
    params.minhash.num_hashes = 100;
    params.minhash.value_bits = 8;
    params.minhash.family = family;
    auto embedding = Embedding::Create(params);
    if (!embedding.ok()) return 1;
    const std::string name(MinHashFamilyName(family));

    std::size_t sink = 0;
    report->AddScalar(
        "signing_" + name + "_sign_ns",
        MicroLoop("signing_" + name + "_sign", quick ? 500 : 5000,
                  [&](std::size_t) {
                    sink += embedding->Sign(one).values().size();
                  }));

    const double large_ns =
        MicroLoop("signing_" + name + "_sign_large", quick ? 100 : 1000,
                  [&](std::size_t) {
                    sink += embedding->Sign(big).values().size();
                  });
    report->AddScalar("signing_" + name + "_sign_large_ns", large_ns);
    if (family == MinHashFamilyKind::kClassic) {
      classic_large_ns = large_ns;
    } else if (classic_large_ns > 0.0) {
      std::printf("  %-28s %12.2f x vs classic (n=2000)\n",
                  ("signing_" + name + "_speedup").c_str(),
                  classic_large_ns / large_ns);
    }

    // The batch entry point the parallel builder's sign phase feeds:
    // ns per *set*, amortizing dispatch across a contiguous run.
    std::vector<Signature> outs(batch.size());
    const std::size_t reps = quick ? 10 : 100;
    Stopwatch watch;
    for (std::size_t r = 0; r < reps; ++r) {
      embedding->SignBatch(batch.data(), batch.size(), outs.data());
    }
    const double batch_ns =
        watch.ElapsedSeconds() * 1e9 /
        static_cast<double>(reps * batch.size());
    std::printf("  %-28s %12.1f ns/set (%zu sets x %zu reps)\n",
                ("signing_" + name + "_batch").c_str(), batch_ns,
                batch.size(), reps);
    report->AddScalar("signing_" + name + "_batch_sign_ns", batch_ns);
    (void)sink;
  }

  // Packed (SWAR + popcount) vs unpacked (value-by-value) signature
  // agreement at k = 100, b = 8 — the estimator/SFI compare kernel.
  {
    MinHashParams mp;
    mp.num_hashes = 100;
    mp.value_bits = 8;
    MinHasher hasher(mp);
    const Signature sa = hasher.Sign(one);
    const Signature sb = hasher.Sign(batch[0]);
    const PackedSignature pa = PackedSignature::Pack(sa, mp.value_bits);
    const PackedSignature pb = PackedSignature::Pack(sb, mp.value_bits);
    volatile double agree = 0.0;
    report->AddScalar(
        "signing_unpacked_agreement_ns",
        MicroLoop("signing_unpacked_agreement", quick ? 100000 : 1000000,
                  [&](std::size_t) {
                    agree = agree + sa.AgreementFraction(sb);
                  }));
    report->AddScalar(
        "signing_packed_agreement_ns",
        MicroLoop("signing_packed_agreement", quick ? 100000 : 1000000,
                  [&](std::size_t) {
                    agree = agree + pa.AgreementFraction(pb);
                  }));
  }

  // Accuracy ablation: the fig7-style bucketed sweep per family (and per b
  // in full runs). Whatever a family saves in signing cost must show up
  // here as recall/precision within noise of classic, or it is not a win.
  const unsigned kBitWidths[] = {8, 4};
  const std::size_t num_widths = quick ? 1 : 2;
  for (std::size_t w = 0; w < num_widths; ++w) {
    for (MinHashFamilyKind family : kAllMinHashFamilies) {
      ExperimentConfig config;
      config.dataset = "set1";
      config.scale = quick ? 0.004 : 0.01;
      config.table_budget = 300;
      config.recall_threshold = 0.7;
      config.num_minhashes = 100;
      config.value_bits = kBitWidths[w];
      config.minhash_family = family;
      config.queries_per_bucket = quick ? 2 : 6;
      config.max_attempts_factor = 12;
      config.run_scan = false;
      auto harness = ExperimentHarness::Create(config);
      if (!harness.ok()) {
        std::fprintf(stderr, "signing harness failed: %s\n",
                     harness.status().ToString().c_str());
        return 1;
      }
      auto result = (*harness)->RunBucketedQueries();
      if (!result.ok()) {
        std::fprintf(stderr, "signing sweep failed: %s\n",
                     result.status().ToString().c_str());
        return 1;
      }
      const std::string name(MinHashFamilyName(family));
      const std::string prefix =
          "signing_" + name +
          (kBitWidths[w] == 8 ? std::string()
                              : "_b" + std::to_string(kBitWidths[w]));
      std::printf("  %-28s recall %.4f precision %.4f (%zu queries)\n",
                  prefix.c_str(), result->overall_weighted_recall,
                  result->overall_weighted_precision,
                  result->total_queries_run);
      report->AddScalar(prefix + "_recall", result->overall_weighted_recall);
      report->AddScalar(prefix + "_precision",
                        result->overall_weighted_precision);
    }
  }
  return 0;
}

/// Candidate generation through the composite index: the QueryCandidates
/// phase profile (embed / plan / probe_fi) in the trajectory point comes
/// from here.
int RunQueryCandidatesSuite(bool quick, RunReport* report) {
  bench::PrintHeader("suite: query_candidates (pinned params)");
  Rng rng(0x5eed02);
  const std::size_t collection = quick ? 500 : 2000;
  const std::size_t queries = quick ? 200 : 2000;

  SetStoreOptions store_options;
  store_options.buffer_pool_pages = 64;
  SetStore store(store_options);
  std::vector<ElementSet> sets;
  sets.reserve(collection);
  for (std::size_t i = 0; i < collection; ++i) {
    sets.push_back(RandomSet(rng, 40, 1 << 16));
    if (!store.Add(sets.back()).ok()) {
      std::fprintf(stderr, "store add failed\n");
      return 1;
    }
  }
  IndexLayout layout;
  layout.delta = 0.3;
  layout.points.push_back({0.2, FilterKind::kDissimilarity, 8, 0});
  layout.points.push_back({0.5, FilterKind::kSimilarity, 8, 0});
  layout.points.push_back({0.8, FilterKind::kSimilarity, 8, 0});
  IndexOptions options;
  options.embedding.minhash.num_hashes = 100;
  options.embedding.minhash.value_bits = 8;
  auto index = SetSimilarityIndex::Build(store, layout, options);
  if (!index.ok()) {
    std::fprintf(stderr, "index build failed: %s\n",
                 index.status().ToString().c_str());
    return 1;
  }

  Stopwatch watch;
  std::uint64_t total_candidates = 0;
  for (std::size_t i = 0; i < queries; ++i) {
    auto result = index->QueryCandidates(sets[i % sets.size()], 0.55, 0.95);
    if (!result.ok()) {
      std::fprintf(stderr, "query failed: %s\n",
                   result.status().ToString().c_str());
      return 1;
    }
    total_candidates += result->sids.size();
  }
  const double avg_micros =
      watch.ElapsedSeconds() * 1e6 / static_cast<double>(queries);
  std::printf("  %zu queries over %zu sets: %.1f us/query, avg %.1f "
              "candidates\n",
              queries, collection, avg_micros,
              static_cast<double>(total_candidates) /
                  static_cast<double>(queries));
  report->AddScalar("qc_avg_query_micros", avg_micros);
  report->AddScalar("qc_avg_candidates",
                    static_cast<double>(total_candidates) /
                        static_cast<double>(queries));
  return 0;
}

int RunFig7Suite(bool quick, RunReport* report) {
  bench::PrintHeader("suite: fig7_response_time (pinned params)");
  ExperimentConfig config;
  config.dataset = "set1";
  config.scale = quick ? 0.004 : 0.02;
  config.table_budget = 300;
  config.recall_threshold = 0.7;
  config.num_minhashes = 100;
  config.queries_per_bucket = quick ? 2 : 10;
  config.max_attempts_factor = 12;
  config.run_scan = true;

  Stopwatch build_watch;
  auto harness = ExperimentHarness::Create(config);
  if (!harness.ok()) {
    std::fprintf(stderr, "harness failed: %s\n",
                 harness.status().ToString().c_str());
    return 1;
  }
  report->AddScalar("fig7_build_seconds", build_watch.ElapsedSeconds());

  Stopwatch sweep_watch;
  auto result = (*harness)->RunBucketedQueries();
  if (!result.ok()) {
    std::fprintf(stderr, "sweep failed: %s\n",
                 result.status().ToString().c_str());
    return 1;
  }
  report->AddScalar("fig7_sweep_seconds", sweep_watch.ElapsedSeconds());

  double index_io = 0.0, index_cpu = 0.0, scan_total = 0.0;
  std::size_t weighted = 0;
  for (const auto& bucket : result->buckets) {
    index_io += bucket.avg_index_io_seconds * bucket.query_count;
    index_cpu += bucket.avg_index_cpu_seconds * bucket.query_count;
    scan_total += bucket.avg_scan_total_seconds() * bucket.query_count;
    weighted += bucket.query_count;
  }
  const double denom = weighted > 0 ? static_cast<double>(weighted) : 1.0;
  std::printf("  %zu bucketed queries: index %.4f s/query (io %.4f + cpu "
              "%.4f), scan %.4f s/query\n",
              weighted, (index_io + index_cpu) / denom, index_io / denom,
              index_cpu / denom, scan_total / denom);
  report->AddScalar("fig7_avg_index_io_seconds", index_io / denom);
  report->AddScalar("fig7_avg_index_cpu_seconds", index_cpu / denom);
  report->AddScalar("fig7_avg_index_total_seconds",
                    (index_io + index_cpu) / denom);
  report->AddScalar("fig7_avg_scan_total_seconds", scan_total / denom);
  report->AddScalar("fig7_overall_recall", result->overall_weighted_recall);
  report->AddScalar("fig7_overall_precision",
                    result->overall_weighted_precision);
  report->AddScalar("fig7_total_queries",
                    static_cast<std::uint64_t>(result->total_queries_run));
  return 0;
}

int RunFilterCurveSuite(bool quick, RunReport* report) {
  bench::PrintHeader("suite: filter_curve (pinned params)");
  Rng rng(0x5eed03);
  EmbeddingParams params;
  params.minhash.num_hashes = 100;
  params.minhash.value_bits = 8;
  params.minhash.seed = 0xf117e8;
  auto embedding = Embedding::Create(params);
  if (!embedding.ok()) return 1;

  SfiParams sfi_params;
  sfi_params.s_star = 0.85;
  sfi_params.l = 15;
  Stopwatch build_watch;
  auto sfi = SimilarityFilterIndex::Create(*embedding, sfi_params, 10000);
  if (!sfi.ok()) return 1;
  const std::size_t population = quick ? 1000 : 10000;
  for (std::size_t i = 0; i < population; ++i) {
    sfi->Insert(static_cast<SetId>(i),
                embedding->Sign(RandomSet(rng, 30, 1 << 16)));
  }
  report->AddScalar("filter_curve_build_seconds",
                    build_watch.ElapsedSeconds());
  report->AddScalar("filter_curve_r",
                    static_cast<std::uint64_t>(sfi->filter().r()));

  const Signature query = embedding->Sign(RandomSet(rng, 30, 1 << 16));
  const std::size_t probes = quick ? 200 : 2000;
  volatile std::size_t sink = 0;
  const double probe_ns =
      MicroLoop("filter_curve_probe", probes,
                [&](std::size_t) { sink = sink + sfi->SimVector(query).size(); });
  report->AddScalar("filter_curve_probe_ns", probe_ns);
  (void)sink;
  return 0;
}

/// Parallel index build at 1/2/4/8 workers over one collection. The scaling
/// metric is the modeled makespan (BuildStats::makespan_seconds): serial
/// portions at wall cost plus each parallel phase's busiest-worker CPU time
/// — the build time on a machine that really runs that many cores, which a
/// core-limited CI host cannot show through the wall clock.
int RunBuildScalingSuite(bool quick, RunReport* report) {
  bench::PrintHeader("suite: build_scaling (pinned params)");
  Rng rng(0x5eed04);
  const std::size_t collection = quick ? 600 : 3000;

  SetStore store;
  for (std::size_t i = 0; i < collection; ++i) {
    if (!store.Add(RandomSet(rng, 60, 1 << 16)).ok()) {
      std::fprintf(stderr, "store add failed\n");
      return 1;
    }
  }
  IndexLayout layout;
  layout.delta = 0.3;
  layout.points.push_back({0.2, FilterKind::kDissimilarity, 8, 0});
  layout.points.push_back({0.5, FilterKind::kSimilarity, 8, 0});
  layout.points.push_back({0.8, FilterKind::kSimilarity, 8, 0});

  double serial_makespan = 0.0;
  std::uint64_t serial_digest = 0;
  for (std::size_t threads : {1, 2, 4, 8}) {
    IndexOptions options;
    options.embedding.minhash.num_hashes = 100;
    options.embedding.minhash.value_bits = 8;
    options.num_threads = threads;
    auto index = SetSimilarityIndex::Build(store, layout, options);
    if (!index.ok()) {
      std::fprintf(stderr, "index build failed: %s\n",
                   index.status().ToString().c_str());
      return 1;
    }
    const BuildStats& stats = index->build_stats();
    if (threads == 1) {
      serial_makespan = stats.makespan_seconds;
      serial_digest = index->ContentDigest();
    } else if (index->ContentDigest() != serial_digest) {
      std::fprintf(stderr, "parallel build diverged at %zu threads\n",
                   threads);
      return 1;
    }
    const double speedup = stats.makespan_seconds > 0.0
                               ? serial_makespan / stats.makespan_seconds
                               : 0.0;
    std::printf("  %zu thread(s): makespan %.3f s (wall %.3f s, sign %.3f + "
                "insert %.3f cpu-s)  speedup %.2fx\n",
                threads, stats.makespan_seconds, stats.wall_seconds,
                stats.sign_cpu_seconds, stats.insert_cpu_seconds, speedup);
    const std::string prefix = "build_scaling_t" + std::to_string(threads);
    report->AddScalar(prefix + "_makespan_seconds", stats.makespan_seconds);
    if (threads > 1) {
      report->AddScalar(prefix + "_speedup", speedup);
    }
  }
  return 0;
}

/// Concurrent batch-query throughput at 1/2/4/8 workers against one
/// immutable index. QPS is reported from the modeled makespan (busiest
/// worker's CPU + its simulated I/O) alongside the honest wall-clock QPS;
/// only the former can exceed 1x scaling when CI grants a single core.
int RunQueryThroughputSuite(bool quick, RunReport* report) {
  bench::PrintHeader("suite: query_throughput (pinned params)");
  Rng rng(0x5eed05);
  const std::size_t collection = quick ? 500 : 2000;
  const std::size_t batch_size = quick ? 300 : 1500;

  SetStoreOptions store_options;
  store_options.buffer_pool_pages = 64;
  SetStore store(store_options);
  std::vector<ElementSet> sets;
  sets.reserve(collection);
  for (std::size_t i = 0; i < collection; ++i) {
    sets.push_back(RandomSet(rng, 40, 1 << 16));
    if (!store.Add(sets.back()).ok()) {
      std::fprintf(stderr, "store add failed\n");
      return 1;
    }
  }
  IndexLayout layout;
  layout.delta = 0.3;
  layout.points.push_back({0.2, FilterKind::kDissimilarity, 8, 0});
  layout.points.push_back({0.5, FilterKind::kSimilarity, 8, 0});
  layout.points.push_back({0.8, FilterKind::kSimilarity, 8, 0});
  IndexOptions options;
  options.embedding.minhash.num_hashes = 100;
  options.embedding.minhash.value_bits = 8;
  auto index = SetSimilarityIndex::Build(store, layout, options);
  if (!index.ok()) {
    std::fprintf(stderr, "index build failed: %s\n",
                 index.status().ToString().c_str());
    return 1;
  }

  std::vector<exec::BatchQuery> batch;
  batch.reserve(batch_size);
  for (std::size_t i = 0; i < batch_size; ++i) {
    exec::BatchQuery q;
    q.query = sets[i % sets.size()];
    q.sigma1 = 0.55;
    q.sigma2 = 0.95;
    batch.push_back(std::move(q));
  }

  double serial_qps = 0.0;
  for (std::size_t threads : {1, 2, 4, 8}) {
    exec::BatchExecutorOptions exec_options;
    exec_options.num_threads = threads;
    exec::BatchExecutor executor(*index, exec_options);
    exec::BatchResult result = executor.Run(batch);
    if (result.failed != 0) {
      std::fprintf(stderr, "%zu batch queries failed\n", result.failed);
      return 1;
    }
    if (threads == 1) serial_qps = result.modeled_qps;
    const double speedup =
        serial_qps > 0.0 ? result.modeled_qps / serial_qps : 0.0;
    std::printf("  %zu thread(s): modeled %.0f qps (makespan %.3f s), wall "
                "%.0f qps  speedup %.2fx\n",
                threads, result.modeled_qps, result.modeled_makespan_seconds,
                result.wall_qps, speedup);
    const std::string prefix = "query_throughput_t" + std::to_string(threads);
    report->AddScalar(prefix + "_modeled_qps", result.modeled_qps);
    if (threads > 1) {
      report->AddScalar(prefix + "_speedup", speedup);
    }
  }
  return 0;
}

/// Sharded scatter/gather throughput at P in {1, 2, 4} shards, routed over
/// a 4-worker pool. Reports the modeled routed QPS (slowest shard's batch
/// makespan plus the measured merge), the speedup over P=1, and the merge
/// overhead — merge seconds as a fraction of the routed makespan, the price
/// of the deterministic shard-order gather (lower is better). Every routed
/// answer is cross-checked against an unsharded index; a divergence fails
/// the run, so the trajectory never charts a wrong-answer speedup.
int RunShardScalingSuite(bool quick, RunReport* report) {
  bench::PrintHeader("suite: shard_scaling (pinned params)");
  Rng rng(0x5eed06);
  const std::size_t collection = quick ? 500 : 2000;
  const std::size_t batch_size = quick ? 300 : 1500;

  SetCollection sets;
  sets.reserve(collection);
  SetStore store;
  for (std::size_t i = 0; i < collection; ++i) {
    sets.push_back(RandomSet(rng, 40, 1 << 16));
    if (!store.Add(sets.back()).ok()) {
      std::fprintf(stderr, "store add failed\n");
      return 1;
    }
  }
  IndexLayout layout;
  layout.delta = 0.3;
  layout.points.push_back({0.2, FilterKind::kDissimilarity, 8, 0});
  layout.points.push_back({0.5, FilterKind::kSimilarity, 8, 0});
  layout.points.push_back({0.8, FilterKind::kSimilarity, 8, 0});
  IndexOptions index_options;
  index_options.embedding.minhash.num_hashes = 100;
  index_options.embedding.minhash.value_bits = 8;

  std::vector<exec::BatchQuery> batch;
  batch.reserve(batch_size);
  for (std::size_t i = 0; i < batch_size; ++i) {
    exec::BatchQuery q;
    q.query = sets[i % sets.size()];
    q.sigma1 = 0.55;
    q.sigma2 = 0.95;
    batch.push_back(std::move(q));
  }

  // The unsharded reference answers for the cross-check.
  auto reference = SetSimilarityIndex::Build(store, layout, index_options);
  if (!reference.ok()) {
    std::fprintf(stderr, "reference build failed: %s\n",
                 reference.status().ToString().c_str());
    return 1;
  }
  exec::BatchExecutorOptions ref_options;
  ref_options.num_threads = 4;
  exec::BatchExecutor ref_executor(*reference, ref_options);
  const exec::BatchResult ref_result = ref_executor.Run(batch);
  if (ref_result.failed != 0) {
    std::fprintf(stderr, "reference batch failed\n");
    return 1;
  }

  double p1_qps = 0.0;
  for (std::uint32_t shards : {1u, 2u, 4u}) {
    shard::ShardedIndexOptions options;
    options.num_shards = shards;
    options.index = index_options;
    auto index = shard::ShardedSetSimilarityIndex::Build(sets, layout,
                                                         options);
    if (!index.ok()) {
      std::fprintf(stderr, "sharded build failed: %s\n",
                   index.status().ToString().c_str());
      return 1;
    }
    shard::QueryRouterOptions router_options;
    router_options.num_threads = 4;
    shard::QueryRouter router(*index, router_options);
    const shard::RoutedBatchResult result = router.RunBatch(batch);
    if (result.failed != 0) {
      std::fprintf(stderr, "%zu routed queries failed\n", result.failed);
      return 1;
    }
    for (std::size_t i = 0; i < batch.size(); ++i) {
      if (result.results[i].sids != ref_result.results[i].sids) {
        std::fprintf(stderr,
                     "routed answer diverged from the unsharded index at "
                     "P=%u, query %zu\n",
                     shards, i);
        return 1;
      }
    }
    if (shards == 1) p1_qps = result.modeled_qps;
    const double speedup =
        p1_qps > 0.0 ? result.modeled_qps / p1_qps : 0.0;
    const double merge_overhead =
        result.modeled_makespan_seconds > 0.0
            ? result.merge_seconds / result.modeled_makespan_seconds
            : 0.0;
    std::printf("  P=%u: modeled %.0f qps (makespan %.3f s, merge %.4f s, "
                "overhead %.4f)  speedup %.2fx\n",
                shards, result.modeled_qps, result.modeled_makespan_seconds,
                result.merge_seconds, merge_overhead, speedup);
    const std::string prefix = "shard_scaling_p" + std::to_string(shards);
    report->AddScalar(prefix + "_modeled_qps", result.modeled_qps);
    report->AddScalar(prefix + "_merge_overhead", merge_overhead);
    if (shards > 1) {
      report->AddScalar(prefix + "_speedup", speedup);
    }
  }
  return 0;
}

/// Live mutability under load (DESIGN.md §16): writer threads drive
/// Insert/Erase churn against a P=3 sharded index while reader threads
/// time individual queries, then a grow(6)/shrink(3) rebalance cycle runs
/// with the readers still going. Charts the concurrent mutation rate, the
/// reader p99 while the index is mutating underneath it, and the rebalance
/// migration rate. Like the shard_scaling cross-check, correctness is a
/// hard invariant, not a metric: every concurrent answer must be
/// well-formed (sorted, unique, rebalancing implies partial) and after the
/// churn quiesces a full-range query must return exactly the surviving
/// sids on exactly the original shard count — a divergence fails the run.
int RunChurnSuite(bool quick, RunReport* report) {
  bench::PrintHeader("suite: churn (writers vs readers vs rebalance)");
  obs::ProfileScope profile("churn_suite");
  Rng rng(0x5eed0c);
  const std::size_t collection = quick ? 400 : 1600;
  const std::size_t ops_per_writer = quick ? 400 : 1600;
  constexpr int kWriters = 2;
  constexpr int kReaders = 2;
  constexpr std::uint32_t kHomeShards = 3;

  SetCollection sets;
  sets.reserve(collection);
  for (std::size_t i = 0; i < collection; ++i) {
    sets.push_back(RandomSet(rng, 40, 1 << 16));
  }
  IndexLayout layout;
  layout.delta = 0.3;
  layout.points.push_back({0.2, FilterKind::kDissimilarity, 8, 0});
  layout.points.push_back({0.5, FilterKind::kSimilarity, 8, 0});
  layout.points.push_back({0.8, FilterKind::kSimilarity, 8, 0});
  IndexOptions index_options;
  index_options.embedding.minhash.num_hashes = 100;
  index_options.embedding.minhash.value_bits = 8;

  shard::ShardedIndexOptions options;
  options.num_shards = kHomeShards;
  options.index = index_options;
  auto index = shard::ShardedSetSimilarityIndex::Build(sets, layout, options);
  if (!index.ok()) {
    std::fprintf(stderr, "churn build failed: %s\n",
                 index.status().ToString().c_str());
    return 1;
  }
  exec::EpochManager epochs;
  index->EnableConcurrentWrites(&epochs);

  std::vector<ElementSet> probes;
  for (int i = 0; i < 64; ++i) probes.push_back(RandomSet(rng, 40, 1 << 16));

  std::atomic<bool> stop{false};
  std::atomic<std::size_t> reader_failures{0};
  std::vector<std::vector<double>> latencies(kReaders);
  std::vector<std::thread> readers;
  for (int r = 0; r < kReaders; ++r) {
    readers.emplace_back([&, r] {
      std::vector<double>& lat = latencies[r];
      lat.reserve(4096);
      std::size_t i = 0;
      while (!stop.load(std::memory_order_relaxed)) {
        const ElementSet& probe = probes[i++ % probes.size()];
        Stopwatch watch;
        auto answer = index->Query(probe, 0.55, 0.95);
        lat.push_back(watch.ElapsedSeconds() * 1e6);
        if (!answer.ok() ||
            !std::is_sorted(answer->sids.begin(), answer->sids.end()) ||
            std::adjacent_find(answer->sids.begin(), answer->sids.end()) !=
                answer->sids.end() ||
            (answer->rebalancing && !answer->partial)) {
          reader_failures.fetch_add(1, std::memory_order_relaxed);
        }
      }
    });
  }

  // Writers own disjoint sid ranges above the built collection, so the
  // surviving sid set is exactly reconstructible for the final cross-check.
  std::vector<std::vector<std::pair<SetId, ElementSet>>> survivors(kWriters);
  std::atomic<std::size_t> writer_failures{0};
  Stopwatch churn_watch;
  std::vector<std::thread> writers;
  for (int w = 0; w < kWriters; ++w) {
    writers.emplace_back([&, w] {
      Rng wrng(0xc4000 + w);
      SetId next = collection + static_cast<SetId>(w) * (ops_per_writer + 1);
      std::vector<std::pair<SetId, ElementSet>> mine;
      for (std::size_t op = 0; op < ops_per_writer; ++op) {
        if (mine.size() < 8 || wrng.Bernoulli(0.6)) {
          ElementSet set = RandomSet(wrng, 40, 1 << 16);
          if (set.empty()) set.push_back(1);
          if (index->Insert(next, set).ok()) {
            mine.emplace_back(next, std::move(set));
          } else {
            writer_failures.fetch_add(1, std::memory_order_relaxed);
          }
          ++next;
        } else {
          const std::size_t pick = wrng.Uniform(mine.size());
          if (!index->Erase(mine[pick].first).ok()) {
            writer_failures.fetch_add(1, std::memory_order_relaxed);
          }
          mine.erase(mine.begin() + pick);
        }
      }
      survivors[w] = std::move(mine);
    });
  }
  for (std::thread& t : writers) t.join();
  const double churn_seconds = churn_watch.ElapsedSeconds();
  const double mutation_ops =
      static_cast<double>(kWriters) * static_cast<double>(ops_per_writer);

  // Online rebalance with the readers still running: grow to 2P, shrink
  // back home. Timed across both cycles; the migration rate is what an
  // operator watches while resharding a live deployment.
  bool rebalance_failed = false;
  std::size_t total_moves = 0;
  Stopwatch rebalance_watch;
  for (std::uint32_t target : {kHomeShards * 2, kHomeShards}) {
    if (!index->BeginRebalance(target).ok()) {
      rebalance_failed = true;
      break;
    }
    for (;;) {
      auto remaining = index->StepRebalance(8);
      if (!remaining.ok()) {
        rebalance_failed = true;
        break;
      }
      if (*remaining == 0) break;
    }
    if (rebalance_failed) break;
    total_moves += index->rebalance_status().moves_done;
    if (!index->FinishRebalance().ok()) {
      rebalance_failed = true;
      break;
    }
  }
  const double rebalance_seconds = rebalance_watch.ElapsedSeconds();

  stop.store(true);
  for (std::thread& t : readers) t.join();
  epochs.Quiesce();

  if (rebalance_failed) {
    std::fprintf(stderr, "churn rebalance cycle failed\n");
    return 1;
  }
  if (writer_failures.load() != 0 || reader_failures.load() != 0) {
    std::fprintf(stderr,
                 "churn invariants violated: %zu writer, %zu reader\n",
                 writer_failures.load(), reader_failures.load());
    return 1;
  }

  // Settled cross-check: exactly the surviving sids, back on P=3.
  std::vector<SetId> expect;
  for (SetId sid = 0; sid < collection; ++sid) expect.push_back(sid);
  for (const auto& mine : survivors) {
    for (const auto& entry : mine) expect.push_back(entry.first);
  }
  std::sort(expect.begin(), expect.end());
  auto settled = index->Query(probes.front(), 0.0, 1.0);
  if (!settled.ok() || settled->sids != expect || settled->rebalancing ||
      settled->partial || index->num_shards() != kHomeShards) {
    std::fprintf(stderr,
                 "churn settled cross-check diverged (%zu answered, %zu "
                 "expected, P=%u)\n",
                 settled.ok() ? settled->sids.size() : std::size_t{0},
                 expect.size(), index->num_shards());
    return 1;
  }

  std::vector<double> all_lat;
  for (const std::vector<double>& lat : latencies) {
    all_lat.insert(all_lat.end(), lat.begin(), lat.end());
  }
  std::sort(all_lat.begin(), all_lat.end());
  const double p99 =
      all_lat.empty()
          ? 0.0
          : all_lat[std::min(all_lat.size() - 1,
                             (all_lat.size() * 99) / 100)];
  const double mutation_rate =
      churn_seconds > 0.0 ? mutation_ops / churn_seconds : 0.0;
  const double move_rate = rebalance_seconds > 0.0
                               ? static_cast<double>(total_moves) /
                                     rebalance_seconds
                               : 0.0;
  std::printf("  %.0f mutations in %.3f s (%.0f ops/s), reader p99 %.1f us "
              "over %zu queries\n",
              mutation_ops, churn_seconds, mutation_rate, p99,
              all_lat.size());
  std::printf("  rebalance %u->%u->%u: %zu moves in %.3f s (%.0f moves/s)\n",
              kHomeShards, kHomeShards * 2, kHomeShards, total_moves,
              rebalance_seconds, move_rate);
  report->AddScalar("churn_mutation_ops_per_sec", mutation_rate);
  report->AddScalar("churn_reader_p99_micros", p99);
  report->AddScalar("churn_rebalance_moves_per_sec", move_rate);
  return 0;
}

/// Workload record → checksummed save/load → replay. Runs a deterministic
/// mixed-threshold batch with full observability attached (observer +
/// 1-in-1 query-log recorder + shadow-oracle estimator), round-trips the
/// log through its binary format, replays every recorded query against the
/// same index, and requires every replayed answer digest to match the
/// recorded one — replay bit-stability is a hard invariant like the shard
/// cross-check, not a charted metric. Reports replay throughput, log size,
/// the shadow oracle's observed recall/precision, and the mass median of
/// the captured threshold distribution (the δ a workload-driven
/// re-optimization would use).
int RunReplaySuite(bool quick, RunReport* report) {
  bench::PrintHeader("suite: replay (record -> save/load -> replay)");
  Rng rng(0x5eed07);
  const std::size_t collection = quick ? 400 : 1500;
  const std::size_t batch_size = quick ? 200 : 1000;

  SetStoreOptions store_options;
  store_options.buffer_pool_pages = 64;
  SetStore store(store_options);
  std::vector<ElementSet> sets;
  sets.reserve(collection);
  for (std::size_t i = 0; i < collection; ++i) {
    sets.push_back(RandomSet(rng, 40, 1 << 16));
    if (!store.Add(sets.back()).ok()) {
      std::fprintf(stderr, "store add failed\n");
      return 1;
    }
  }
  IndexLayout layout;
  layout.delta = 0.3;
  layout.points.push_back({0.2, FilterKind::kDissimilarity, 8, 0});
  layout.points.push_back({0.5, FilterKind::kSimilarity, 8, 0});
  layout.points.push_back({0.8, FilterKind::kSimilarity, 8, 0});
  IndexOptions options;
  options.embedding.minhash.num_hashes = 100;
  options.embedding.minhash.value_bits = 8;
  auto index = SetSimilarityIndex::Build(store, layout, options);
  if (!index.ok()) {
    std::fprintf(stderr, "index build failed: %s\n",
                 index.status().ToString().c_str());
    return 1;
  }

  // A deterministic mixed-threshold batch. Each query is a stored set with
  // k of its 40 elements replaced — Jaccard to its base ≈ (40−k)/(40+k) —
  // and a range bracketing that similarity, so every range shape has real
  // answers and the shadow oracle's recall/precision measure something:
  //   k =  4 → J ≈ 0.82 in [0.70, 1.00]     k = 18 → J ≈ 0.38 in [0.25, 0.55]
  //   k = 10 → J ≈ 0.60 in [0.45, 0.80]     k = 30 → J ≈ 0.14 in [0.05, 0.35]
  constexpr std::size_t kReplacements[] = {4, 10, 18, 30};
  constexpr double kRanges[][2] = {
      {0.70, 1.00}, {0.45, 0.80}, {0.25, 0.55}, {0.05, 0.35}};
  std::vector<exec::BatchQuery> batch;
  batch.reserve(batch_size);
  for (std::size_t i = 0; i < batch_size; ++i) {
    const ElementSet& base = sets[i % sets.size()];
    const std::size_t k = kReplacements[i % 4];
    ElementSet query(base.begin() + k, base.end());
    for (std::size_t j = 0; j < k; ++j) query.push_back(rng.Uniform(1 << 16));
    NormalizeSet(query);
    exec::BatchQuery q;
    q.query = std::move(query);
    q.sigma1 = kRanges[i % 4][0];
    q.sigma2 = kRanges[i % 4][1];
    batch.push_back(std::move(q));
  }

  obs::WorkloadObserverOptions obs_options;
  obs_options.metrics_scope =
      obs::MetricsRegistry::Default().NewScope("bench_replay");
  obs::WorkloadObserver observer(obs_options);
  obs::QueryLogRecorder recorder(/*sample_every=*/1);
  obs::ShadowOracleOptions oracle_options;
  oracle_options.sample_every = quick ? 8 : 16;
  obs::ShadowOracleEstimator oracle(store, oracle_options);
  observer.set_recorder(&recorder);
  observer.set_shadow_oracle(&oracle);

  exec::BatchExecutorOptions record_options;
  record_options.num_threads = 4;
  record_options.workload_observer = &observer;
  exec::BatchExecutor record_executor(*index, record_options);
  const exec::BatchResult live = record_executor.Run(batch);
  if (live.failed != 0) {
    std::fprintf(stderr, "%zu recorded queries failed\n", live.failed);
    return 1;
  }

  // Round-trip the log through its checksummed binary format.
  obs::QueryLog log = recorder.TakeLog();
  std::stringstream buffer;
  const Status save_status = log.SaveTo(buffer);
  if (!save_status.ok()) {
    std::fprintf(stderr, "query log save failed: %s\n",
                 save_status.ToString().c_str());
    return 1;
  }
  const std::string bytes = buffer.str();
  std::istringstream in(bytes);
  auto loaded = obs::QueryLog::Load(in);
  if (!loaded.ok()) {
    std::fprintf(stderr, "query log load failed: %s\n",
                 loaded.status().ToString().c_str());
    return 1;
  }
  if (loaded->queries.size() != log.queries.size()) {
    std::fprintf(stderr, "query log round trip lost queries: %zu != %zu\n",
                 loaded->queries.size(), log.queries.size());
    return 1;
  }

  std::vector<exec::BatchQuery> replay_batch;
  replay_batch.reserve(loaded->queries.size());
  for (const obs::RecordedQuery& q : loaded->queries) {
    exec::BatchQuery b;
    b.query = q.query;
    b.sigma1 = q.sigma1;
    b.sigma2 = q.sigma2;
    replay_batch.push_back(std::move(b));
  }
  exec::BatchExecutorOptions replay_options;
  replay_options.num_threads = 4;
  exec::BatchExecutor replay_executor(*index, replay_options);
  const exec::BatchResult replayed = replay_executor.Run(replay_batch);
  if (replayed.failed != 0) {
    std::fprintf(stderr, "%zu replayed queries failed\n", replayed.failed);
    return 1;
  }
  std::size_t mismatches = 0;
  for (std::size_t i = 0; i < replay_batch.size(); ++i) {
    const obs::RecordedQuery& recorded = loaded->queries[i];
    if (replayed.results[i].sids.size() != recorded.result_count ||
        obs::QueryAnswerDigest(replayed.results[i].sids) !=
            recorded.result_digest) {
      ++mismatches;
    }
  }
  if (mismatches != 0) {
    std::fprintf(stderr,
                 "replay diverged from the recorded answers on %zu of %zu "
                 "queries\n",
                 mismatches, replay_batch.size());
    return 1;
  }

  const obs::ShadowBucketStats shadow = oracle.overall();
  const double mass_median =
      ObservedThresholdDistribution(observer.Snapshot()).MassMedian();
  std::printf("  recorded %zu queries (%zu bytes), replay modeled %.0f qps, "
              "0 digest mismatches\n",
              log.queries.size(), bytes.size(), replayed.modeled_qps);
  std::printf("  shadow oracle: %llu/%llu sampled, observed recall %.4f, "
              "candidate precision %.4f\n",
              static_cast<unsigned long long>(oracle.sampled()),
              static_cast<unsigned long long>(oracle.offered()),
              shadow.MeanRecall(), shadow.MeanPrecision());
  std::printf("  captured workload mass median (delta for re-optimize): "
              "%.3f\n",
              mass_median);
  report->AddScalar("replay_recorded_queries",
                    static_cast<double>(log.queries.size()));
  report->AddScalar("replay_log_bytes", static_cast<double>(bytes.size()));
  report->AddScalar("replay_modeled_qps", replayed.modeled_qps);
  report->AddScalar("replay_match_fraction", 1.0);  // enforced above
  report->AddScalar("replay_shadow_sampled",
                    static_cast<double>(oracle.sampled()));
  report->AddScalar("replay_observed_recall", shadow.MeanRecall());
  report->AddScalar("replay_candidate_precision", shadow.MeanPrecision());
  report->AddScalar("replay_workload_mass_median", mass_median);
  return 0;
}

/// Durable-mutation cost and recovery time (storage/wal.h + recovery.h).
/// For each fsync policy (every-record, every-8 group commit, on-checkpoint)
/// the suite recovers an identical baseline index from one checkpoint,
/// attaches a WAL under that policy, and runs the same seeded churn:
/// per-mutation p50/p99 latency charts the write-path durability tax, ops/s
/// the sustainable churn rate. The every-record run's log is then recovered
/// from — at half length and full length — charting recovery time as the
/// log grows; the fully recovered index must digest-match the churned
/// baseline (a hard invariant, not a charted metric).
int RunDurabilitySuite(bool quick, RunReport* report) {
  bench::PrintHeader("suite: durability (pinned params)");
  Rng rng(0x5eed08);
  const std::size_t collection = quick ? 400 : 1500;
  const std::size_t churn_ops = quick ? 400 : 2000;

  SetStore build_store;
  std::vector<ElementSet> sets;
  sets.reserve(collection);
  for (std::size_t i = 0; i < collection; ++i) {
    sets.push_back(RandomSet(rng, 40, 1 << 16));
    if (!build_store.Add(sets.back()).ok()) {
      std::fprintf(stderr, "store add failed\n");
      return 1;
    }
  }
  IndexLayout layout;
  layout.delta = 0.3;
  layout.points.push_back({0.2, FilterKind::kDissimilarity, 8, 0});
  layout.points.push_back({0.5, FilterKind::kSimilarity, 8, 0});
  layout.points.push_back({0.8, FilterKind::kSimilarity, 8, 0});
  IndexOptions options;
  options.embedding.minhash.num_hashes = 100;
  options.embedding.minhash.value_bits = 8;
  auto built = SetSimilarityIndex::Build(build_store, layout, options);
  if (!built.ok()) {
    std::fprintf(stderr, "index build failed: %s\n",
                 built.status().ToString().c_str());
    return 1;
  }
  std::ostringstream ckpt_out;
  if (!WriteIndexCheckpoint(*built, /*stable_lsn=*/0, ckpt_out).ok()) {
    std::fprintf(stderr, "checkpoint write failed\n");
    return 1;
  }
  const std::string checkpoint = ckpt_out.str();

  // The seeded churn script, shared across policies so their logs and
  // latency distributions measure the same work.
  struct ChurnOp {
    bool insert = false;
    SetId sid = kInvalidSetId;
    ElementSet set;
  };
  std::vector<ChurnOp> script;
  {
    std::vector<SetId> live;
    for (SetId sid = 0; sid < collection; ++sid) live.push_back(sid);
    SetId next_sid = static_cast<SetId>(collection);
    for (std::size_t i = 0; i < churn_ops; ++i) {
      ChurnOp op;
      op.insert = live.size() <= 16 || rng.NextDouble() < 0.55;
      if (op.insert) {
        op.sid = next_sid++;
        op.set = RandomSet(rng, 40, 1 << 16);
        live.push_back(op.sid);
      } else {
        const std::size_t pick =
            static_cast<std::size_t>(rng.Uniform(live.size()));
        op.sid = live[pick];
        live.erase(live.begin() + pick);
      }
      script.push_back(std::move(op));
    }
  }

  struct Policy {
    const char* name;
    WalOptions wal;
  };
  Policy policies[3];
  policies[0] = {"sync_every_record", {}};
  policies[1].name = "sync_every_8";
  policies[1].wal.sync_policy = WalSyncPolicy::kEveryN;
  policies[1].wal.sync_every_n = 8;
  policies[2].name = "sync_on_checkpoint";
  policies[2].wal.sync_policy = WalSyncPolicy::kOnCheckpoint;

  std::string captured_wal;          // the every-record run's log
  std::uint64_t churned_digest = 0;  // its post-churn index digest

  for (const Policy& policy : policies) {
    std::istringstream ckpt_in(checkpoint);
    auto rec = RecoverIndex(ckpt_in, /*wal=*/nullptr);
    if (!rec.ok()) {
      std::fprintf(stderr, "baseline recovery failed: %s\n",
                   rec.status().ToString().c_str());
      return 1;
    }
    std::ostringstream wal_stream;
    WalWriter wal(wal_stream, kWalFirstLsn, policy.wal);
    rec->index->AttachWal(&wal);

    std::vector<double> latencies;
    latencies.reserve(script.size());
    Stopwatch churn_watch;
    for (const ChurnOp& op : script) {
      Stopwatch op_watch;
      Status st;
      if (op.insert) {
        auto sid = rec->store->Add(op.set);
        st = sid.ok() ? rec->index->Insert(op.sid, op.set) : sid.status();
      } else {
        st = rec->index->Erase(op.sid);
        if (st.ok()) st = rec->store->Delete(op.sid);
      }
      if (!st.ok()) {
        std::fprintf(stderr, "churn op failed under %s: %s\n", policy.name,
                     st.ToString().c_str());
        return 1;
      }
      latencies.push_back(op_watch.ElapsedSeconds() * 1e6);
    }
    if (!wal.Sync().ok()) {
      std::fprintf(stderr, "final sync failed under %s\n", policy.name);
      return 1;
    }
    const double wall = churn_watch.ElapsedSeconds();
    rec->index->AttachWal(nullptr);

    std::sort(latencies.begin(), latencies.end());
    const double p50 = latencies[latencies.size() / 2];
    const double p99 = latencies[latencies.size() * 99 / 100];
    const double ops_per_sec =
        wall > 0.0 ? static_cast<double>(script.size()) / wall : 0.0;
    std::printf("  %-18s p50 %8.2f us  p99 %8.2f us  %9.0f ops/s  "
                "(%llu synced, %llu wal bytes)\n",
                policy.name, p50, p99, ops_per_sec,
                static_cast<unsigned long long>(wal.synced_lsn()),
                static_cast<unsigned long long>(wal.bytes_written()));
    const std::string prefix = std::string("durability_") + policy.name;
    report->AddScalar(prefix + "_mutation_p50_micros", p50);
    report->AddScalar(prefix + "_mutation_p99_micros", p99);
    report->AddScalar(prefix + "_ops_per_sec", ops_per_sec);

    if (policy.wal.sync_policy == WalSyncPolicy::kEveryRecord) {
      captured_wal = wal_stream.str();
      churned_digest = rec->index->ContentDigest();
      report->AddScalar("durability_wal_bytes",
                        static_cast<double>(captured_wal.size()));
    }
  }

  // Recovery time vs log length: replay half the log, then all of it.
  // Each cut is a fresh log rebuilt with exactly that many records, so the
  // replayed-record count is exact and the charted time scales with log
  // length alone.
  std::vector<WalRecord> records;
  WalReadStats wal_stats;
  {
    std::istringstream in(captured_wal);
    if (!ReadWal(in, &records, &wal_stats).ok()) {
      std::fprintf(stderr, "captured wal read back failed\n");
      return 1;
    }
  }
  const struct {
    const char* key;
    std::size_t count;
  } cuts[] = {{"durability_half_log_recovery_seconds", records.size() / 2},
              {"durability_full_log_recovery_seconds", records.size()}};
  for (const auto& cut : cuts) {
    // Rebuild a prefix log with exactly cut.count records.
    std::ostringstream prefix_stream;
    WalWriter prefix_wal(prefix_stream, kWalFirstLsn);
    for (std::size_t i = 0; i < cut.count; ++i) {
      const WalRecord& r = records[i];
      const auto appended = r.type == WalRecordType::kInsert
                                ? prefix_wal.AppendInsert(r.sid, r.set)
                                : prefix_wal.AppendErase(r.sid);
      if (!appended.ok()) {
        std::fprintf(stderr, "prefix wal rebuild failed\n");
        return 1;
      }
    }
    std::istringstream ckpt_in(checkpoint);
    std::istringstream wal_in(prefix_stream.str());
    Stopwatch recover_watch;
    auto rec = RecoverIndex(ckpt_in, &wal_in);
    const double seconds = recover_watch.ElapsedSeconds();
    if (!rec.ok()) {
      std::fprintf(stderr, "recovery failed: %s\n",
                   rec.status().ToString().c_str());
      return 1;
    }
    if (rec->report.wal_records_replayed != cut.count) {
      std::fprintf(stderr, "recovery replayed %llu of %zu records\n",
                   static_cast<unsigned long long>(
                       rec->report.wal_records_replayed),
                   cut.count);
      return 1;
    }
    if (cut.count == records.size() &&
        rec->index->ContentDigest() != churned_digest) {
      std::fprintf(stderr,
                   "recovered index diverged from the churned baseline\n");
      return 1;
    }
    std::printf("  recover %5zu records: %.4f s (%.0f records/s)\n",
                cut.count, seconds,
                seconds > 0.0 ? static_cast<double>(cut.count) / seconds
                              : 0.0);
    report->AddScalar(cut.key, seconds);
  }
  report->AddScalar("durability_recovered_records",
                    static_cast<double>(records.size()));
  return 0;
}

/// The introspection plane scraping itself mid-run: a sharded index behind
/// a QueryRouter feeds the SLO tracker through the router's cumulative
/// instruments, and after every query round the suite GETs /metrics over a
/// real localhost socket and runs the exposition through the conformance
/// validator — any malformed line (torn histogram family included) fails
/// the run. The health ladder is exercised end to end: quarantining one
/// shard must flip /healthz from "healthy" to "degraded" (still HTTP 200 —
/// degraded keeps serving) and un-quarantining must flip it back. Charted
/// scalars are the windowed SLO view of the routed queries (p50/p99 over
/// the 1h window) plus the error-budget burn rate and the scrape cost.
int RunIntrospectionSuite(bool quick, RunReport* report) {
  bench::PrintHeader("suite: introspection (self-scrape mid-run)");
  Rng rng(0x5eed09);
  const std::size_t collection = quick ? 300 : 1200;
  const std::size_t rounds = 3;
  const std::size_t queries_per_round = quick ? 60 : 300;

  SetCollection sets;
  sets.reserve(collection);
  for (std::size_t i = 0; i < collection; ++i) {
    sets.push_back(RandomSet(rng, 40, 1 << 16));
  }
  IndexLayout layout;
  layout.delta = 0.3;
  layout.points.push_back({0.2, FilterKind::kDissimilarity, 8, 0});
  layout.points.push_back({0.5, FilterKind::kSimilarity, 8, 0});
  layout.points.push_back({0.8, FilterKind::kSimilarity, 8, 0});
  shard::ShardedIndexOptions options;
  options.num_shards = 2;
  options.index.embedding.minhash.num_hashes = 100;
  options.index.embedding.minhash.value_bits = 8;
  auto index = shard::ShardedSetSimilarityIndex::Build(sets, layout, options);
  if (!index.ok()) {
    std::fprintf(stderr, "sharded build failed: %s\n",
                 index.status().ToString().c_str());
    return 1;
  }
  shard::QueryRouterOptions router_options;
  router_options.num_threads = 2;
  shard::QueryRouter router(*index, router_options);

  auto& registry = obs::MetricsRegistry::Default();
  server::IntrospectionServerOptions server_options;
  server_options.tick_interval_seconds = 0.0;  // the suite drives Tick
  server::IntrospectionServer server(server_options);
  server::StatusSources sources;
  sources.sharded_index = &*index;
  sources.slo_latency =
      registry.GetHistogram("ssr_router_query_latency_micros",
                            router.metrics_scope(),
                            obs::LatencyBoundsMicros());
  sources.slo_total = registry.GetCounter("ssr_router_queries_total");
  sources.slo_errors =
      registry.GetCounter("ssr_router_partial_answers_total");
  server.SetSources(sources);
  const Status started = server.Start();
  if (!started.ok()) {
    std::fprintf(stderr, "introspection server start failed: %s\n",
                 started.ToString().c_str());
    return 1;
  }
  std::printf("  serving on 127.0.0.1:%u\n",
              static_cast<unsigned>(server.port()));

  auto scrape = [&](const char* path) {
    return server::HttpGet("127.0.0.1", server.port(), path);
  };

  std::size_t scrape_bytes = 0;
  for (std::size_t round = 0; round < rounds; ++round) {
    for (std::size_t q = 0; q < queries_per_round; ++q) {
      auto result = router.Query(sets[(round * queries_per_round + q) %
                                      sets.size()],
                                 0.55, 0.95);
      if (!result.ok()) {
        std::fprintf(stderr, "routed query failed: %s\n",
                     result.status().ToString().c_str());
        return 1;
      }
    }
    server.Tick(server.NowSeconds());
    const server::HttpGetResult metrics = scrape("/metrics");
    if (!metrics.ok || metrics.status != 200) {
      std::fprintf(stderr, "mid-run /metrics scrape failed: %s (status %d)\n",
                   metrics.error.c_str(), metrics.status);
      return 1;
    }
    const auto issues = obs::ValidateExposition(metrics.body);
    if (!issues.empty()) {
      std::fprintf(stderr,
                   "malformed /metrics exposition in round %zu:\n%s",
                   round, obs::FormatIssues(issues).c_str());
      return 1;
    }
    scrape_bytes = metrics.body.size();
  }

  // The health ladder end to end: healthy with every shard live, degraded
  // (but still HTTP 200) with one shard quarantined, healthy again after
  // the quarantine lifts. Mutating the degraded flag is only legal with no
  // query in flight, which is the case between rounds.
  const auto expect_health = [&](const char* want_status,
                                 const char* want_code) {
    const server::HttpGetResult health = scrape("/healthz");
    if (!health.ok || health.status != 200) {
      std::fprintf(stderr, "/healthz scrape failed: %s (status %d)\n",
                   health.error.c_str(), health.status);
      return false;
    }
    std::string needle = "\"status\":\"";
    needle += want_status;
    needle += '"';
    if (health.body.find(needle) == std::string::npos) {
      std::fprintf(stderr, "/healthz expected %s, got: %s\n", want_status,
                   health.body.c_str());
      return false;
    }
    if (want_code != nullptr &&
        health.body.find(want_code) == std::string::npos) {
      std::fprintf(stderr, "/healthz missing reason %s, got: %s\n",
                   want_code, health.body.c_str());
      return false;
    }
    return true;
  };
  if (!expect_health("healthy", nullptr)) return 1;
  index->SetShardDegraded(0, true);
  if (!expect_health("degraded", "shard_quarantine")) {
    index->SetShardDegraded(0, false);
    return 1;
  }
  index->SetShardDegraded(0, false);
  if (!expect_health("healthy", nullptr)) return 1;
  std::printf("  /healthz flipped healthy -> degraded -> healthy with the "
              "shard quarantine\n");

  // Every other endpoint must answer over the socket.
  for (const char* path : {"/statusz", "/tracez?limit=32", "/varz"}) {
    const server::HttpGetResult page = scrape(path);
    if (!page.ok || page.status != 200 || page.body.empty()) {
      std::fprintf(stderr, "GET %s failed: %s (status %d)\n", path,
                   page.error.c_str(), page.status);
      return 1;
    }
  }

  const obs::SloWindowReport window =
      server.slo_tracker().Report(obs::kSloWindowHour, server.NowSeconds());
  std::printf("  %llu routed queries: p50 %.1f us, p99 %.1f us, "
              "availability %.6f, burn %.3f\n",
              static_cast<unsigned long long>(window.total),
              window.p50_micros, window.p99_micros, window.availability,
              window.burn_rate);
  std::printf("  %zu scrapes served, last /metrics %zu bytes\n",
              static_cast<std::size_t>(server.requests_served()),
              scrape_bytes);
  report->AddScalar("introspection_query_p50_micros", window.p50_micros);
  report->AddScalar("introspection_query_p99_micros", window.p99_micros);
  report->AddScalar("introspection_availability_burn_rate",
                    window.burn_rate);
  report->AddScalar("introspection_scrape_bytes",
                    static_cast<double>(scrape_bytes));
  report->AddScalar("introspection_requests_served",
                    static_cast<double>(server.requests_served()));
  server.Stop();
  return 0;
}

/// First free BENCH_<n>.json slot in `dir` (the trajectory is append-only).
std::string NextTrajectoryPath(const std::string& dir) {
  for (int n = 0;; ++n) {
    // Built with append: `const char* + string&&` operator+ chains trip the
    // GCC 12 -Wrestrict false positive (PR105329) under -O2 -Werror.
    std::string name = "BENCH_";
    name += std::to_string(n);
    name += ".json";
    const std::filesystem::path candidate = std::filesystem::path(dir) / name;
    if (!std::filesystem::exists(candidate)) return candidate.string();
  }
}

/// The canonical suite table: name, one-line description, entry point.
/// --list prints it; --only is validated against it before anything runs.
struct Suite {
  const char* name;
  const char* description;
  int (*run)(bool quick, RunReport* report);
};

constexpr Suite kSuites[] = {
    {"micro", "single-thread primitive costs (jaccard, sign, btree find)",
     RunMicroSuite},
    {"signing", "signature engine v2: per-family sign cost + accuracy",
     RunSigningSuite},
    {"query_candidates", "candidate generation through the composite index",
     RunQueryCandidatesSuite},
    {"fig7", "Figure 7 bucketed response-time harness", RunFig7Suite},
    {"filter_curve", "Equation 4 similarity-filter probe curve",
     RunFilterCurveSuite},
    {"build_scaling", "parallel index build at 1/2/4/8 workers",
     RunBuildScalingSuite},
    {"query_throughput", "concurrent batch-query throughput at 1/2/4/8",
     RunQueryThroughputSuite},
    {"shard_scaling", "sharded scatter/gather at P=1/2/4 with cross-check",
     RunShardScalingSuite},
    {"churn", "concurrent Insert/Erase vs readers + online rebalance",
     RunChurnSuite},
    {"replay", "workload record -> save/load -> replay bit-stability",
     RunReplaySuite},
    {"durability", "WAL fsync policies + recovery time vs log length",
     RunDurabilitySuite},
    {"introspection", "HTTP self-scrape: /metrics conformance, health flip",
     RunIntrospectionSuite},
};

void PrintSuites(std::FILE* out) {
  std::fprintf(out, "available suites:\n");
  for (const Suite& suite : kSuites) {
    std::fprintf(out, "  %-18s %s\n", suite.name, suite.description);
  }
}

int Run(const bench::Flags& flags) {
  if (flags.GetBool("list")) {
    PrintSuites(stdout);
    return 0;
  }
  const std::string only = flags.GetString("only", "");
  if (!only.empty()) {
    const bool known = std::any_of(
        std::begin(kSuites), std::end(kSuites),
        [&only](const Suite& suite) { return only == suite.name; });
    if (!known) {
      // Checked before any suite runs: a typo'd --only must not burn a
      // bench cycle or, worse, write a trajectory point with no suites.
      std::fprintf(stderr, "unknown --only suite: %s\n", only.c_str());
      PrintSuites(stderr);
      return 2;
    }
  }

  const bool quick = flags.GetBool("quick");
  RunReport report("ssr_benchrunner");
  obs::Tracer::Default().set_enabled(true);
  obs::Profiler::Default().Enable();

  report.AddParam("quick", quick);
  const std::string label = flags.GetString("label", "");
  if (!label.empty()) report.AddParam("label", label);
  report.AddParam("perf_source", std::string(obs::PerfSourceName(
                                     obs::Profiler::Default().source())));
  if (!only.empty()) report.AddParam("only", only);

  // --serve: the live introspection plane for the whole run. No SLO
  // sources are attached here (the introspection suite wires its own
  // server to a router); this endpoint exposes the process-wide registry,
  // traces, and health while the suites execute — and for --serve_linger
  // seconds afterwards, which is how the CI smoke job curls a live binary.
  std::unique_ptr<server::IntrospectionServer> serve;
  if (flags.GetBool("serve")) {
    server::IntrospectionServerOptions serve_options;
    serve_options.port =
        static_cast<std::uint16_t>(flags.GetInt("serve_port", 0));
    serve = std::make_unique<server::IntrospectionServer>(serve_options);
    const Status started = serve->Start();
    if (!started.ok()) {
      std::fprintf(stderr, "--serve failed: %s\n",
                   started.ToString().c_str());
      return 1;
    }
    std::printf("introspection server on http://127.0.0.1:%u "
                "(/metrics /healthz /statusz /tracez /varz)\n",
                static_cast<unsigned>(serve->port()));
  }

  Stopwatch total;
  for (const Suite& suite : kSuites) {
    if (!only.empty() && only != suite.name) continue;
    if (suite.run(quick, &report) != 0) return 1;
  }
  report.AddScalar("total_wall_seconds", total.ElapsedSeconds());

  std::string path = flags.GetString("json", "");
  if (path.empty()) {
    const std::string dir = flags.GetString("out", ".");
    std::error_code ec;
    std::filesystem::create_directories(dir, ec);
    if (ec) {
      std::fprintf(stderr, "cannot create out dir %s: %s\n", dir.c_str(),
                   ec.message().c_str());
      return 1;
    }
    path = NextTrajectoryPath(dir);
  }
  const Status status = report.WriteTo(path);
  if (!status.ok()) {
    std::fprintf(stderr, "trajectory write failed: %s\n",
                 status.ToString().c_str());
    return 1;
  }
  std::printf("\nwrote trajectory point %s (counter source: %s)\n",
              path.c_str(),
              std::string(obs::PerfSourceName(
                              obs::Profiler::Default().source()))
                  .c_str());

  const std::string trace_path = bench::ChromeTracePath(flags);
  if (!trace_path.empty()) {
    std::string error;
    if (!obs::WriteChromeTraceFile(trace_path, obs::Tracer::Default(),
                                   &error)) {
      std::fprintf(stderr, "%s\n", error.c_str());
      return 1;
    }
    std::printf("wrote Chrome trace to %s (open in chrome://tracing)\n",
                trace_path.c_str());
  }

  const double linger = flags.GetDouble("serve_linger", 0.0);
  if (serve != nullptr && linger > 0.0) {
    std::printf("lingering %.1f s for external scrapes on port %u ...\n",
                linger, static_cast<unsigned>(serve->port()));
    std::fflush(stdout);
    std::this_thread::sleep_for(
        std::chrono::milliseconds(static_cast<long>(linger * 1000.0)));
  }
  return 0;
}

}  // namespace
}  // namespace ssr

int main(int argc, char** argv) {
  ssr::SetLogLevel(ssr::LogLevel::kWarning);
  ssr::bench::Flags flags(argc, argv);
  return ssr::Run(flags);
}
