// Reproduces Figure 7(a)/(b): average query response time per result-size
// bucket for the index (I/O + CPU, reported separately) against the
// sequential-scan comparator, with 1000 hash tables and 100 min-hash
// values (the paper's configuration). Times are simulated-I/O seconds plus
// measured CPU seconds; the shape to compare with the paper is the
// index-vs-scan ordering per bucket and the growth of index time with
// result size.
//
// Flags: --scale (default 0.05), --dataset=set1|set2|both, --budget=300,
// --queries_per_bucket=40
//
// Scale note: the paper runs 1000 hash tables against a ~100,000-page
// collection, so per-query bucket probes are negligible next to a scan. A
// scaled-down collection must scale the budget too or probe I/O dominates;
// the defaults keep the paper's budget:pages ratio. Use --scale=1
// --budget=1000 for the full-size configuration.

#include <cstdio>
#include <sstream>
#include <vector>

#include "bench_common.h"
#include "eval/harness.h"
#include "eval/table_printer.h"
#include "util/logging.h"

namespace ssr {
namespace {

void RunDataset(const bench::Flags& flags, const std::string& dataset,
                const char* figure_label, RunReport* report) {
  ExperimentConfig config;
  config.dataset = dataset;
  config.scale = flags.GetDouble("scale", 0.05);
  config.table_budget =
      static_cast<std::size_t>(flags.GetInt("budget", 300));
  // The analytic acceptance model is conservative at scaled sizes
  // (measured recall runs ~10 points above prediction, see EXPERIMENTS.md);
  // a 0.7 predicted target admits the finer multi-FI layouts this figure
  // needs and measures ~85-90% recall.
  config.recall_threshold = flags.GetDouble("recall_target", 0.7);
  config.num_minhashes =
      static_cast<std::size_t>(flags.GetInt("minhashes", 100));
  config.queries_per_bucket =
      static_cast<std::size_t>(flags.GetInt("queries_per_bucket", 40));
  config.max_attempts_factor = 12;
  config.run_scan = true;

  bench::PrintHeader(std::string("Figure 7") + figure_label +
                     ": avg response time per bucket, dataset " + dataset +
                     ", budget " + std::to_string(config.table_budget) +
                     ", " + std::to_string(config.num_minhashes) +
                     " min-hashes");

  auto harness = ExperimentHarness::Create(config);
  if (!harness.ok()) {
    std::printf("harness failed: %s\n", harness.status().ToString().c_str());
    return;
  }
  auto result = (*harness)->RunBucketedQueries();
  if (!result.ok()) {
    std::printf("sweep failed: %s\n", result.status().ToString().c_str());
    return;
  }
  std::printf("\n%zu sets, %zu heap pages; analytic crossover at %.0f "
              "candidate sets (%.1f%% of the collection)\n",
              result->collection_size, result->heap_pages,
              result->crossover_result_size,
              100.0 * result->crossover_result_size /
                  static_cast<double>(result->collection_size));
  TablePrinter table({"bucket", "queries", "index IO (s)", "index CPU (s)",
                      "index total (s)", "scan IO (s)", "scan CPU (s)",
                      "scan total (s)", "winner"});
  for (const auto& bucket : result->buckets) {
    if (bucket.query_count == 0) {
      table.AddRow({bucket.label, "0"});
      continue;
    }
    const double index_total = bucket.avg_index_total_seconds();
    const double scan_total = bucket.avg_scan_total_seconds();
    table.AddRow({bucket.label, TablePrinter::Count(bucket.query_count),
                  TablePrinter::Num(bucket.avg_index_io_seconds),
                  TablePrinter::Num(bucket.avg_index_cpu_seconds),
                  TablePrinter::Num(index_total),
                  TablePrinter::Num(bucket.avg_scan_io_seconds),
                  TablePrinter::Num(bucket.avg_scan_cpu_seconds),
                  TablePrinter::Num(scan_total),
                  index_total < scan_total ? "index" : "scan"});
  }
  std::ostringstream out;
  table.Print(out);
  std::printf("%s", out.str().c_str());

  report->AddTable("figure7" + std::string(figure_label) + " " + dataset,
                   table);
  report->AddScalar(dataset + "_collection_size",
                    static_cast<std::uint64_t>(result->collection_size));
  report->AddScalar(dataset + "_heap_pages",
                    static_cast<std::uint64_t>(result->heap_pages));
  report->AddScalar(dataset + "_crossover_result_size",
                    result->crossover_result_size);
  report->AddScalar(dataset + "_total_queries",
                    static_cast<std::uint64_t>(result->total_queries_run));
}

int Run(const bench::Flags& flags) {
  RunReport report("fig7_response_time");
  bench::EnableObservability(flags);
  const std::string dataset = flags.GetString("dataset", "both");
  report.AddParam("dataset", dataset);
  report.AddParam("scale", flags.GetDouble("scale", 0.05));
  report.AddParam("budget", static_cast<std::uint64_t>(
                                flags.GetInt("budget", 300)));
  report.AddParam("recall_target", flags.GetDouble("recall_target", 0.7));
  report.AddParam("minhashes", static_cast<std::uint64_t>(
                                   flags.GetInt("minhashes", 100)));
  report.AddParam("queries_per_bucket",
                  static_cast<std::uint64_t>(
                      flags.GetInt("queries_per_bucket", 40)));
  if (dataset == "both") {
    RunDataset(flags, "set1", "(a)", &report);
    RunDataset(flags, "set2", "(b)", &report);
  } else {
    RunDataset(flags, dataset, dataset == "set2" ? "(b)" : "(a)", &report);
  }
  return bench::WriteReportIfRequested(flags, report);
}

}  // namespace
}  // namespace ssr

int main(int argc, char** argv) {
  ssr::SetLogLevel(ssr::LogLevel::kWarning);
  ssr::bench::Flags flags(argc, argv);
  return ssr::Run(flags);
}
