// Reproduces the Section 6 crossover analysis: index response time grows
// with the candidate result size while the sequential scan stays flat, and
// the index wins while the result is below |S| * a / rtn (about 23% of the
// collection for the paper's record sizes). Sweeps query ranges that
// produce increasing result sizes and prints both times per query along
// with the analytic bound.
//
// Flags: --scale=0.05 --dataset=set1 --budget=300 --queries=150

#include <algorithm>
#include <cstdio>
#include <sstream>
#include <vector>

#include "baseline/sequential_scan.h"
#include "bench_common.h"
#include "eval/harness.h"
#include "eval/table_printer.h"
#include "util/logging.h"

namespace ssr {
namespace {

int Run(const bench::Flags& flags) {
  RunReport report("crossover_sweep");
  bench::EnableObservability(flags);
  ExperimentConfig config;
  config.dataset = flags.GetString("dataset", "set1");
  config.scale = flags.GetDouble("scale", 0.05);
  config.table_budget =
      static_cast<std::size_t>(flags.GetInt("budget", 300));
  config.recall_threshold = flags.GetDouble("recall_target", 0.7);
  config.run_scan = true;

  auto harness = ExperimentHarness::Create(config);
  if (!harness.ok()) {
    std::printf("harness failed: %s\n", harness.status().ToString().c_str());
    return 1;
  }
  ExperimentHarness& h = **harness;
  const double crossover = ScanCrossoverResultSize(h.store());
  const std::size_t n = h.store().size();

  bench::PrintHeader(
      "Section 6 crossover sweep: index vs scan simulated response time "
      "as result size grows");
  std::printf("collection: %zu sets, %zu pages, avg %.2f pages/set\n",
              n, h.store().num_pages(), h.store().AvgSetPages());
  std::printf("analytic crossover |S|*a/rtn = %.0f candidate sets "
              "(%.1f%% of the collection)\n\n",
              crossover, 100.0 * crossover / static_cast<double>(n));

  // Sweep queries and bucket them by measured candidate count.
  QueryGeneratorParams qparams;
  qparams.max_width = 0.7;
  QueryGenerator generator(h.collection(), qparams);
  struct Sample {
    std::size_t fetched;
    double index_seconds;
    double scan_seconds;
  };
  std::vector<Sample> samples;
  const int queries = static_cast<int>(flags.GetInt("queries", 150));
  for (int i = 0; i < queries; ++i) {
    auto outcome = h.RunOne(generator.Next(), /*with_scan=*/true);
    if (!outcome.ok()) continue;
    samples.push_back({outcome->index.stats.sets_fetched,
                       outcome->index.stats.io_seconds +
                           outcome->index.stats.cpu_seconds,
                       outcome->scan_io_seconds + outcome->scan_cpu_seconds});
  }
  std::sort(samples.begin(), samples.end(),
            [](const Sample& a, const Sample& b) {
              return a.fetched < b.fetched;
            });

  // Aggregate into deciles of fetched volume for a readable series.
  TablePrinter table({"fetched sets (avg)", "% of collection",
                      "index time (s)", "scan time (s)", "winner"});
  const std::size_t per_bin =
      samples.empty() ? 1 : std::max<std::size_t>(1, samples.size() / 10);
  for (std::size_t start = 0; start < samples.size(); start += per_bin) {
    const std::size_t end = std::min(samples.size(), start + per_bin);
    double fetched = 0.0, index_s = 0.0, scan_s = 0.0;
    for (std::size_t i = start; i < end; ++i) {
      fetched += static_cast<double>(samples[i].fetched);
      index_s += samples[i].index_seconds;
      scan_s += samples[i].scan_seconds;
    }
    const double count = static_cast<double>(end - start);
    fetched /= count;
    index_s /= count;
    scan_s /= count;
    table.AddRow({TablePrinter::Num(fetched, 0),
                  TablePrinter::Pct(fetched / static_cast<double>(n)),
                  TablePrinter::Num(index_s),
                  TablePrinter::Num(scan_s),
                  index_s < scan_s ? "index" : "scan"});
  }
  std::ostringstream out;
  table.Print(out);
  std::printf("%s", out.str().c_str());

  report.AddParam("dataset", config.dataset);
  report.AddParam("scale", config.scale);
  report.AddParam("budget", static_cast<std::uint64_t>(config.table_budget));
  report.AddParam("queries", static_cast<std::uint64_t>(queries));
  report.AddScalar("collection_size", static_cast<std::uint64_t>(n));
  report.AddScalar("crossover_result_size", crossover);
  report.AddTable("crossover deciles", table);
  return bench::WriteReportIfRequested(flags, report);
}

}  // namespace
}  // namespace ssr

int main(int argc, char** argv) {
  ssr::SetLogLevel(ssr::LogLevel::kWarning);
  ssr::bench::Flags flags(argc, argv);
  return ssr::Run(flags);
}
