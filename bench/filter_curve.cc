// Reproduces the Section 4.1 filter-function analysis (Equation 4): the
// S-shaped collision probability p_{r,l}(s) = 1 − (1 − s^r)^l, measured
// empirically against the analytic curve, and the r-l tradeoff table (for a
// fixed turning point, more tables -> larger r -> sharper filter).
//
// Flags: --trials=400 --minhashes=100 --tables=15 --s_star=0.85

#include <cstdio>
#include <sstream>

#include "bench_common.h"
#include "core/filter_function.h"
#include "core/sfi.h"
#include "eval/table_printer.h"
#include "hamming/embedding.h"
#include "util/set_ops.h"

namespace ssr {
namespace {

int Run(const bench::Flags& flags) {
  const int trials = static_cast<int>(flags.GetInt("trials", 400));
  const double s_star = flags.GetDouble("s_star", 0.85);
  const std::size_t tables =
      static_cast<std::size_t>(flags.GetInt("tables", 15));

  RunReport report("filter_curve");
  bench::EnableObservability(flags);
  report.AddParam("trials", static_cast<std::uint64_t>(trials));
  report.AddParam("s_star", s_star);
  report.AddParam("tables", static_cast<std::uint64_t>(tables));

  EmbeddingParams params;
  params.minhash.num_hashes =
      static_cast<std::size_t>(flags.GetInt("minhashes", 100));
  params.minhash.value_bits = 8;
  params.minhash.seed = 0xf117e8;
  auto embedding = Embedding::Create(params);
  if (!embedding.ok()) {
    std::printf("embedding failed: %s\n",
                embedding.status().ToString().c_str());
    return 1;
  }

  bench::PrintHeader(
      "Equation 4: p_{r,l}(s) analytic vs measured (turning point s* = " +
      TablePrinter::Num(s_star, 2) + " in Hamming space, l = " +
      std::to_string(tables) + ")");

  SfiParams sfi_params;
  sfi_params.s_star = s_star;
  sfi_params.l = tables;
  auto sfi = SimilarityFilterIndex::Create(*embedding, sfi_params, 10000);
  if (!sfi.ok()) return 1;
  const FilterFunction& filter = sfi->filter();
  std::printf("solved r = %zu for l = %zu\n", filter.r(), filter.l());

  // Query of 100 elements; populations at controlled set overlap.
  ElementSet query;
  for (ElementId x = 0; x < 100; ++x) query.push_back(x);
  TablePrinter table({"set sim", "Hamming sim", "analytic p", "measured p"});
  for (std::size_t inter : {20u, 40u, 55u, 70u, 80u, 88u, 95u, 99u}) {
    const double sim =
        static_cast<double>(inter) / static_cast<double>(200 - inter);
    const double s_h = embedding->SetToHammingSimilarity(sim);
    auto level = SimilarityFilterIndex::Create(*embedding, sfi_params,
                                               static_cast<std::size_t>(trials));
    for (int c = 0; c < trials; ++c) {
      ElementSet s(query.begin(),
                   query.begin() + static_cast<std::ptrdiff_t>(inter));
      for (std::size_t i = 0; i < 100 - inter; ++i) {
        s.push_back(1000000 + static_cast<ElementId>(c) * 1000 + i);
      }
      NormalizeSet(s);
      level->Insert(static_cast<SetId>(c), embedding->Sign(s));
    }
    const auto found = level->SimVector(embedding->Sign(query));
    const double measured =
        static_cast<double>(found.size()) / static_cast<double>(trials);
    table.AddRow({TablePrinter::Num(sim, 3), TablePrinter::Num(s_h, 3),
                  TablePrinter::Num(filter.Collision(s_h), 3),
                  TablePrinter::Num(measured, 3)});
  }
  std::ostringstream out1;
  table.Print(out1);
  std::printf("%s", out1.str().c_str());
  report.AddTable("equation4 analytic vs measured", table);

  bench::PrintHeader(
      "Section 4.1 r-l tradeoff: fixed turning point, varying table count");
  TablePrinter tradeoff(
      {"l", "solved r", "turning point", "0.1->0.9 width"});
  for (std::size_t l : {1u, 2u, 5u, 10u, 25u, 50u, 100u, 250u, 500u}) {
    const FilterFunction f = FilterFunction::ForTurningPoint(s_star, l);
    tradeoff.AddRow({TablePrinter::Count(l), TablePrinter::Count(f.r()),
                     TablePrinter::Num(f.TurningPoint(), 3),
                     TablePrinter::Num(f.TransitionWidth(), 3)});
  }
  std::ostringstream out2;
  tradeoff.Print(out2);
  std::printf("%s", out2.str().c_str());
  report.AddTable("r-l tradeoff", tradeoff);
  return bench::WriteReportIfRequested(flags, report);
}

}  // namespace
}  // namespace ssr

int main(int argc, char** argv) {
  ssr::bench::Flags flags(argc, argv);
  return ssr::Run(flags);
}
