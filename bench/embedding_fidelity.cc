// Reproduces the Section 3.2 embedding analysis: Theorem 1 (equidistant
// codes make embedded Hamming similarity an exact affine function of
// signature agreement) versus the Example 1 straw man (plain binary
// encoding distorts similarity unpredictably). Reports, per encoder, the
// deviation between the ideal affine mapping and the observed bit
// agreement over random signature pairs at controlled agreement levels.
//
// Flags: --pairs=300 --minhashes=50 --bits=8

#include <cmath>
#include <cstdio>
#include <sstream>

#include "bench_common.h"
#include "eval/table_printer.h"
#include "hamming/embedding.h"
#include "util/random.h"

namespace ssr {
namespace {

struct Deviation {
  double mean_abs = 0.0;
  double max_abs = 0.0;
};

Deviation MeasureDeviation(const Embedding& embedding, double agreement,
                           int pairs, Rng& rng) {
  const std::size_t k = embedding.hasher().params().num_hashes;
  const std::uint16_t mask = embedding.hasher().value_mask();
  const std::size_t agree = static_cast<std::size_t>(
      std::lround(agreement * static_cast<double>(k)));
  Deviation dev;
  for (int p = 0; p < pairs; ++p) {
    Signature a(k), b(k);
    for (std::size_t i = 0; i < k; ++i) {
      a[i] = static_cast<std::uint16_t>(rng.Next() & mask);
      if (i < agree) {
        b[i] = a[i];
      } else {
        do {
          b[i] = static_cast<std::uint16_t>(rng.Next() & mask);
        } while (b[i] == a[i]);
      }
    }
    const double s =
        static_cast<double>(agree) / static_cast<double>(k);
    const double ideal = embedding.SetToHammingSimilarity(s);
    const double observed =
        HammingSimilarity(embedding.EmbedSignature(a),
                          embedding.EmbedSignature(b));
    const double err = std::fabs(observed - ideal);
    dev.mean_abs += err;
    dev.max_abs = std::max(dev.max_abs, err);
  }
  dev.mean_abs /= pairs;
  return dev;
}

int Run(const bench::Flags& flags) {
  const int pairs = static_cast<int>(flags.GetInt("pairs", 300));
  Rng rng(0xfade11);

  RunReport report("embedding_fidelity");
  bench::EnableObservability(flags);
  report.AddParam("pairs", static_cast<std::uint64_t>(pairs));
  report.AddParam("minhashes",
                  static_cast<std::uint64_t>(flags.GetInt("minhashes", 50)));
  report.AddParam("bits",
                  static_cast<std::uint64_t>(flags.GetInt("bits", 8)));

  bench::PrintHeader(
      "Theorem 1 / Example 1: embedding fidelity by encoder "
      "(|observed Hamming sim - affine ideal|, over random signature "
      "pairs)");
  TablePrinter table({"encoder", "agreement", "mean |err|", "max |err|"});
  for (CodeKind kind :
       {CodeKind::kHadamard, CodeKind::kSimplex, CodeKind::kNaiveBinary}) {
    EmbeddingParams params;
    params.minhash.num_hashes =
        static_cast<std::size_t>(flags.GetInt("minhashes", 50));
    params.minhash.value_bits =
        static_cast<unsigned>(flags.GetInt("bits", 8));
    params.minhash.seed = 0xfade22;
    params.code_kind = kind;
    auto embedding = Embedding::Create(params);
    if (!embedding.ok()) return 1;
    for (double agreement : {0.0, 0.25, 0.5, 0.75, 1.0}) {
      const Deviation dev =
          MeasureDeviation(*embedding, agreement, pairs, rng);
      table.AddRow({embedding->code().name(),
                    TablePrinter::Num(agreement, 2),
                    TablePrinter::Num(dev.mean_abs, 4),
                    TablePrinter::Num(dev.max_abs, 4)});
    }
  }
  std::ostringstream out;
  table.Print(out);
  std::printf("%s", out.str().c_str());
  report.AddTable("fidelity by encoder", table);
  std::printf(
      "\nEquidistant codes (hadamard, simplex) show zero deviation:\n"
      "Theorem 1 holds exactly. The naive binary encoding (Example 1)\n"
      "deviates by tens of percent - it does not preserve similarity.\n");

  // The paper's concrete Example 1 numbers.
  bench::PrintHeader("Example 1 verbatim: V1=(7,3,5,1), V2=(3,3,5,3), b=3");
  EmbeddingParams params;
  params.minhash.num_hashes = 4;
  params.minhash.value_bits = 3;
  params.code_kind = CodeKind::kNaiveBinary;
  auto naive = Embedding::Create(params);
  Signature v1(std::vector<std::uint16_t>{7, 3, 5, 1});
  Signature v2(std::vector<std::uint16_t>{3, 3, 5, 3});
  std::printf("signature agreement: %.2f\n", v1.AgreementFraction(v2));
  std::printf("naive-embedding bit agreement: %.2f (paper reports 0.83)\n",
              HammingSimilarity(naive->EmbedSignature(v1),
                                naive->EmbedSignature(v2)));
  params.code_kind = CodeKind::kHadamard;
  auto hadamard = Embedding::Create(params);
  std::printf("hadamard bit agreement: %.2f (affine ideal: %.2f)\n",
              HammingSimilarity(hadamard->EmbedSignature(v1),
                                hadamard->EmbedSignature(v2)),
              hadamard->SetToHammingSimilarity(v1.AgreementFraction(v2)));
  report.AddScalar("example1_signature_agreement", v1.AgreementFraction(v2));
  return bench::WriteReportIfRequested(flags, report);
}

}  // namespace
}  // namespace ssr

int main(int argc, char** argv) {
  ssr::bench::Flags flags(argc, argv);
  return ssr::Run(flags);
}
