// Google-benchmark microbenchmarks of the core primitives: exact Jaccard,
// min-hash signing, ECC encoding, on-the-fly sampled-bit key extraction,
// Hamming distance, SFI probe, composite-index candidate generation, and
// B+-tree operations. These quantify the CPU-side costs that the paper
// folds into "processor time" in Figure 7.
//
// Accepts --json=<path> like the other bench binaries; it is translated to
// google-benchmark's --benchmark_out/--benchmark_out_format=json pair.
// --trace=<path> writes a Chrome trace of the run (one span per benchmark
// suite invocation plus any spans the primitives themselves open).

#include <benchmark/benchmark.h>

#include <cstdio>
#include <cstring>
#include <sstream>
#include <string>
#include <vector>

#include "obs/chrome_trace.h"
#include "obs/profile.h"
#include "obs/trace.h"

#include "core/index_layout.h"
#include "core/set_similarity_index.h"
#include "core/sfi.h"
#include "hamming/embedding.h"
#include "storage/bplus_tree.h"
#include "storage/set_store.h"
#include "util/hash.h"
#include "util/random.h"
#include "util/set_ops.h"

namespace ssr {
namespace {

ElementSet RandomSet(Rng& rng, std::size_t size, std::uint64_t universe) {
  ElementSet s;
  s.reserve(size);
  for (std::size_t i = 0; i < size; ++i) s.push_back(rng.Uniform(universe));
  NormalizeSet(s);
  return s;
}

Embedding DefaultEmbedding(std::size_t k = 100) {
  EmbeddingParams p;
  p.minhash.num_hashes = k;
  p.minhash.value_bits = 8;
  auto e = Embedding::Create(p);
  return std::move(e).value();
}

void BM_Jaccard(benchmark::State& state) {
  Rng rng(1);
  const ElementSet a = RandomSet(rng, static_cast<std::size_t>(state.range(0)), 1 << 20);
  const ElementSet b = RandomSet(rng, static_cast<std::size_t>(state.range(0)), 1 << 20);
  for (auto _ : state) {
    benchmark::DoNotOptimize(Jaccard(a, b));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_Jaccard)->Arg(50)->Arg(250)->Arg(1000);

void BM_MinHashSign(benchmark::State& state) {
  Rng rng(2);
  Embedding e = DefaultEmbedding(static_cast<std::size_t>(state.range(1)));
  const ElementSet set = RandomSet(rng, static_cast<std::size_t>(state.range(0)), 1 << 20);
  for (auto _ : state) {
    benchmark::DoNotOptimize(e.Sign(set));
  }
  state.SetItemsProcessed(state.iterations() * state.range(0) *
                          state.range(1));
}
BENCHMARK(BM_MinHashSign)->Args({250, 50})->Args({250, 100})->Args({1000, 100});

// The seed-derivation hoist (util/hash.h): the pre-v2 inner signing loop
// evaluated HashU64(e, seed_i) = Fmix64(e ^ SplitMix64(seed_i)), paying a
// SplitMix64 per (element, permutation); HashFamily now derives
// SplitMix64(seed_i) once at construction. Identical output by algebra —
// this pair quantifies the win the hoist bought on the k x n hot loop.
void BM_SignLoopRederivedSeeds(benchmark::State& state) {
  Rng rng(13);
  const std::size_t k = 100;
  HashFamily family(k, 424242);
  const ElementSet set = RandomSet(rng, 250, 1 << 20);
  for (auto _ : state) {
    std::uint64_t acc = 0;
    for (std::size_t i = 0; i < k; ++i) {
      std::uint64_t min = UINT64_MAX;
      for (ElementId e : set) {
        min = std::min(min, HashU64(e, family.seed(i)));
      }
      acc ^= min;
    }
    benchmark::DoNotOptimize(acc);
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<std::int64_t>(k * set.size()));
}
BENCHMARK(BM_SignLoopRederivedSeeds);

void BM_SignLoopHoistedSeeds(benchmark::State& state) {
  Rng rng(13);  // same stream: identical set and seeds
  const std::size_t k = 100;
  HashFamily family(k, 424242);
  const ElementSet set = RandomSet(rng, 250, 1 << 20);
  for (auto _ : state) {
    std::uint64_t acc = 0;
    for (std::size_t i = 0; i < k; ++i) {
      std::uint64_t min = UINT64_MAX;
      for (ElementId e : set) {
        min = std::min(min, family.Hash(i, e));
      }
      acc ^= min;
    }
    benchmark::DoNotOptimize(acc);
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<std::int64_t>(k * set.size()));
}
BENCHMARK(BM_SignLoopHoistedSeeds);

void BM_HadamardEncode(benchmark::State& state) {
  Embedding e = DefaultEmbedding();
  std::vector<std::uint64_t> scratch(e.code().codeword_words());
  std::uint16_t msg = 0;
  for (auto _ : state) {
    e.code().Encode(msg++, scratch.data());
    benchmark::DoNotOptimize(scratch.data());
  }
}
BENCHMARK(BM_HadamardEncode);

void BM_EmbedSignature(benchmark::State& state) {
  Rng rng(3);
  Embedding e = DefaultEmbedding();
  const Signature sig = e.Sign(RandomSet(rng, 250, 1 << 20));
  for (auto _ : state) {
    benchmark::DoNotOptimize(e.EmbedSignature(sig));
  }
}
BENCHMARK(BM_EmbedSignature);

void BM_SampledKeyExtraction(benchmark::State& state) {
  Rng rng(4);
  Embedding e = DefaultEmbedding();
  BitSampler sampler(e, static_cast<std::size_t>(state.range(0)), rng);
  const Signature sig = e.Sign(RandomSet(rng, 250, 1 << 20));
  for (auto _ : state) {
    benchmark::DoNotOptimize(sampler.ExtractKeyHash(sig));
  }
}
BENCHMARK(BM_SampledKeyExtraction)->Arg(4)->Arg(16)->Arg(64);

void BM_HammingDistance(benchmark::State& state) {
  Rng rng(5);
  Embedding e = DefaultEmbedding();
  const BitVector a = e.Embed(RandomSet(rng, 250, 1 << 20));
  const BitVector b = e.Embed(RandomSet(rng, 250, 1 << 20));
  for (auto _ : state) {
    benchmark::DoNotOptimize(HammingDistance(a, b));
  }
}
BENCHMARK(BM_HammingDistance);

// std::popcount over embedded vectors. Built with -mpopcnt (SSR_ENABLE_POPCNT)
// this is one POPCNT per word; without it GCC's bit-twiddling fallback runs
// several times slower — a Release-build run of this bench is the check that
// the hardware instruction is actually being emitted.
void BM_BitVectorPopCount(benchmark::State& state) {
  Rng rng(12);
  Embedding e = DefaultEmbedding();
  const BitVector v = e.Embed(RandomSet(rng, 250, 1 << 20));
  for (auto _ : state) {
    benchmark::DoNotOptimize(v.PopCount());
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<std::int64_t>(v.size()));
}
BENCHMARK(BM_BitVectorPopCount);

void BM_SfiProbe(benchmark::State& state) {
  Rng rng(6);
  Embedding e = DefaultEmbedding();
  SfiParams params;
  params.s_star = 0.9;
  params.l = static_cast<std::size_t>(state.range(0));
  auto sfi = SimilarityFilterIndex::Create(e, params, 10000);
  for (int i = 0; i < 10000; ++i) {
    sfi->Insert(static_cast<SetId>(i), e.Sign(RandomSet(rng, 30, 1 << 16)));
  }
  const Signature query = e.Sign(RandomSet(rng, 30, 1 << 16));
  for (auto _ : state) {
    benchmark::DoNotOptimize(sfi->SimVector(query));
  }
}
BENCHMARK(BM_SfiProbe)->Arg(5)->Arg(20)->Arg(50);

// The probe-union primitive with a reused scratch buffer (SimVectorInto):
// what the batch executor's per-worker query loop runs. Against BM_SfiProbe
// (same params, allocating SimVector) the delta is the per-probe allocation
// churn the scratch buffer eliminates.
void BM_SfiProbeUnionScratch(benchmark::State& state) {
  Rng rng(6);  // same stream as BM_SfiProbe: identical tables and query
  Embedding e = DefaultEmbedding();
  SfiParams params;
  params.s_star = 0.9;
  params.l = static_cast<std::size_t>(state.range(0));
  auto sfi = SimilarityFilterIndex::Create(e, params, 10000);
  for (int i = 0; i < 10000; ++i) {
    sfi->Insert(static_cast<SetId>(i), e.Sign(RandomSet(rng, 30, 1 << 16)));
  }
  const Signature query = e.Sign(RandomSet(rng, 30, 1 << 16));
  std::vector<SetId> scratch;
  for (auto _ : state) {
    sfi->SimVectorInto(query, /*complemented=*/false, nullptr, &scratch);
    benchmark::DoNotOptimize(scratch.data());
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_SfiProbeUnionScratch)->Arg(5)->Arg(20)->Arg(50);

// End-to-end candidate generation through the composite index (embed +
// probe + set algebra, no verification fetches). The observability
// acceptance bar: instrument updates must stay within noise of the seed's
// query path (<5%).
void BM_QueryCandidates(benchmark::State& state) {
  Rng rng(9);
  SetStoreOptions store_options;
  store_options.buffer_pool_pages = 64;
  SetStore store(store_options);
  std::vector<ElementSet> sets;
  for (int i = 0; i < 2000; ++i) {
    sets.push_back(RandomSet(rng, 40, 1 << 16));
    if (!store.Add(sets.back()).ok()) {
      state.SkipWithError("store add failed");
      return;
    }
  }
  IndexLayout layout;
  layout.delta = 0.3;
  layout.points.push_back({0.2, FilterKind::kDissimilarity, 8, 0});
  layout.points.push_back({0.5, FilterKind::kSimilarity, 8, 0});
  layout.points.push_back({0.8, FilterKind::kSimilarity, 8, 0});
  IndexOptions options;
  options.embedding.minhash.num_hashes = 100;
  options.embedding.minhash.value_bits = 8;
  auto index = SetSimilarityIndex::Build(store, layout, options);
  if (!index.ok()) {
    state.SkipWithError("index build failed");
    return;
  }
  std::size_t next = 0;
  for (auto _ : state) {
    auto result =
        index->QueryCandidates(sets[next], 0.55, 0.95);
    benchmark::DoNotOptimize(result);
    next = (next + 1) % sets.size();
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_QueryCandidates);

// Snapshot persistence with the v2 checksummed framing. The robustness
// acceptance bar: with the fault injector disabled (the default here),
// per-section CRC32 and footer bookkeeping must cost <2% over the seed's
// unchecked serialization.
void BM_SnapshotSave(benchmark::State& state) {
  Rng rng(10);
  SetStore store;
  for (int i = 0; i < 2000; ++i) {
    if (!store.Add(RandomSet(rng, 40, 1 << 16)).ok()) {
      state.SkipWithError("store add failed");
      return;
    }
  }
  std::string bytes;
  for (auto _ : state) {
    std::ostringstream out;
    if (!store.SaveTo(out).ok()) {
      state.SkipWithError("save failed");
      return;
    }
    bytes = out.str();
    benchmark::DoNotOptimize(bytes.data());
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(bytes.size()));
}
BENCHMARK(BM_SnapshotSave);

void BM_SnapshotLoad(benchmark::State& state) {
  Rng rng(11);
  SetStore store;
  for (int i = 0; i < 2000; ++i) {
    if (!store.Add(RandomSet(rng, 40, 1 << 16)).ok()) {
      state.SkipWithError("store add failed");
      return;
    }
  }
  std::ostringstream out;
  if (!store.SaveTo(out).ok()) {
    state.SkipWithError("save failed");
    return;
  }
  const std::string bytes = out.str();
  for (auto _ : state) {
    std::istringstream in(bytes);
    auto loaded = SetStore::Load(in);
    if (!loaded.ok()) {
      state.SkipWithError("load failed");
      return;
    }
    benchmark::DoNotOptimize(loaded->size());
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(bytes.size()));
}
BENCHMARK(BM_SnapshotLoad);

void BM_BPlusTreeInsert(benchmark::State& state) {
  Rng rng(7);
  for (auto _ : state) {
    state.PauseTiming();
    BPlusTree tree(256);
    state.ResumeTiming();
    for (SetId k = 0; k < 10000; ++k) {
      tree.Upsert(static_cast<SetId>(rng.Uniform(1 << 20)),
                  RecordLocator{k, 0});
    }
    benchmark::DoNotOptimize(tree.size());
  }
  state.SetItemsProcessed(state.iterations() * 10000);
}
BENCHMARK(BM_BPlusTreeInsert);

void BM_BPlusTreeFind(benchmark::State& state) {
  Rng rng(8);
  BPlusTree tree(256);
  for (SetId k = 0; k < 100000; ++k) {
    tree.Upsert(k, RecordLocator{k, 0});
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        tree.Find(static_cast<SetId>(rng.Uniform(100000))));
  }
}
BENCHMARK(BM_BPlusTreeFind);

}  // namespace
}  // namespace ssr

// Custom main: rewrite --json=<path> into google-benchmark's output flags
// so every bench binary shares the same artifact interface, peel off
// --trace=<path> (google-benchmark would reject it), then defer to the
// standard benchmark driver.
int main(int argc, char** argv) {
  std::vector<std::string> args(argv, argv + argc);
  std::vector<std::string> rewritten;
  std::string trace_path;
  for (const std::string& arg : args) {
    if (arg.rfind("--json=", 0) == 0) {
      rewritten.push_back("--benchmark_out=" + arg.substr(strlen("--json=")));
      rewritten.push_back("--benchmark_out_format=json");
    } else if (arg.rfind("--trace=", 0) == 0) {
      trace_path = arg.substr(strlen("--trace="));
    } else {
      rewritten.push_back(arg);
    }
  }
  if (!trace_path.empty()) {
    ssr::obs::Tracer::Default().set_enabled(true);
    ssr::obs::Profiler::Default().Enable();
  }
  std::vector<char*> raw;
  raw.reserve(rewritten.size());
  for (std::string& arg : rewritten) raw.push_back(arg.data());
  int raw_argc = static_cast<int>(raw.size());
  benchmark::Initialize(&raw_argc, raw.data());
  if (benchmark::ReportUnrecognizedArguments(raw_argc, raw.data())) return 1;
  {
    ssr::obs::TraceSpan run("micro_primitives");
    benchmark::RunSpecifiedBenchmarks();
  }
  benchmark::Shutdown();
  if (!trace_path.empty()) {
    std::string error;
    if (!ssr::obs::WriteChromeTraceFile(trace_path,
                                        ssr::obs::Tracer::Default(),
                                        &error)) {
      std::fprintf(stderr, "%s\n", error.c_str());
      return 1;
    }
    std::printf("wrote Chrome trace to %s (open in chrome://tracing)\n",
                trace_path.c_str());
  }
  return 0;
}
