// Shared utilities for the figure-reproduction benchmark binaries: a tiny
// --flag=value parser and common printing helpers. Every bench binary
// prints the rows/series of the paper figure it reproduces; absolute times
// come from the simulated I/O model plus measured CPU, so shapes (who wins,
// where the crossover falls) are the comparable quantity.
//
// Every binary also accepts --json=<path>: the run's parameters, tables,
// and headline scalars are collected into an eval::RunReport and written as
// a machine-readable artifact (embedding a metrics-registry dump and the
// query-trace ring). Passing --json enables query tracing for the run.

#ifndef SSR_BENCH_BENCH_COMMON_H_
#define SSR_BENCH_BENCH_COMMON_H_

#include <cstdio>
#include <cstdlib>
#include <map>
#include <string>

#include "eval/run_report.h"
#include "obs/trace.h"

namespace ssr {
namespace bench {

/// Parses --key=value arguments into a map; everything else is ignored.
class Flags {
 public:
  Flags(int argc, char** argv) {
    for (int i = 1; i < argc; ++i) {
      std::string arg = argv[i];
      if (arg.rfind("--", 0) != 0) continue;
      const std::size_t eq = arg.find('=');
      if (eq == std::string::npos) {
        values_[arg.substr(2)] = "1";
      } else {
        values_[arg.substr(2, eq - 2)] = arg.substr(eq + 1);
      }
    }
  }

  std::string GetString(const std::string& key,
                        const std::string& fallback) const {
    auto it = values_.find(key);
    return it == values_.end() ? fallback : it->second;
  }

  double GetDouble(const std::string& key, double fallback) const {
    auto it = values_.find(key);
    return it == values_.end() ? fallback : std::atof(it->second.c_str());
  }

  long GetInt(const std::string& key, long fallback) const {
    auto it = values_.find(key);
    return it == values_.end() ? fallback : std::atol(it->second.c_str());
  }

  bool GetBool(const std::string& key, bool fallback = false) const {
    auto it = values_.find(key);
    if (it == values_.end()) return fallback;
    return it->second != "0" && it->second != "false";
  }

 private:
  std::map<std::string, std::string> values_;
};

inline void PrintHeader(const std::string& title) {
  std::printf("\n==========================================================\n");
  std::printf("%s\n", title.c_str());
  std::printf("==========================================================\n");
}

/// Turns on query tracing when a JSON artifact was requested (or --trace
/// was passed explicitly). Call before running queries.
inline void EnableObservability(const Flags& flags) {
  if (!flags.GetString("json", "").empty() || flags.GetBool("trace")) {
    obs::Tracer::Default().set_enabled(true);
  }
}

/// Writes `report` to the --json path, if one was given. Returns 0 on
/// success (or when no path was requested), 1 on write failure.
inline int WriteReportIfRequested(const Flags& flags,
                                  const RunReport& report) {
  const std::string path = flags.GetString("json", "");
  if (path.empty()) return 0;
  const Status status = report.WriteTo(path);
  if (!status.ok()) {
    std::fprintf(stderr, "report write failed: %s\n",
                 status.ToString().c_str());
    return 1;
  }
  std::printf("\nwrote JSON report to %s\n", path.c_str());
  return 0;
}

}  // namespace bench
}  // namespace ssr

#endif  // SSR_BENCH_BENCH_COMMON_H_
