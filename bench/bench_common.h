// Shared utilities for the figure-reproduction benchmark binaries: a tiny
// --flag=value parser and common printing helpers. Every bench binary
// prints the rows/series of the paper figure it reproduces; absolute times
// come from the simulated I/O model plus measured CPU, so shapes (who wins,
// where the crossover falls) are the comparable quantity.
//
// Every binary also accepts --json=<path>: the run's parameters, tables,
// and headline scalars are collected into an eval::RunReport and written as
// a machine-readable artifact (embedding a metrics-registry dump, the
// per-phase counter profile, and the query-trace ring). Passing --json
// enables query tracing and counter profiling for the run.
//
// --trace=<path> additionally writes the trace ring as a Chrome-trace JSON
// file loadable in chrome://tracing / ui.perfetto.dev (bare --trace just
// enables tracing without the file, as before).

#ifndef SSR_BENCH_BENCH_COMMON_H_
#define SSR_BENCH_BENCH_COMMON_H_

#include <cstdio>
#include <cstdlib>
#include <map>
#include <string>

#include "eval/run_report.h"
#include "obs/chrome_trace.h"
#include "obs/profile.h"
#include "obs/trace.h"

namespace ssr {
namespace bench {

/// Parses --key=value arguments into a map; everything else is ignored.
class Flags {
 public:
  Flags(int argc, char** argv) {
    for (int i = 1; i < argc; ++i) {
      std::string arg = argv[i];
      if (arg.rfind("--", 0) != 0) continue;
      const std::size_t eq = arg.find('=');
      if (eq == std::string::npos) {
        // std::string("1") rather than = "1": the const char* assignment
        // inlines into a memcpy that trips the GCC 12 -Wrestrict false
        // positive (PR105329) at -O3, and CI builds with -Werror.
        values_[arg.substr(2)] = std::string("1");
      } else {
        values_[arg.substr(2, eq - 2)] = arg.substr(eq + 1);
      }
    }
  }

  std::string GetString(const std::string& key,
                        const std::string& fallback) const {
    auto it = values_.find(key);
    return it == values_.end() ? fallback : it->second;
  }

  double GetDouble(const std::string& key, double fallback) const {
    auto it = values_.find(key);
    return it == values_.end() ? fallback : std::atof(it->second.c_str());
  }

  long GetInt(const std::string& key, long fallback) const {
    auto it = values_.find(key);
    return it == values_.end() ? fallback : std::atol(it->second.c_str());
  }

  bool GetBool(const std::string& key, bool fallback = false) const {
    auto it = values_.find(key);
    if (it == values_.end()) return fallback;
    return it->second != "0" && it->second != "false";
  }

 private:
  std::map<std::string, std::string> values_;
};

inline void PrintHeader(const std::string& title) {
  std::printf("\n==========================================================\n");
  std::printf("%s\n", title.c_str());
  std::printf("==========================================================\n");
}

/// The Chrome-trace output path: the value of --trace when it names a file
/// (any value other than the bare/boolean forms "1"/"0"/"true"/"false").
inline std::string ChromeTracePath(const Flags& flags) {
  const std::string value = flags.GetString("trace", "");
  if (value.empty() || value == "1" || value == "0" || value == "true" ||
      value == "false") {
    return "";
  }
  return value;
}

/// Turns on query tracing and counter profiling when a JSON artifact or a
/// Chrome trace was requested (or --trace was passed explicitly). Call
/// before running queries. Profiling walks the perf-counter availability
/// ladder (hardware -> software -> rusage) and honors SSR_PERF_COUNTERS.
inline void EnableObservability(const Flags& flags) {
  if (!flags.GetString("json", "").empty() || flags.GetBool("trace")) {
    obs::Tracer::Default().set_enabled(true);
    obs::Profiler::Default().Enable();
  }
}

/// Writes the artifacts a run requested: the RunReport to --json and the
/// Chrome trace to --trace=<path>. Returns 0 on success (or when nothing
/// was requested), 1 on any write failure.
inline int WriteReportIfRequested(const Flags& flags,
                                  const RunReport& report) {
  int rc = 0;
  const std::string path = flags.GetString("json", "");
  if (!path.empty()) {
    const Status status = report.WriteTo(path);
    if (!status.ok()) {
      std::fprintf(stderr, "report write failed: %s\n",
                   status.ToString().c_str());
      rc = 1;
    } else {
      std::printf("\nwrote JSON report to %s\n", path.c_str());
    }
  }
  const std::string trace_path = ChromeTracePath(flags);
  if (!trace_path.empty()) {
    std::string error;
    if (!obs::WriteChromeTraceFile(trace_path, obs::Tracer::Default(),
                                   &error)) {
      std::fprintf(stderr, "%s\n", error.c_str());
      rc = 1;
    } else {
      std::printf("wrote Chrome trace to %s (open in chrome://tracing)\n",
                  trace_path.c_str());
    }
  }
  return rc;
}

}  // namespace bench
}  // namespace ssr

#endif  // SSR_BENCH_BENCH_COMMON_H_
