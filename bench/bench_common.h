// Shared utilities for the figure-reproduction benchmark binaries: a tiny
// --flag=value parser and common printing helpers. Every bench binary
// prints the rows/series of the paper figure it reproduces; absolute times
// come from the simulated I/O model plus measured CPU, so shapes (who wins,
// where the crossover falls) are the comparable quantity.

#ifndef SSR_BENCH_BENCH_COMMON_H_
#define SSR_BENCH_BENCH_COMMON_H_

#include <cstdio>
#include <cstdlib>
#include <map>
#include <string>

namespace ssr {
namespace bench {

/// Parses --key=value arguments into a map; everything else is ignored.
class Flags {
 public:
  Flags(int argc, char** argv) {
    for (int i = 1; i < argc; ++i) {
      std::string arg = argv[i];
      if (arg.rfind("--", 0) != 0) continue;
      const std::size_t eq = arg.find('=');
      if (eq == std::string::npos) {
        values_[arg.substr(2)] = "1";
      } else {
        values_[arg.substr(2, eq - 2)] = arg.substr(eq + 1);
      }
    }
  }

  std::string GetString(const std::string& key,
                        const std::string& fallback) const {
    auto it = values_.find(key);
    return it == values_.end() ? fallback : it->second;
  }

  double GetDouble(const std::string& key, double fallback) const {
    auto it = values_.find(key);
    return it == values_.end() ? fallback : std::atof(it->second.c_str());
  }

  long GetInt(const std::string& key, long fallback) const {
    auto it = values_.find(key);
    return it == values_.end() ? fallback : std::atol(it->second.c_str());
  }

  bool GetBool(const std::string& key, bool fallback = false) const {
    auto it = values_.find(key);
    if (it == values_.end()) return fallback;
    return it->second != "0" && it->second != "false";
  }

 private:
  std::map<std::string, std::string> values_;
};

inline void PrintHeader(const std::string& title) {
  std::printf("\n==========================================================\n");
  std::printf("%s\n", title.c_str());
  std::printf("==========================================================\n");
}

}  // namespace bench
}  // namespace ssr

#endif  // SSR_BENCH_BENCH_COMMON_H_
