// Reproduces Figure 6(a)/(b): precision and recall of the optimized index
// per result-size bucket, for hash-table budgets 500 (6a) and 1000 (6b),
// on both datasets. The optimizer targets 90% average recall, as in the
// paper's experiments.
//
// Flags: --scale (default 0.02 = 4,000 sets; the paper's full size is 1.0 =
// 200,000), --budgets=500,1000  --datasets=set1,set2
// --queries_per_bucket=60 --recall_target=0.9 --minhashes=100

#include <cstdio>
#include <sstream>
#include <vector>

#include "bench_common.h"
#include "eval/harness.h"
#include "eval/table_printer.h"
#include "util/logging.h"

namespace ssr {
namespace {

std::vector<std::string> SplitCsv(const std::string& csv) {
  std::vector<std::string> out;
  std::stringstream stream(csv);
  std::string item;
  while (std::getline(stream, item, ',')) {
    if (!item.empty()) out.push_back(item);
  }
  return out;
}

int Run(const bench::Flags& flags) {
  const double scale = flags.GetDouble("scale", 0.02);
  const auto budgets = SplitCsv(flags.GetString("budgets", "500,1000"));
  const auto datasets = SplitCsv(flags.GetString("datasets", "set1,set2"));
  const double recall_target = flags.GetDouble("recall_target", 0.9);

  RunReport report("fig6_precision_recall");
  bench::EnableObservability(flags);
  report.AddParam("scale", scale);
  report.AddParam("budgets", flags.GetString("budgets", "500,1000"));
  report.AddParam("datasets", flags.GetString("datasets", "set1,set2"));
  report.AddParam("recall_target", recall_target);

  for (const std::string& budget_str : budgets) {
    const std::size_t budget =
        static_cast<std::size_t>(std::atol(budget_str.c_str()));
    bench::PrintHeader(
        "Figure 6" + std::string(budget == 500 ? "(a)" : "(b)") +
        ": precision/recall per result-size bucket, budget " + budget_str +
        " hash tables, recall target " + TablePrinter::Pct(recall_target));
    for (const std::string& dataset : datasets) {
      ExperimentConfig config;
      config.dataset = dataset;
      config.scale = scale;
      config.table_budget = budget;
      config.recall_threshold = recall_target;
      config.num_minhashes =
          static_cast<std::size_t>(flags.GetInt("minhashes", 100));
      config.queries_per_bucket =
          static_cast<std::size_t>(flags.GetInt("queries_per_bucket", 60));
      config.max_attempts_factor = 12;
      config.run_scan = false;  // Figure 6 reports accuracy only

      auto harness = ExperimentHarness::Create(config);
      if (!harness.ok()) {
        std::printf("[%s] harness failed: %s\n", dataset.c_str(),
                    harness.status().ToString().c_str());
        continue;
      }
      auto result = (*harness)->RunBucketedQueries();
      if (!result.ok()) {
        std::printf("[%s] sweep failed: %s\n", dataset.c_str(),
                    result.status().ToString().c_str());
        continue;
      }
      std::printf("\ndataset %s: %zu sets, %zu pages, optimizer chose %zu "
                  "FIs (achieved threshold %s; predicted avg recall %s, "
                  "precision %s)\n",
                  dataset.c_str(), result->collection_size,
                  result->heap_pages, result->layout.layout.points.size(),
                  TablePrinter::Pct((*harness)->achieved_threshold()).c_str(),
                  TablePrinter::Pct(result->layout.predicted_recall).c_str(),
                  TablePrinter::Pct(result->layout.predicted_precision)
                      .c_str());
      TablePrinter table({"bucket", "queries", "recall", "precision",
                          "avg candidates", "avg answer"});
      for (const auto& bucket : result->buckets) {
        table.AddRow({bucket.label, TablePrinter::Count(bucket.query_count),
                      TablePrinter::Pct(bucket.avg_recall),
                      TablePrinter::Pct(bucket.avg_precision),
                      TablePrinter::Num(bucket.avg_candidates, 1),
                      TablePrinter::Num(bucket.avg_results, 1)});
      }
      std::ostringstream out;
      table.Print(out);
      std::printf("%s", out.str().c_str());
      report.AddTable("budget " + budget_str + " " + dataset, table);
      report.AddScalar(dataset + "_b" + budget_str + "_weighted_recall",
                       result->overall_weighted_recall);
      report.AddScalar(dataset + "_b" + budget_str + "_weighted_precision",
                       result->overall_weighted_precision);
      std::printf("unconditioned averages over all %zu random queries:\n"
                  "  per-query mean:     recall %s, precision %s\n"
                  "  Definition 8/9 form: recall %s, precision %s "
                  "(optimizer objective: recall >= %s)\n",
                  result->total_queries_run,
                  TablePrinter::Pct(result->overall_avg_recall).c_str(),
                  TablePrinter::Pct(result->overall_avg_precision).c_str(),
                  TablePrinter::Pct(result->overall_weighted_recall).c_str(),
                  TablePrinter::Pct(result->overall_weighted_precision)
                      .c_str(),
                  TablePrinter::Pct(recall_target).c_str());
    }
  }
  return bench::WriteReportIfRequested(flags, report);
}

}  // namespace
}  // namespace ssr

int main(int argc, char** argv) {
  ssr::SetLogLevel(ssr::LogLevel::kWarning);
  ssr::bench::Flags flags(argc, argv);
  return ssr::Run(flags);
}
